//! Offline stand-in for `parking_lot`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `parking_lot` to this crate. It wraps `std::sync` primitives
//! behind parking_lot's poison-free API: `Mutex::lock` returns a guard
//! directly (a poisoned std lock is recovered, matching parking_lot's
//! behaviour of not propagating panics through locks), and
//! `Condvar::wait` takes the guard by `&mut` instead of by value.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Poison-free mutex with parking_lot's `lock() -> guard` signature.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the underlying std guard in an `Option` so [`Condvar::wait`] can
/// temporarily take ownership (std's wait consumes the guard).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Result of a timed wait on a [`Condvar`]; mirrors parking_lot's type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and wait for a notification,
    /// re-acquiring before returning. Spurious wakeups are possible, as
    /// with parking_lot — callers loop on their predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Atomically release the guard's lock and wait for a notification or
    /// the timeout, re-acquiring before returning. Mirrors parking_lot's
    /// `wait_for`; callers still loop on their predicate because spurious
    /// wakeups are possible.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_rendezvous() {
        let pair = Arc::new((Mutex::new(0usize), Condvar::new()));
        let n = 4;
        std::thread::scope(|s| {
            for _ in 0..n {
                let pair = Arc::clone(&pair);
                s.spawn(move || {
                    let (m, cv) = &*pair;
                    let mut count = m.lock();
                    *count += 1;
                    if *count == n {
                        cv.notify_all();
                    } else {
                        while *count < n {
                            cv.wait(&mut count);
                        }
                    }
                });
            }
        });
        assert_eq!(*pair.0.lock(), n);
    }

    #[test]
    fn wait_for_times_out_without_notification() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let r = cv.wait_for(&mut guard, std::time::Duration::from_millis(10));
        assert!(r.timed_out());
        // The guard is usable again after the timed wait.
        *guard = true;
        drop(guard);
        assert!(*m.lock());
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
