//! Offline stand-in for `rayon`, backed by a persistent worker pool.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rayon` to this crate (see the root `Cargo.toml`). It provides
//! exactly the data-parallel subset the kfac-rs kernels use —
//! `par_chunks_mut`, `into_par_iter` over ranges, `map`/`for_each`/
//! `collect`, and [`current_num_threads`] — with semantics matching rayon
//! where it matters for the kernels: items are processed exactly once,
//! `collect` preserves input order, closures only need `Sync` (they are
//! shared by reference across workers), and a panic inside a worker
//! closure propagates to the caller of the parallel operation.
//!
//! Unlike the original shim, which spawned fresh scoped OS threads on
//! every parallel call, this version keeps one lazily-started global pool
//! of parked workers for the life of the process, so fine-grained
//! parallel calls inside the GEMM/im2col kernels pay a queue push and a
//! wake instead of `clone(2)` per call.
//!
//! ## Scheduling model
//!
//! Each parallel call splits its items into contiguous chunks and
//! publishes one shared *batch* descriptor. Workers (and the calling
//! thread itself) claim chunk indices from an atomic cursor and process
//! them; the caller always participates, so a call makes progress even
//! when every pool worker is busy with other batches — nested parallel
//! calls therefore cannot deadlock. The caller returns only once every
//! chunk of its batch has completed, which is what makes the borrowed
//! (non-`'static`) closures sound.
//!
//! ## Configuration
//!
//! The pool size defaults to the machine's available parallelism and can
//! be pinned with the `KFAC_POOL_THREADS` environment variable (read
//! once, at first use; `KFAC_POOL_THREADS=1` forces the inline sequential
//! path, which CI exercises). Tests may resize the pool at runtime with
//! [`set_pool_threads`] — kernel results are bitwise independent of the
//! pool size by construction, and the determinism suite verifies that.

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

/// A queued unit of pool work: "help execute this batch". The closure is
/// `'static` because it only captures an `Arc` to the batch descriptor.
type HelpJob = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    queue: VecDeque<HelpJob>,
    /// Number of worker threads the pool should present. Workers beyond
    /// this target (after a shrink via [`set_pool_threads`]) exit.
    target: usize,
    /// Number of worker threads currently spawned.
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl Pool {
    fn push_jobs(&self, jobs: Vec<HelpJob>) {
        let mut st = self.state.lock().expect("pool mutex");
        for job in jobs {
            st.queue.push_back(job);
        }
        self.spawn_up_to_target(&mut st);
        drop(st);
        self.work_ready.notify_all();
    }

    /// Ensure `target - 1` helper threads exist (the calling thread is
    /// always the N-th worker of its own batch).
    fn spawn_up_to_target(&self, st: &mut PoolState) {
        let want = st.target.saturating_sub(1);
        while st.spawned < want {
            st.spawned += 1;
            std::thread::Builder::new()
                .name(format!("kfac-pool-{}", st.spawned))
                .spawn(worker_loop)
                .expect("spawn pool worker");
        }
    }
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            target: default_threads(),
            spawned: 0,
        }),
        work_ready: Condvar::new(),
    })
}

fn default_threads() -> usize {
    if let Ok(v) = std::env::var("KFAC_POOL_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn worker_loop() {
    let pool = pool();
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool mutex");
            loop {
                // Exit quietly if the pool shrank below our rank.
                if st.spawned > st.target.saturating_sub(1) {
                    st.spawned -= 1;
                    return;
                }
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                st = pool.work_ready.wait(st).expect("pool condvar");
            }
        };
        job();
    }
}

/// Number of worker threads a parallel call will use (rayon reports its
/// pool size here). Defaults to the machine's available parallelism,
/// overridable with `KFAC_POOL_THREADS`.
pub fn current_num_threads() -> usize {
    pool().state.lock().expect("pool mutex").target
}

/// Resize the pool (test hook; not part of rayon's API). Kernel results
/// are bitwise independent of the pool size — the determinism property
/// tests drive this across 1/2/4/8 threads.
pub fn set_pool_threads(n: usize) {
    let p = pool();
    let mut st = p.state.lock().expect("pool mutex");
    st.target = n.max(1);
    p.spawn_up_to_target(&mut st);
    drop(st);
    // Wake parked workers so supernumerary ones can exit.
    p.work_ready.notify_all();
}

// ---------------------------------------------------------------------------
// Batch execution: one parallel call = one Batch shared with the pool.
// ---------------------------------------------------------------------------

/// Everything a worker needs to help with one parallel call. Items and
/// the closure live on the caller's stack; `Batch` erases their
/// lifetimes behind raw pointers. The `Batch` itself is shared via `Arc`
/// so a stale help job (one that starts after the call already finished)
/// can still safely observe the exhausted cursor and return; the raw
/// `ctx` pointer is only ever dereferenced for a *claimed* chunk, and the
/// caller cannot return before every chunk is claimed and completed.
/// Panic payload captured from a worker closure, re-raised on the caller.
type ChunkPanic = Box<dyn std::any::Any + Send>;

struct Batch {
    /// Next chunk index to claim.
    cursor: AtomicUsize,
    /// Chunks fully processed.
    completed: AtomicUsize,
    chunks: usize,
    chunk_size: usize,
    items: usize,
    /// Type-erased `&(items_ptr, results_ptr, closure_ptr)` tuple owned by
    /// the caller's stack frame; `run_chunk` downcasts it.
    ctx: *const (),
    run_chunk: fn(*const (), Range<usize>) -> Result<(), ChunkPanic>,
    done: Mutex<bool>,
    done_cv: Condvar,
    /// Set when a closure panicked; remaining chunks are drained (items
    /// dropped, results skipped) and the caller re-panics.
    poisoned: AtomicUsize,
    /// First panic payload, re-raised on the calling thread.
    panic_payload: Mutex<Option<ChunkPanic>>,
}

unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claim and run chunks until the batch is exhausted. Returns after
    /// the cursor runs out (other claimed chunks may still be running).
    fn help(&self) {
        loop {
            let c = self.cursor.fetch_add(1, Ordering::Relaxed);
            if c >= self.chunks {
                return;
            }
            let start = c * self.chunk_size;
            let end = ((c + 1) * self.chunk_size).min(self.items);
            if let Err(payload) = (self.run_chunk)(self.ctx, start..end) {
                let mut slot = self.panic_payload.lock().expect("panic slot");
                slot.get_or_insert(payload);
                drop(slot);
                self.poisoned.store(1, Ordering::Release);
            }
            let done = self.completed.fetch_add(1, Ordering::AcqRel) + 1;
            if done == self.chunks {
                let mut flag = self.done.lock().expect("batch mutex");
                *flag = true;
                drop(flag);
                self.done_cv.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut flag = self.done.lock().expect("batch mutex");
        while !*flag {
            flag = self.done_cv.wait(flag).expect("batch condvar");
        }
    }
}

/// Run `f` over `items` on the pool, returning outputs in input order.
/// Panics in `f` propagate to the caller (after all chunks finish).
fn execute<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Split into ~4 chunks per worker so an early-finishing worker can
    // keep helping; the chunk boundaries never influence results (each
    // item is mapped independently, outputs land in fixed slots).
    let chunks = (workers * 4).min(n);
    let chunk_size = n.div_ceil(chunks);
    let chunks = n.div_ceil(chunk_size);

    let mut items = items;
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);

    {
        // Context shared with workers: raw pointers into this frame.
        struct Ctx<I, R, F> {
            items: *mut I,
            results: *mut Option<R>,
            f: *const F,
        }
        let ctx = Ctx {
            items: items.as_mut_ptr(),
            results: results.as_mut_ptr(),
            f: f as *const F,
        };

        fn run_chunk<I, R, F>(ctx: *const (), range: Range<usize>) -> Result<(), ChunkPanic>
        where
            F: Fn(I) -> R + Sync,
        {
            let ctx = unsafe { &*(ctx as *const Ctx<I, R, F>) };
            let f = unsafe { &*ctx.f };
            catch_unwind(AssertUnwindSafe(|| {
                for i in range {
                    // Each index is claimed by exactly one chunk, so this
                    // reads/writes each slot exactly once.
                    unsafe {
                        let item = std::ptr::read(ctx.items.add(i));
                        std::ptr::write(ctx.results.add(i), Some(f(item)));
                    }
                }
            }))
        }

        let batch = Arc::new(Batch {
            cursor: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            chunks,
            chunk_size,
            items: n,
            ctx: &ctx as *const Ctx<I, R, F> as *const (),
            run_chunk: run_chunk::<I, R, F>,
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            poisoned: AtomicUsize::new(0),
            panic_payload: Mutex::new(None),
        });

        // Publish help jobs: each is a thin shim that calls batch.help()
        // through its own Arc, so a job that only starts after this call
        // finished merely observes the exhausted cursor and returns —
        // without ever touching the (then dangling) `ctx` pointer.
        let helpers = (workers - 1).min(chunks.saturating_sub(1));
        let mut jobs: Vec<HelpJob> = Vec::with_capacity(helpers);
        for _ in 0..helpers {
            let b = Arc::clone(&batch);
            jobs.push(Box::new(move || b.help()));
        }
        pool().push_jobs(jobs);

        // The caller is a full participant; this also guarantees the call
        // completes even if no pool worker ever picks up a help job (a
        // saturated pool, or one resized to a single thread mid-call).
        batch.help();
        batch.wait();

        let poisoned = batch.poisoned.load(Ordering::Acquire) != 0;
        // Items were moved out by ptr::read; stop the Vec from dropping them.
        unsafe { items.set_len(0) };
        if poisoned {
            // Results written so far drop normally via the Option slots;
            // items in panicked chunks leak their tail, matching the
            // "abort the parallel op" semantics of a propagated panic.
            drop(results);
            let payload = batch
                .panic_payload
                .lock()
                .expect("panic slot")
                .take()
                .unwrap_or_else(|| Box::new("rayon-shim worker panicked"));
            resume_unwind(payload);
        }
    }

    results
        .into_iter()
        .map(|r| r.expect("every chunk completed"))
        .collect()
}

// ---------------------------------------------------------------------------
// Public iterator surface (unchanged API).
// ---------------------------------------------------------------------------

/// An eagerly materialized parallel iterator: adapters reshape the item
/// list; the terminal `for_each`/`collect` runs across the pool.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pair each item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keep every `step`-th item, like `Iterator::step_by`.
    pub fn step_by(self, step: usize) -> ParIter<I> {
        ParIter {
            items: self.items.into_iter().step_by(step.max(1)).collect(),
        }
    }

    /// Lazily map items; the closure runs on the pool workers.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every item across the pool workers.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        execute(self.items, &|item| f(item));
    }

    /// Collect the items (no-op parallelism; order preserved).
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Result of [`ParIter::map`]; terminal ops run the closure in parallel.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F> {
    /// Run the map across pool workers and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        execute(self.items, &self.f).into_iter().collect()
    }

    /// Apply the mapped closure to every item for its side effects.
    pub fn for_each<R>(self)
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        execute(self.items, &self.f);
    }
}

/// Conversion into a [`ParIter`] — implemented for the types the kernels
/// iterate in parallel (index ranges and vectors).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel counterpart of `slice::chunks`.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size.max(1)).collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices: disjoint chunks, so each worker
/// owns its chunk exclusively.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `slice::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// The glob-import surface (`use rayon::prelude::*`), mirroring rayon's.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        set_pool_threads(4);
        let mut data = vec![0u32; 1000];
        data.as_mut_slice()
            .par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v += 1 + i as u32;
                }
            });
        // Every element written exactly once, with its chunk index.
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (j / 7) as u32);
        }
    }

    #[test]
    fn range_map_collect_preserves_order() {
        set_pool_threads(4);
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn step_by_matches_sequential() {
        let out: Vec<usize> = (0..20usize).into_par_iter().step_by(6).collect();
        assert_eq!(out, vec![0, 6, 12, 18]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        Vec::<u32>::new()
            .as_mut_slice()
            .par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn panic_propagates_to_caller() {
        set_pool_threads(4);
        let result = std::panic::catch_unwind(|| {
            (0..64usize).into_par_iter().for_each(|i| {
                if i == 13 {
                    panic!("boom");
                }
            });
        });
        assert!(result.is_err());
        // The pool survives a propagated panic.
        let out: Vec<usize> = (0..32usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(out[31], 32);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        set_pool_threads(4);
        let out: Vec<usize> = (0..8usize)
            .into_par_iter()
            .map(|i| {
                let prods: Vec<usize> = (0..64usize).into_par_iter().map(|j| i * j).collect();
                prods.iter().sum::<usize>()
            })
            .collect();
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * (0..64).sum::<usize>());
        }
    }

    #[test]
    fn resize_pool_up_and_down() {
        set_pool_threads(8);
        assert_eq!(current_num_threads(), 8);
        let a: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        set_pool_threads(2);
        assert_eq!(current_num_threads(), 2);
        let b: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(a, b);
        set_pool_threads(1);
        let c: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(a, c);
    }

    #[test]
    fn many_small_calls_are_cheap() {
        set_pool_threads(4);
        // Regression guard for the spawn-per-call behaviour this pool
        // replaces: 10k tiny calls should complete quickly.
        for _ in 0..10_000 {
            let v: Vec<usize> = (0..8usize).into_par_iter().map(|i| i).collect();
            assert_eq!(v.iter().sum::<usize>(), 28);
        }
    }
}
