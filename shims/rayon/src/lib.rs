//! Offline stand-in for `rayon`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rayon` to this crate (see the root `Cargo.toml`). It provides
//! exactly the data-parallel subset the kfac-rs kernels use —
//! `par_chunks_mut`, `into_par_iter` over ranges, `map`/`for_each`/
//! `collect`, and [`current_num_threads`] — executed on scoped OS threads
//! with work split into contiguous per-thread chunks.
//!
//! Semantics match rayon where it matters for the kernels: items are
//! processed exactly once, `collect` preserves input order, and closures
//! only need `Sync` (they are shared by reference across workers). Unlike
//! rayon there is no persistent thread pool; each parallel call spawns
//! scoped threads, so very fine-grained calls pay thread-spawn latency.
//! The kernels already gate parallelism behind size thresholds, which
//! keeps that cost off the hot path.

use std::ops::Range;

/// Number of worker threads a parallel call will use — the machine's
/// available parallelism (rayon reports its pool size here).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items`, splitting them into one contiguous chunk per
/// worker thread. Returns outputs in input order.
fn execute<I, R, F>(items: Vec<I>, f: &F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(workers);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("rayon-shim worker panicked"));
        }
        out
    })
}

/// An eagerly materialized parallel iterator: adapters reshape the item
/// list; the terminal `for_each`/`collect` runs across threads.
pub struct ParIter<I> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pair each item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Keep every `step`-th item, like `Iterator::step_by`.
    pub fn step_by(self, step: usize) -> ParIter<I> {
        ParIter {
            items: self.items.into_iter().step_by(step.max(1)).collect(),
        }
    }

    /// Lazily map items; the closure runs on the worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Apply `f` to every item across the worker threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        execute(self.items, &|item| f(item));
    }

    /// Collect the items (no-op parallelism; order preserved).
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// Result of [`ParIter::map`]; terminal ops run the closure in parallel.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I, F> ParMap<I, F> {
    /// Run the map across worker threads and collect in input order.
    pub fn collect<R, C>(self) -> C
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
        C: FromIterator<R>,
    {
        execute(self.items, &self.f).into_iter().collect()
    }

    /// Apply the mapped closure to every item for its side effects.
    pub fn for_each<R>(self)
    where
        I: Send,
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        execute(self.items, &self.f);
    }
}

/// Conversion into a [`ParIter`] — implemented for the types the kernels
/// iterate in parallel (index ranges and vectors).
pub trait IntoParallelIterator {
    /// The produced item type.
    type Item: Send;
    /// Materialize the parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// `par_chunks` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel counterpart of `slice::chunks`.
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter {
            items: self.chunks(size.max(1)).collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices: disjoint chunks, so each worker
/// owns its chunk exclusively.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel counterpart of `slice::chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// The glob-import surface (`use rayon::prelude::*`), mirroring rayon's.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut data = vec![0u32; 1000];
        data.as_mut_slice()
            .par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| {
                for v in chunk.iter_mut() {
                    *v += 1 + i as u32;
                }
            });
        // Every element written exactly once, with its chunk index.
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (j / 7) as u32);
        }
    }

    #[test]
    fn range_map_collect_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn step_by_matches_sequential() {
        let out: Vec<usize> = (0..20usize).into_par_iter().step_by(6).collect();
        assert_eq!(out, vec![0, 6, 12, 18]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0..0u64).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
        Vec::<u32>::new()
            .as_mut_slice()
            .par_chunks_mut(4)
            .for_each(|_| panic!("no chunks expected"));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
