//! Offline stand-in for `proptest`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `proptest` to this crate. It implements the subset the
//! kfac-rs property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` support),
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * strategies: numeric ranges (`0.0f32..1.0`, `0usize..4`, …),
//!   [`any`]`::<T>()`, tuples up to arity 4,
//!   [`collection::vec`], and [`Strategy::prop_map`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated inputs' `Debug` rendering and the case's replay
//! seed. Generation is fully deterministic — the RNG is seeded from the
//! test's name — so failures reproduce run-to-run and across machines.

use std::fmt::Debug;
use std::ops::Range;

/// A failed property — returned by the `prop_assert*` macros and
/// converted into a panic (with the offending inputs) by the runner.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a property failure with a rendered message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

/// Runner configuration; only the knobs the tests use.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the RNG (the runner derives the seed from the test name).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit resolution.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping (bias < 2^-64, irrelevant
        // for test-case generation).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The name mirrors proptest's trait so call sites
/// like `impl Strategy<Value = Matrix>` compile unchanged.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<R, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> R,
    {
        Map { strategy: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, R, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R;
    fn generate(&self, rng: &mut TestRng) -> R {
        (self.f)(self.strategy.generate(rng))
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values generatable by [`any`].
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, roughly centred values — proptest's any::<f32>() includes
        // infinities/NaN, but the tests here only use integer/bool `any`.
        (rng.unit_f64() as f32 - 0.5) * 2e6
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2e12
    }
}

/// Strategy for an unconstrained value of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// `any::<T>()` — generate any value of `T` (the proptest entry point).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    /// Strategy generating a `Vec` of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors of values from `element` with the given length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span > 1 {
                    rng.below(span) as usize
                } else {
                    0
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Derive the deterministic base seed for a named property test.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Skip the current case when its precondition does not hold. Real
/// proptest rejects and regenerates; this shim simply treats the case
/// as vacuously passing, which is equivalent for deterministic seeds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Assert a condition inside a `proptest!` body; failures report the
/// generated inputs instead of unwinding as a bare panic.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!(a == b)` with a rendered left/right diff.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert!(a != b)` with a rendered value.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Declare property tests. Supports the forms the kfac-rs tests use:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0usize..10, v in proptest::collection::vec(-1.0f32..1.0, 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let base_seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                $(let $arg = $strat;)*
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::new(base_seed ^ case.wrapping_mul(0x2545_f491_4f6c_dd1d));
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut rng);)*
                    let mut debug_rendering = ::std::string::String::new();
                    $(
                        debug_rendering.push_str(&format!(
                            "  {} = {:?}\n", stringify!($arg), $arg
                        ));
                    )*
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}\ninputs:\n{}",
                            case + 1,
                            config.cases,
                            e.message(),
                            debug_rendering
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        /// Range strategies stay in range.
        #[test]
        fn ranges_in_bounds(x in 3usize..17, y in -2.5f32..2.5, z in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y), "y out of range: {}", y);
            prop_assert!(z < 5);
        }

        /// collection::vec produces the requested length; prop_map applies.
        #[test]
        fn vec_and_map(
            v in crate::collection::vec(0.0f64..1.0, 12),
            s in (0usize..4, 1usize..5).prop_map(|(a, b)| a + b),
        ) {
            prop_assert_eq!(v.len(), 12);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!((1..9).contains(&s));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::vec(0.0f32..1.0, 8);
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        assert_eq!(
            crate::Strategy::generate(&strat, &mut a),
            crate::Strategy::generate(&strat, &mut b)
        );
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
