//! Offline stand-in for `criterion`.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `criterion` to this crate. Benchmarks compile and run with
//! the same source: `criterion_group!` / `criterion_main!`, benchmark
//! groups with chained `measurement_time` / `sample_size` /
//! `throughput`, `bench_function`, and `bench_with_input` all exist.
//!
//! Measurement is intentionally simple — each benchmark closure is
//! timed for a handful of iterations and the mean wall time (plus
//! throughput, when set) is printed. There is no warm-up, outlier
//! analysis, or HTML report; the shim exists so `cargo bench` keeps
//! exercising the hot paths and printing comparable numbers, not to
//! replace criterion's statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation attached to a group; printed as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Benchmark identifier: a function name plus a parameter rendering.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("matmul", 256)` renders as `matmul/256`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the configured number of iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; the shim's per-benchmark
    /// iteration count is driven by `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate subsequent benchmarks with a throughput rate.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run and report one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            iters: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// End the group (criterion requires this; the shim prints eagerly).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        let mean = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let mut line = format!(
            "{}/{}: {:>12} per iter ({} iters)",
            self.name,
            id,
            format_time(mean),
            b.iters
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            if mean > 0.0 {
                line.push_str(&format!("  {:.3e} {}/s", count as f64 / mean, unit));
            }
        }
        println!("{line}");
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Top-level benchmark driver (a stub of criterion's).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declare a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )*
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_iters() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let calls = AtomicU64::new(0);
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(7)
            .throughput(Throughput::Elements(3))
            .bench_function("count", |b| {
                b.iter(|| calls.fetch_add(1, Ordering::Relaxed))
            })
            .finish();
        assert_eq!(calls.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .bench_with_input(BenchmarkId::new("double", 21), &21u32, |b, &n| {
                b.iter(|| assert_eq!(n * 2, 42));
            });
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        assert_eq!(BenchmarkId::new("matmul", 256).to_string(), "matmul/256");
    }
}
