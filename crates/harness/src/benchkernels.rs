//! Kernel before/after benchmark: packed GEMM engine vs. legacy kernels.
//!
//! `xp bench-kernels` times every GEMM/Gram shape the ResNet-32 CIFAR
//! pipeline actually runs (im2col forward products, weight-gradient
//! products, Kronecker-factor Grams) plus square 256–1024 stress shapes,
//! against byte-for-byte copies of the pre-packing `ikj` kernels this
//! repo shipped with. Results go to stdout as a table and, with
//! `--json`, to `BENCH_kernels.json` for the CI bench-smoke job.
//!
//! The legacy kernels live here (not in `kfac-tensor`) on purpose: they
//! are a measurement baseline, not an API, and keeping them out of the
//! tensor crate means nothing can accidentally call them.

use kfac_tensor::{HalfMatrix, Matrix, Rng64};
use rayon::prelude::*;
use std::time::Instant;

/// What product a benchmark case runs.
#[derive(Clone, Copy, Debug)]
pub enum Kind {
    /// `C[m×n] = A[m×k] · B[k×n]`
    Matmul,
    /// `C[m×n] = A[k×m]ᵀ · B[k×n]` (weight-gradient shape)
    MatmulTn,
    /// `C[m×n] = A[m×k] · B[n×k]ᵀ` (im2col forward shape)
    MatmulNt,
    /// `G[n×n] = X[k×n]ᵀ · X[k×n]` (activation Kronecker factor)
    Gram,
    /// `G[m×m] = X[m×k] · X[m×k]ᵀ` (gradient Kronecker factor)
    GramNt,
}

/// bf16-engine timing for one case, measured paired against the packed
/// f32 engine (see [`run_all`] for the interleaved-median protocol).
#[derive(Clone, Copy, Debug)]
pub struct Bf16Timing {
    /// Median ns/iter of the bf16-packed f32-accumulate kernel.
    pub ns: f64,
    /// Median of the per-rep `f32_ns / bf16_ns` ratios — robust to the
    /// drift of a shared/noisy box, unlike a ratio of two medians taken
    /// minutes apart.
    pub speedup: f64,
}

/// One benchmarked shape with packed/legacy (and, where the bf16 engine
/// applies, bf16) timings.
pub struct BenchCase {
    pub name: &'static str,
    pub kind: Kind,
    pub m: usize,
    pub k: usize,
    pub n: usize,
    /// Multiply-add count per iteration (2 flops each).
    pub madds: u64,
    pub packed_ns: f64,
    pub legacy_ns: f64,
    /// bf16-storage timing; `None` for kinds the bf16 engine does not
    /// cover (plain / TN matmuls, which no bf16 pipeline stage runs).
    pub bf16: Option<Bf16Timing>,
}

impl BenchCase {
    pub fn packed_gflops(&self) -> f64 {
        2.0 * self.madds as f64 / self.packed_ns
    }
    pub fn legacy_gflops(&self) -> f64 {
        2.0 * self.madds as f64 / self.legacy_ns
    }
    pub fn speedup(&self) -> f64 {
        self.legacy_ns / self.packed_ns
    }
}

/// The shapes the CI bf16 perf gate is stated over: the two
/// bias-augmented activation-factor Grams of the deep ResNet-32 stages
/// plus one convolution forward shape. These are the products the bf16
/// substrate actually routes in training, and each must hold
/// [`BF16_GATE_MIN`]×.
pub const BF16_GATE_CASES: [&str; 3] = ["rn32_afactor_s2", "rn32_afactor_s3", "rn32_conv_s3"];

/// Required bf16-over-f32 speedup on every [`BF16_GATE_CASES`] shape.
pub const BF16_GATE_MIN: f64 = 1.4;

/// The benchmark suite: ResNet-32/CIFAR layer shapes (batch 8) and the
/// square 256–1024 shapes the acceptance criteria are stated over.
///
/// ResNet-32 shape notes — an im2col'd 3×3 conv at width `c → oc` over a
/// `b × s × s` feature map is the product `(b·s² × 9c) · (oc × 9c)ᵀ`; its
/// activation factor is the Gram of the bias-augmented patch matrix
/// `(b·s² × 9c+1)`, its gradient factor the Gram of `(b·s² × oc)` rows.
pub fn cases() -> Vec<(&'static str, Kind, usize, usize, usize)> {
    vec![
        // Square stress shapes (acceptance: ≥3× on 256–1024 GEMM/Gram).
        ("square_gemm_256", Kind::Matmul, 256, 256, 256),
        ("square_gemm_512", Kind::Matmul, 512, 512, 512),
        ("square_gemm_1024", Kind::Matmul, 1024, 1024, 1024),
        ("square_gram_256", Kind::Gram, 0, 256, 256),
        ("square_gram_512", Kind::Gram, 0, 512, 512),
        ("square_gram_1024", Kind::Gram, 0, 1024, 1024),
        // ResNet-32 stage convolutions, forward (im2col · weightᵀ).
        ("rn32_conv_in", Kind::MatmulNt, 8192, 27, 16),
        ("rn32_conv_s1", Kind::MatmulNt, 8192, 144, 16),
        ("rn32_conv_s2", Kind::MatmulNt, 2048, 288, 32),
        ("rn32_conv_s3", Kind::MatmulNt, 512, 576, 64),
        // Weight gradient for the widest stage: dW = gᵀ · cols.
        ("rn32_dw_s3", Kind::MatmulTn, 64, 512, 576),
        // Kronecker factors: activation Grams (bias-augmented patches)
        // and a gradient Gram.
        ("rn32_afactor_s2", Kind::Gram, 0, 2048, 289),
        ("rn32_afactor_s3", Kind::Gram, 0, 512, 577),
        ("rn32_gfactor_s3", Kind::GramNt, 512, 64, 0),
    ]
}

fn random_matrix(r: usize, c: usize, rng: &mut Rng64) -> Matrix {
    Matrix::from_vec(r, c, (0..r * c).map(|_| rng.normal_f32()).collect())
}

/// Time `f` adaptively: one warm-up call, then iterate until ~250 ms of
/// samples (at least 3 iterations) and report mean ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm up (fills the arena, faults pages, warms caches)
    let budget = std::time::Duration::from_millis(250);
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget && iters >= 3 {
            break;
        }
        if iters >= 10_000 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Paired bf16-vs-f32 repetitions per case. The two engines are timed
/// back-to-back inside each rep and the per-rep ratio is medianed, so a
/// frequency step or noisy-neighbor burst mid-suite skews at most two
/// of the five samples instead of one whole engine's measurement.
const BF16_REPS: usize = 5;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    v[v.len() / 2]
}

/// Run the full suite. Each case is timed on the packed engine and on
/// the legacy kernels with identical inputs.
pub fn run_all() -> Vec<BenchCase> {
    let mut rng = Rng64::new(0x5EED);
    let mut out = Vec::new();
    for (name, kind, m, k, n) in cases() {
        let (a, b, madds);
        match kind {
            Kind::Matmul => {
                a = random_matrix(m, k, &mut rng);
                b = random_matrix(k, n, &mut rng);
                madds = (m * k * n) as u64;
            }
            Kind::MatmulTn => {
                a = random_matrix(k, m, &mut rng);
                b = random_matrix(k, n, &mut rng);
                madds = (m * k * n) as u64;
            }
            Kind::MatmulNt => {
                a = random_matrix(m, k, &mut rng);
                b = random_matrix(n, k, &mut rng);
                madds = (m * k * n) as u64;
            }
            Kind::Gram => {
                // X is k×n; count only the computed triangle.
                a = random_matrix(k, n, &mut rng);
                b = Matrix::zeros(0, 0);
                madds = (k * n * (n + 1) / 2) as u64;
            }
            Kind::GramNt => {
                a = random_matrix(m, k, &mut rng);
                b = Matrix::zeros(0, 0);
                madds = (k * m * (m + 1) / 2) as u64;
            }
        }

        let mut scratch = Matrix::zeros(1, 1);
        let packed_ns = time_ns(|| match kind {
            Kind::Matmul => a.matmul_into(&b, &mut scratch),
            Kind::MatmulTn => a.matmul_tn_into(&b, &mut scratch),
            Kind::MatmulNt => a.matmul_nt_into(&b, &mut scratch),
            Kind::Gram => a.gram_into(&mut scratch),
            Kind::GramNt => a.gram_nt_into(&mut scratch),
        });
        let legacy_ns = time_ns(|| {
            std::hint::black_box(match kind {
                Kind::Matmul => legacy::matmul(&a, &b),
                Kind::MatmulTn => legacy::matmul_tn(&a, &b),
                Kind::MatmulNt => legacy::matmul_nt(&a, &b),
                Kind::Gram => legacy::gram(&a),
                Kind::GramNt => legacy::gram_nt(&a),
            });
        });
        // bf16 rows for the kinds the half-width engine covers: Gram
        // (activation factors), GramNt (gradient factors, via the
        // full-matrix A·Aᵀ kernel), and MatmulNt (im2col forward).
        // Interleaved paired reps; see BF16_REPS.
        let bf16 = match kind {
            Kind::Gram | Kind::GramNt | Kind::MatmulNt => {
                let ha = HalfMatrix::from_matrix(&a);
                let hb = matches!(kind, Kind::MatmulNt).then(|| HalfMatrix::from_matrix(&b));
                let mut out16 = Matrix::zeros(1, 1);
                let mut ns16 = Vec::with_capacity(BF16_REPS);
                let mut ratios = Vec::with_capacity(BF16_REPS);
                for _ in 0..BF16_REPS {
                    let t32 = time_ns(|| match kind {
                        Kind::Gram => a.gram_into(&mut scratch),
                        Kind::GramNt => a.gram_nt_into(&mut scratch),
                        Kind::MatmulNt => a.matmul_nt_into(&b, &mut scratch),
                        _ => unreachable!(),
                    });
                    let t16 = time_ns(|| match kind {
                        Kind::Gram => ha.gram_into(&mut out16),
                        Kind::GramNt => ha.matmul_nt_into(&ha, &mut out16),
                        Kind::MatmulNt => ha.matmul_nt_into(hb.as_ref().unwrap(), &mut out16),
                        _ => unreachable!(),
                    });
                    ns16.push(t16);
                    ratios.push(t32 / t16);
                }
                std::hint::black_box(&out16);
                Some(Bf16Timing {
                    ns: median(ns16),
                    speedup: median(ratios),
                })
            }
            Kind::Matmul | Kind::MatmulTn => None,
        };
        std::hint::black_box(&scratch);
        out.push(BenchCase {
            name,
            kind,
            m,
            k,
            n,
            madds,
            packed_ns,
            legacy_ns,
            bf16,
        });
    }
    out
}

/// Render the suite as an aligned text table.
pub fn render_table(cases: &[BenchCase]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<18} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>9} {:>8} {:>12} {:>9}\n",
        "case",
        "m",
        "k",
        "n",
        "packed ns",
        "legacy ns",
        "packed",
        "legacy",
        "speedup",
        "bf16 ns",
        "bf16/f32"
    ));
    s.push_str(&format!(
        "{:<18} {:>6} {:>6} {:>6} {:>12} {:>12} {:>9} {:>9} {:>8} {:>12} {:>9}\n",
        "", "", "", "", "", "", "GFLOP/s", "GFLOP/s", "", "", ""
    ));
    for c in cases {
        let (bf16_ns, bf16_speedup) = match c.bf16 {
            Some(t) => (format!("{:.0}", t.ns), format!("{:.2}x", t.speedup)),
            None => ("-".to_string(), "-".to_string()),
        };
        s.push_str(&format!(
            "{:<18} {:>6} {:>6} {:>6} {:>12.0} {:>12.0} {:>9.2} {:>9.2} {:>7.2}x {:>12} {:>9}\n",
            c.name,
            c.m,
            c.k,
            c.n,
            c.packed_ns,
            c.legacy_ns,
            c.packed_gflops(),
            c.legacy_gflops(),
            c.speedup(),
            bf16_ns,
            bf16_speedup
        ));
    }
    s
}

/// Serialize the suite as JSON (hand-rolled — no serde in this tree).
pub fn to_json(cases: &[BenchCase]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let bf16_fields = match c.bf16 {
            Some(t) => format!(
                "\"bf16_ns_per_iter\": {:.1}, \"bf16_gflops\": {:.3}, \"bf16_speedup\": {:.3}",
                t.ns,
                2.0 * c.madds as f64 / t.ns,
                t.speedup
            ),
            None => "\"bf16_ns_per_iter\": null, \"bf16_gflops\": null, \"bf16_speedup\": null"
                .to_string(),
        };
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"kind\": \"{:?}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"packed_ns_per_iter\": {:.1}, \"legacy_ns_per_iter\": {:.1}, \
             \"packed_gflops\": {:.3}, \"legacy_gflops\": {:.3}, \"speedup\": {:.3}, {}}}{}\n",
            c.name,
            c.kind,
            c.m,
            c.k,
            c.n,
            c.packed_ns,
            c.legacy_ns,
            c.packed_gflops(),
            c.legacy_gflops(),
            c.speedup(),
            bf16_fields,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let gate: Vec<&BenchCase> = cases
        .iter()
        .filter(|c| c.name.starts_with("square_"))
        .collect();
    let min = gate
        .iter()
        .map(|c| c.speedup())
        .fold(f64::INFINITY, f64::min);
    // bf16 perf gate: the minimum paired bf16-over-f32 speedup across
    // the BF16_GATE_CASES shapes (0.0 when a gate case is missing its
    // bf16 timing, which fails the CI assertion loudly).
    let bf16_gate = BF16_GATE_CASES
        .iter()
        .map(|name| {
            cases
                .iter()
                .find(|c| c.name == *name)
                .and_then(|c| c.bf16)
                .map(|t| t.speedup)
                .unwrap_or(0.0)
        })
        .fold(f64::INFINITY, f64::min);
    s.push_str(&format!(
        "  \"min_square_speedup\": {:.3},\n  \"min_bf16_gate_speedup\": {:.3},\n  \
         \"pool_threads\": {}\n}}\n",
        if min.is_finite() { min } else { 0.0 },
        if bf16_gate.is_finite() {
            bf16_gate
        } else {
            0.0
        },
        rayon::current_num_threads()
    ));
    s
}

/// Byte-for-byte copies of the pre-packing kernels (`ikj` loops with the
/// `== 0.0` skip branches, thread-count-dependent k-partitioned Grams),
/// kept as the benchmark baseline.
mod legacy {
    use super::*;

    const PAR_THRESHOLD: usize = 64 * 64;

    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let m = a.rows();
        let k = a.cols();
        let n = b.cols();
        let mut c = Matrix::zeros(m, n);
        let kernel = |i: usize, c_row: &mut [f32]| {
            let a_row = a.row(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = b.row(p);
                for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                    *c_v += a_ip * b_v;
                }
            }
        };
        if m * n >= PAR_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, c_row)| kernel(i, c_row));
        } else {
            for i in 0..m {
                let row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
                kernel(i, row);
            }
        }
        c
    }

    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        let m = a.cols();
        let n = b.cols();
        let k = a.rows();
        let mut c = Matrix::zeros(m, n);
        for i in 0..k {
            let a_row = a.row(i);
            let b_row = b.row(i);
            for (j, &a_ij) in a_row.iter().enumerate() {
                if a_ij == 0.0 {
                    continue;
                }
                let acc_row = c.row_mut(j);
                for (c_v, &b_v) in acc_row.iter_mut().zip(b_row) {
                    *c_v += a_ij * b_v;
                }
            }
        }
        c
    }

    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        let m = a.rows();
        let n = b.rows();
        let mut c = Matrix::zeros(m, n);
        let kernel = |i: usize, c_row: &mut [f32]| {
            let a_row = a.row(i);
            for (j, c_v) in c_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for (&x, &y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                *c_v = acc;
            }
        };
        if m * n >= PAR_THRESHOLD && m > 1 {
            c.as_mut_slice()
                .par_chunks_mut(n)
                .enumerate()
                .for_each(|(i, c_row)| kernel(i, c_row));
        } else {
            for i in 0..m {
                let row = &mut c.as_mut_slice()[i * n..(i + 1) * n];
                kernel(i, row);
            }
        }
        c
    }

    pub fn gram(x: &Matrix) -> Matrix {
        let n = x.cols();
        let k = x.rows();
        let mut g = Matrix::zeros(n, n);
        for i in 0..k {
            rank1_upper(&mut g, x.row(i));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                g[(j, i)] = g[(i, j)];
            }
        }
        g
    }

    pub fn gram_nt(x: &Matrix) -> Matrix {
        let mut g = matmul_nt(x, x);
        g.symmetrize();
        g
    }

    fn rank1_upper(acc: &mut Matrix, row: &[f32]) {
        let n = row.len();
        for j in 0..n {
            let rj = row[j];
            if rj == 0.0 {
                continue;
            }
            let acc_row = acc.row_mut(j);
            for l in j..n {
                acc_row[l] += rj * row[l];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legacy_kernels_agree_with_packed() {
        let mut rng = Rng64::new(11);
        let a = random_matrix(33, 21, &mut rng);
        let b = random_matrix(21, 17, &mut rng);
        assert!(legacy::matmul(&a, &b).max_abs_diff(&a.matmul(&b)) < 1e-4);
        let at = random_matrix(21, 33, &mut rng);
        assert!(legacy::matmul_tn(&at, &b).max_abs_diff(&at.matmul_tn(&b)) < 1e-4);
        let bt = random_matrix(17, 21, &mut rng);
        assert!(legacy::matmul_nt(&a, &bt).max_abs_diff(&a.matmul_nt(&bt)) < 1e-4);
        assert!(legacy::gram(&a).max_abs_diff(&a.gram()) < 1e-4);
        assert!(legacy::gram_nt(&a).max_abs_diff(&a.gram_nt()) < 1e-4);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![
            BenchCase {
                name: "square_gemm_256",
                kind: Kind::Matmul,
                m: 256,
                k: 256,
                n: 256,
                madds: 256 * 256 * 256,
                packed_ns: 1000.0,
                legacy_ns: 4000.0,
                bf16: None,
            },
            BenchCase {
                name: "rn32_afactor_s2",
                kind: Kind::Gram,
                m: 0,
                k: 2048,
                n: 289,
                madds: 1000,
                packed_ns: 1500.0,
                legacy_ns: 4500.0,
                bf16: Some(Bf16Timing {
                    ns: 1000.0,
                    speedup: 1.5,
                }),
            },
        ];
        let json = to_json(&cases);
        assert!(json.contains("\"speedup\": 4.000"));
        assert!(json.contains("\"min_square_speedup\": 4.000"));
        assert!(json.contains("\"bf16_ns_per_iter\": null"));
        assert!(json.contains("\"bf16_speedup\": 1.500"));
        // Two of the three gate shapes are absent → the aggregate is the
        // loud 0.0 failure value, not the present case's 1.5.
        assert!(json.contains("\"min_bf16_gate_speedup\": 0.000"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn bf16_gate_aggregate_is_min_over_gate_cases() {
        let mk = |name: &'static str, speedup: f64| BenchCase {
            name,
            kind: Kind::Gram,
            m: 0,
            k: 64,
            n: 64,
            madds: 1000,
            packed_ns: 1000.0,
            legacy_ns: 2000.0,
            bf16: Some(Bf16Timing { ns: 600.0, speedup }),
        };
        let cases: Vec<BenchCase> = BF16_GATE_CASES
            .iter()
            .zip([1.9, 1.5, 1.7])
            .map(|(n, s)| mk(n, s))
            .collect();
        let json = to_json(&cases);
        assert!(json.contains("\"min_bf16_gate_speedup\": 1.500"), "{json}");
    }
}
