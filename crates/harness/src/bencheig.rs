//! Factor-stage eigensolver benchmark: exact backends vs. the randomized
//! truncated range-finder.
//!
//! `xp bench-eig` times every distinct Kronecker-factor dimension the
//! ResNet-32 CIFAR pipeline produces (bias-augmented activation factors
//! `9c+1`, gradient factors `oc`) plus the ≥512 square stress dims the
//! acceptance criteria are stated over, on SPD inputs with the decaying
//! spectrum K-FAC factors exhibit in practice. Each dimension is solved
//! with the exact tridiagonal-QL and Jacobi backends (Jacobi only at the
//! small dims where it terminates in bench-budget time), with the
//! adaptive-rank randomized backend (`RandEigPolicy`, 99% captured-mass
//! target), and with fixed rank fractions n/16, n/8 and n/4 to show the
//! cost/capture trade-off. Results go to stdout as a table and, with
//! `--json`, to `BENCH_eig.json` for the CI bench-smoke job.

use kfac::math::decompose_factor_randomized;
use kfac::RandEigPolicy;
use kfac_tensor::{eigh, eigh_randomized, eigh_tridiag, Matrix, RandEigOptions, Rng64};
use std::time::Instant;

/// Jacobi is O(n³) *per sweep* with a sequential kernel; above this
/// dimension a single decomposition blows the per-case bench budget.
const JACOBI_MAX_DIM: usize = 289;

/// One fixed-rank-fraction measurement.
pub struct FracPoint {
    /// Sketch rank as a fraction of `n`.
    pub frac: f64,
    pub ns: f64,
    /// Spectral mass the truncated decomposition captured.
    pub mass: f64,
}

/// One benchmarked factor dimension.
pub struct EigBenchCase {
    pub name: &'static str,
    pub n: usize,
    pub ql_ns: f64,
    /// 0 when Jacobi was skipped (dimension above [`JACOBI_MAX_DIM`]).
    pub jacobi_ns: f64,
    /// Adaptive-rank randomized backend (99% mass policy).
    pub rand_ns: f64,
    /// Rank the adaptive policy settled on (`n` = exact fallback).
    pub rand_rank: usize,
    /// Spectral mass captured at that rank.
    pub rand_mass: f64,
    pub fracs: Vec<FracPoint>,
}

impl EigBenchCase {
    /// Fastest *measured* exact backend for this dimension.
    pub fn best_exact_ns(&self) -> f64 {
        if self.jacobi_ns > 0.0 {
            self.ql_ns.min(self.jacobi_ns)
        } else {
            self.ql_ns
        }
    }
    pub fn speedup(&self) -> f64 {
        self.best_exact_ns() / self.rand_ns
    }
}

/// The benchmarked dimensions: every distinct ResNet-32/CIFAR factor
/// dimension (`rn32_*`) and the square stress dims (`square_*`) the
/// ≥512 acceptance gate is stated over.
pub fn cases() -> Vec<(&'static str, usize)> {
    vec![
        ("rn32_afactor_in", 28),  // 9·3+1
        ("rn32_gfactor_s3", 64),  // oc of the widest stage
        ("rn32_afactor_s1", 145), // 9·16+1
        ("rn32_afactor_s2", 289), // 9·32+1
        ("square_512", 512),
        ("rn32_afactor_s3", 577), // 9·64+1
        ("square_1024", 1024),
    ]
}

/// SPD input with the geometrically decaying spectrum trained K-FAC
/// factors exhibit, scaled per-dimension so that ~99% of the spectral
/// mass concentrates in the top ≈n/12 modes — low-rank structure that
/// is *present but not free*: the adaptive policy still has to find the
/// rank, and a too-small sketch still fails the mass target.
pub fn bench_factor(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng64::new(seed);
    let mut x = Matrix::from_vec(n, n, (0..n * n).map(|_| rng.normal_f32()).collect());
    // mass(r) ≈ 1 − d^{2r}; solve d so mass(n/12) = 0.99.
    let decay = (-4.605_170 * 6.0 / n as f64).exp();
    for i in 0..n {
        let s = decay.powi(i as i32) as f32;
        for v in x.row_mut(i) {
            *v *= s;
        }
    }
    let mut a = x.gram();
    a.scale(1.0 / n as f32);
    a.add_diag(1e-6);
    a
}

/// Time `f` adaptively: one warm-up call, then iterate until ~250 ms of
/// samples (at least 3 iterations) and report mean ns/iter.
fn time_ns(mut f: impl FnMut()) -> f64 {
    f(); // warm up (fills the arena, faults pages, warms caches)
    let budget = std::time::Duration::from_millis(250);
    let mut iters = 0u32;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if start.elapsed() >= budget && iters >= 3 {
            break;
        }
        if iters >= 10_000 {
            break;
        }
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Captured spectral mass of a (possibly truncated) decomposition of a
/// factor with trace `trace`.
fn captured_mass(eig: &kfac_tensor::EigenDecomposition, trace: f64) -> f64 {
    if trace <= 0.0 {
        return 1.0;
    }
    let captured: f64 = eig.eigenvalues.iter().map(|&v| (v as f64).max(0.0)).sum();
    (captured / trace).min(1.0)
}

/// The policy the benchmark (and the `randomized` backend default)
/// measures: adaptive rank toward 99% captured mass, forced onto the
/// randomized path at every benchmarked dimension.
pub fn bench_policy() -> RandEigPolicy {
    RandEigPolicy {
        min_dim: 1,
        mass_threshold: 0.99,
        ..Default::default()
    }
}

/// Run the full suite.
pub fn run_all() -> Vec<EigBenchCase> {
    let mut out = Vec::new();
    for (name, n) in cases() {
        let f = bench_factor(n, 0x5EED ^ n as u64);
        let trace = f.trace() as f64;
        let mut m = f.clone();
        m.symmetrize();

        let ql_ns = time_ns(|| {
            std::hint::black_box(eigh_tridiag(&m).expect("ql"));
        });
        let jacobi_ns = if n <= JACOBI_MAX_DIM {
            time_ns(|| {
                std::hint::black_box(eigh(&m).expect("jacobi"));
            })
        } else {
            0.0
        };

        let policy = bench_policy();
        let adaptive = decompose_factor_randomized(&f, &policy).expect("randomized");
        let rand_rank = adaptive.truncated_rank().unwrap_or(n);
        let rand_mass = captured_mass(&adaptive, trace);
        let rand_ns = time_ns(|| {
            std::hint::black_box(decompose_factor_randomized(&f, &policy).expect("randomized"));
        });

        let mut fracs = Vec::new();
        for denom in [16usize, 8, 4] {
            let rank = (n / denom).max(1);
            let opts = RandEigOptions {
                rank,
                oversample: policy.oversample,
                power_iters: policy.power_iters,
                seed: policy.seed,
            };
            let re = eigh_randomized(&m, &opts).expect("fixed-rank");
            let mass = re.captured_mass;
            let ns = time_ns(|| {
                std::hint::black_box(eigh_randomized(&m, &opts).expect("fixed-rank"));
            });
            fracs.push(FracPoint {
                frac: 1.0 / denom as f64,
                ns,
                mass,
            });
        }

        out.push(EigBenchCase {
            name,
            n,
            ql_ns,
            jacobi_ns,
            rand_ns,
            rand_rank,
            rand_mass,
            fracs,
        });
    }
    out
}

/// Render the suite as an aligned text table.
pub fn render_table(cases: &[EigBenchCase]) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "{:<18} {:>6} {:>12} {:>12} {:>12} {:>6} {:>6} {:>8}\n",
        "case", "n", "ql ns", "jacobi ns", "rand ns", "rank", "mass", "speedup"
    ));
    for c in cases {
        s.push_str(&format!(
            "{:<18} {:>6} {:>12.0} {:>12} {:>12.0} {:>6} {:>6.3} {:>7.2}x\n",
            c.name,
            c.n,
            c.ql_ns,
            if c.jacobi_ns > 0.0 {
                format!("{:.0}", c.jacobi_ns)
            } else {
                "-".to_string()
            },
            c.rand_ns,
            c.rand_rank,
            c.rand_mass,
            c.speedup()
        ));
        for p in &c.fracs {
            s.push_str(&format!(
                "  rank n/{:<3}      {:>6} {:>12} {:>12} {:>12.0} {:>6} {:>6.3} {:>7.2}x\n",
                (1.0 / p.frac) as usize,
                "",
                "",
                "",
                p.ns,
                "",
                p.mass,
                c.best_exact_ns() / p.ns
            ));
        }
    }
    s
}

/// Serialize the suite as JSON (hand-rolled — no serde in this tree).
///
/// `min_large_speedup` is the acceptance gate: the smallest
/// adaptive-randomized speedup over the fastest exact backend across
/// the n ≥ 512 cases, with `min_large_mass` recording the worst
/// captured mass among them (the claim is "≥2× at ≥99% mass").
pub fn to_json(cases: &[EigBenchCase]) -> String {
    let mut s = String::from("{\n  \"benchmarks\": [\n");
    for (i, c) in cases.iter().enumerate() {
        let fracs = c
            .fracs
            .iter()
            .map(|p| {
                format!(
                    "{{\"frac\": {:.4}, \"ns_per_iter\": {:.1}, \"mass\": {:.4}}}",
                    p.frac, p.ns, p.mass
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"ql_ns_per_iter\": {:.1}, \
             \"jacobi_ns_per_iter\": {:.1}, \"rand_ns_per_iter\": {:.1}, \
             \"rand_rank\": {}, \"rand_mass\": {:.4}, \
             \"speedup_vs_best_exact\": {:.3}, \"rank_fractions\": [{}]}}{}\n",
            c.name,
            c.n,
            c.ql_ns,
            c.jacobi_ns,
            c.rand_ns,
            c.rand_rank,
            c.rand_mass,
            c.speedup(),
            fracs,
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    let large: Vec<&EigBenchCase> = cases.iter().filter(|c| c.n >= 512).collect();
    let min_speedup = large
        .iter()
        .map(|c| c.speedup())
        .fold(f64::INFINITY, f64::min);
    let min_mass = large
        .iter()
        .map(|c| c.rand_mass)
        .fold(f64::INFINITY, f64::min);
    s.push_str(&format!(
        "  \"min_large_speedup\": {:.3},\n  \"min_large_mass\": {:.4},\n  \"pool_threads\": {}\n}}\n",
        if min_speedup.is_finite() { min_speedup } else { 0.0 },
        if min_mass.is_finite() { min_mass } else { 0.0 },
        rayon::current_num_threads()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_factor_has_the_advertised_low_rank_structure() {
        let n = 192;
        let f = bench_factor(n, 7);
        let e = decompose_factor_randomized(&f, &bench_policy()).expect("randomized");
        let rank = e.truncated_rank().expect("should truncate");
        // 99% of the mass within n/4 modes, i.e. genuinely low-rank but
        // not trivially so (more than a handful of modes needed).
        assert!(rank <= n / 4, "rank {rank}");
        assert!(rank >= 4, "rank {rank}");
        assert!(captured_mass(&e, f.trace() as f64) >= 0.99);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cases = vec![EigBenchCase {
            name: "square_512",
            n: 512,
            ql_ns: 8000.0,
            jacobi_ns: 0.0,
            rand_ns: 2000.0,
            rand_rank: 64,
            rand_mass: 0.995,
            fracs: vec![FracPoint {
                frac: 0.125,
                ns: 1500.0,
                mass: 0.99,
            }],
        }];
        let json = to_json(&cases);
        assert!(json.contains("\"speedup_vs_best_exact\": 4.000"));
        assert!(json.contains("\"min_large_speedup\": 4.000"));
        assert!(json.contains("\"min_large_mass\": 0.9950"));
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }
}
