//! Fault-tolerant training iterations: the graceful-degradation ladder.
//!
//! [`ResilientTrainer::step`] runs one synchronous training iteration
//! against a communicator that may fail (typically a
//! [`FaultyCommunicator`](kfac_collectives::FaultyCommunicator) under a
//! seeded fault plan), degrading instead of crashing:
//!
//! 1. **Retry** — every collective runs under the configured
//!    [`RetryPolicy`]; transient faults and short outages heal here and
//!    the iteration proceeds bit-identically to a fault-free run.
//! 2. **Stale factors** — a factor allreduce or eigendecomposition
//!    allgather that exhausts its retries is *skipped*: the rank keeps
//!    its previous averages / eigenbasis (counted in
//!    `kfac/stale_factor_steps`). Because every rank consults the same
//!    fault plan, all ranks stay identically stale.
//! 3. **Identity preconditioner** — a failed or corrupted
//!    eigendecomposition falls back to damped SGD for that factor
//!    (handled inside [`Kfac`], counted in `kfac/eig_fallbacks`).
//! 4. **Skipped step** — non-finite loss or non-finite/absurd gradients
//!    (silent bit-flip corruption that slipped past the factor guards)
//!    skip the optimizer step entirely (`train/skipped_steps`).
//! 5. **Shrink-world resume** — a permanent rank loss surfaces as
//!    [`StepOutcome::RankLost`]; when the surviving ranks can still
//!    agree on a membership view, the caller shrinks the group
//!    ([`Elastic::shrink`](kfac_collectives::Elastic)), restores the
//!    latest checkpoint on the new epoch, and continues on the smaller
//!    world (see [`elastic`](crate::elastic); counted in
//!    `train/shrink_resumes` via
//!    [`note_shrink_resume`](ResilientTrainer::note_shrink_resume)).
//! 6. **Abort + checkpoint** — when membership agreement itself fails
//!    (coordinator unreachable, agreement deadline exceeded) the run
//!    ends; the caller restores the latest checkpoint (see
//!    [`checkpoint`](crate::checkpoint)) on a fresh group and resumes
//!    bitwise.
//!
//! A failed *gradient* allreduce is not recoverable by staleness (the
//! step needs this batch's gradients), so it lands on rung 4: the whole
//! group skips the step together.

use crate::checkpoint;
use kfac::Kfac;
use kfac_collectives::{CollectiveError, Communicator, ReduceOp, RetryPolicy, TrafficClass};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Sequential};
use kfac_optim::{Optimizer, Sgd};
use kfac_telemetry::watchdog::RuleKind;
use kfac_telemetry::{FlightRecorder, HealthReport, Severity};
use kfac_tensor::{Matrix, Tensor4};
use std::path::PathBuf;

/// Degradation knobs for [`ResilientTrainer`].
#[derive(Debug, Clone, Copy)]
pub struct FaultTolerance {
    /// Retry policy applied to every collective (rung 1).
    pub retry: RetryPolicy,
    /// Largest gradient magnitude accepted before the step is skipped
    /// (rung 4); non-finite values are always rejected.
    pub grad_limit: f32,
    /// Take a checkpoint every N successful steps (0 = never).
    pub checkpoint_every: usize,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance {
            retry: RetryPolicy::default_comm(),
            grad_limit: 1e6,
            checkpoint_every: 0,
        }
    }
}

/// What one resilient iteration did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Parameters were updated (possibly with degraded K-FAC state).
    Stepped,
    /// The optimizer step was skipped (failed gradient exchange or
    /// unhealthy gradients); parameters are unchanged.
    SkippedStep,
    /// A rank was lost permanently; training cannot continue on this
    /// group. Shrink the group and resume from the latest checkpoint
    /// (rung 5), or abort to a fresh group (rung 6) if agreement fails.
    RankLost(usize),
}

/// Drives fault-tolerant training iterations and tracks degradations.
pub struct ResilientTrainer {
    /// Degradation configuration.
    pub ft: FaultTolerance,
    /// Steps skipped on rung 4 (gradient exchange failure or unhealthy
    /// gradients).
    pub skipped_steps: u64,
    /// Collectives that exhausted their retries and degraded (rung 2).
    pub comm_faults: u64,
    steps_done: u64,
    latest_checkpoint: Option<Vec<u8>>,
    telemetry: Option<(kfac_telemetry::Registry, usize)>,
    recorder: Option<(FlightRecorder, Option<PathBuf>)>,
}

impl ResilientTrainer {
    /// New trainer with the given tolerance configuration. Captures the
    /// ambient telemetry registry for the degradation counters.
    pub fn new(ft: FaultTolerance) -> Self {
        ResilientTrainer {
            ft,
            skipped_steps: 0,
            comm_faults: 0,
            steps_done: 0,
            latest_checkpoint: None,
            telemetry: kfac_telemetry::current(),
            recorder: None,
        }
    }

    /// Attach a flight recorder. Each [`step`](Self::step) takes a
    /// metrics snapshot, and any ladder escalation (skipped step, rank
    /// loss, critical watchdog finding) dumps the recorder — to
    /// `dump_path` when given, otherwise the dump is only available via
    /// [`flight_recorder`](Self::flight_recorder).
    pub fn set_flight_recorder(&mut self, recorder: FlightRecorder, dump_path: Option<PathBuf>) {
        self.recorder = Some((recorder, dump_path));
    }

    /// The attached flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref().map(|(r, _)| r)
    }

    /// Dump the flight recorder (if one is attached and a registry is
    /// ambient), tagging the dump with `reason`. Writes the JSON to the
    /// configured dump path when present; always returns the document.
    fn dump_recorder(&self, reason: &str) -> Option<String> {
        let (recorder, path) = self.recorder.as_ref()?;
        let (registry, _) = self.telemetry.as_ref()?;
        if let Some(path) = path {
            let _ = recorder.dump_to_file(registry, reason, path);
        }
        Some(recorder.dump_json(registry, reason))
    }

    /// The most recent checkpoint blob, if `checkpoint_every` is on.
    pub fn latest_checkpoint(&self) -> Option<&[u8]> {
        self.latest_checkpoint.as_deref()
    }

    /// Iterations that completed with a parameter update.
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    fn note_skipped(&mut self) {
        self.skipped_steps += 1;
        if let Some((registry, _)) = &self.telemetry {
            registry.counter("train/skipped_steps").inc();
        }
    }

    /// Map a watchdog health report onto the degradation ladder.
    ///
    /// Critical findings translate to the same typed signals
    /// [`step`](Self::step) produces: a critical non-finite or
    /// retry-rate finding recommends skipping the next step (rung 4); a
    /// critical heartbeat stall or dead-peer finding recommends leaving
    /// this group for the shrink/abort rungs (5–6, reported as this
    /// rank's own loss so every survivor reacts identically). Warnings
    /// and critical staleness don't escalate — staleness *is* the
    /// degradation (rung 2) — but any critical finding dumps the flight
    /// recorder so the run leaves evidence.
    pub fn apply_watchdog(&mut self, report: &HealthReport) -> Option<StepOutcome> {
        if report.severity < Severity::Critical {
            return None;
        }
        self.dump_recorder("watchdog_critical");
        let own_rank = self.telemetry.as_ref().map(|(_, r)| *r).unwrap_or(0);
        let mut outcome = None;
        for f in report
            .findings
            .iter()
            .filter(|f| f.severity == Severity::Critical)
        {
            match f.rule {
                RuleKind::HeartbeatStall | RuleKind::PeerDead => {
                    return Some(StepOutcome::RankLost(own_rank))
                }
                RuleKind::NonFinite | RuleKind::RetryRate => {
                    outcome = Some(StepOutcome::SkippedStep);
                }
                RuleKind::StalenessCeiling => {}
            }
        }
        outcome
    }

    /// Record a completed shrink-world resume (rung 5): the surviving
    /// ranks fenced the dead, re-formed at membership `epoch`, and
    /// restored the latest checkpoint. Bumps `train/shrink_resumes`,
    /// publishes the new epoch to the
    /// [`comm/membership_epoch`](kfac_telemetry::watchdog::names::MEMBERSHIP_EPOCH)
    /// gauge, clears
    /// [`comm/dead_peers`](kfac_telemetry::watchdog::names::DEAD_PEERS)
    /// (fencing resolved them), and dumps the flight recorder so the
    /// reconfiguration leaves evidence.
    pub fn note_shrink_resume(&mut self, epoch: u64) {
        if let Some((registry, _)) = &self.telemetry {
            registry.counter("train/shrink_resumes").inc();
            registry
                .gauge(kfac_telemetry::watchdog::names::MEMBERSHIP_EPOCH)
                .set(epoch as f64);
            registry
                .gauge(kfac_telemetry::watchdog::names::DEAD_PEERS)
                .set(0.0);
        }
        self.dump_recorder(&format!("shrink_resume_epoch_{epoch}"));
    }

    /// Run one training iteration under the degradation ladder.
    /// Returns the local batch loss and what happened. All ranks of a
    /// group must call this in lockstep with the same fault plan so
    /// degradation decisions agree group-wide.
    ///
    /// With a flight recorder attached, every step captures a metrics
    /// snapshot, and an escalated outcome (skipped step or rank loss)
    /// dumps the recorder automatically.
    #[allow(clippy::too_many_arguments)]
    pub fn step(
        &mut self,
        model: &mut Sequential,
        kfac: &mut Option<Kfac>,
        optimizer: &mut Sgd,
        comm: &dyn Communicator,
        x: &Tensor4,
        labels: &[usize],
        criterion: &CrossEntropyLoss,
        lr: f32,
    ) -> (f32, StepOutcome) {
        let (loss, outcome) =
            self.step_inner(model, kfac, optimizer, comm, x, labels, criterion, lr);
        if let (Some((recorder, _)), Some((registry, _))) = (&self.recorder, &self.telemetry) {
            recorder.snapshot(registry);
            match outcome {
                StepOutcome::Stepped => {}
                StepOutcome::SkippedStep => {
                    self.dump_recorder("skipped_step");
                }
                StepOutcome::RankLost(r) => {
                    self.dump_recorder(&format!("rank_lost_{r}"));
                }
            }
        }
        (loss, outcome)
    }

    #[allow(clippy::too_many_arguments)]
    fn step_inner(
        &mut self,
        model: &mut Sequential,
        kfac: &mut Option<Kfac>,
        optimizer: &mut Sgd,
        comm: &dyn Communicator,
        x: &Tensor4,
        labels: &[usize],
        criterion: &CrossEntropyLoss,
        lr: f32,
    ) -> (f32, StepOutcome) {
        let capture = kfac.as_ref().map(|k| k.needs_capture()).unwrap_or(false);
        model.zero_grad();
        model.set_capture(capture);
        let out = model.forward(x, Mode::Train);
        let (loss, grad) = criterion.forward(&out, labels);
        let _ = model.backward(&grad);

        // Rung 1: gradient allreduce under retry. Unaveraged gradients
        // are unusable, so exhausted retries skip the step (rung 4).
        if comm.size() > 1 {
            let mut flat = Vec::new();
            model.visit_params("", &mut |_, _, g| flat.extend_from_slice(g));
            let res = self.ft.retry.run(|| {
                comm.try_allreduce_tagged(&mut flat, ReduceOp::Average, TrafficClass::Gradient)
            });
            match res {
                Ok(()) => {
                    let mut off = 0;
                    model.visit_params("", &mut |_, _, g| {
                        g.copy_from_slice(&flat[off..off + g.len()]);
                        off += g.len();
                    });
                }
                Err(CollectiveError::RankFailed(r)) => return (loss, StepOutcome::RankLost(r)),
                Err(_) => {
                    self.comm_faults += 1;
                    self.note_skipped();
                    return (loss, StepOutcome::SkippedStep);
                }
            }
        }

        // K-FAC stages with staleness degradation (rungs 2–3).
        if let Some(k) = kfac.as_mut() {
            if k.is_factor_iteration() {
                let mut layers = Vec::new();
                model.collect_kfac(&mut layers);
                for (li, layer) in layers.iter().enumerate() {
                    k.factor_update_layer(li, &**layer);
                }
                if comm.size() > 1 {
                    let mut fused = k.factor_pack();
                    let res = self.ft.retry.run(|| {
                        comm.try_allreduce_tagged(
                            &mut fused,
                            ReduceOp::Average,
                            TrafficClass::Factor,
                        )
                    });
                    match res {
                        // Silent corruption is caught by the checked
                        // unpack, which keeps the stale averages.
                        Ok(()) => {
                            if !k.factor_unpack_checked(&fused) {
                                self.comm_faults += 1;
                            }
                        }
                        Err(CollectiveError::RankFailed(r)) => {
                            return (loss, StepOutcome::RankLost(r))
                        }
                        Err(_) => {
                            k.note_stale_factor();
                            self.comm_faults += 1;
                        }
                    }
                }
                k.note_factor_update();
            }
            if k.is_eig_iteration() {
                let world = comm.size();
                let rank = comm.rank();
                let assignment = k.eig_assignment(world);
                // Staged: nothing is stored until the allgather lands,
                // so a failure leaves every rank identically stale.
                let payload = k.eig_compute_payload(&assignment, rank);
                if world > 1 {
                    let res = self
                        .ft
                        .retry
                        .run(|| comm.try_allgather_tagged(&payload, TrafficClass::Eigen));
                    match res {
                        Ok(gathered) => {
                            k.eig_apply_all(&assignment, &gathered);
                            k.note_eig_update();
                        }
                        Err(CollectiveError::RankFailed(r)) => {
                            return (loss, StepOutcome::RankLost(r))
                        }
                        Err(_) => {
                            k.note_stale_factor();
                            self.comm_faults += 1;
                        }
                    }
                } else {
                    k.eig_apply_all(&assignment, &[payload]);
                    k.note_eig_update();
                }
            }
            // Preconditioning is local; missing or degraded
            // second-order state falls back inside precondition_one.
            let mut layers = Vec::new();
            model.collect_kfac(&mut layers);
            let grads: Vec<Matrix> = layers.iter().map(|l| l.grad_matrix()).collect();
            let preconds: Vec<Matrix> = grads
                .iter()
                .enumerate()
                .map(|(li, g)| k.precondition_one(li, g))
                .collect();
            k.apply_with_clip(&mut layers, &preconds, &grads, lr);
            k.advance();
        }

        // Rung 4: health gate on loss and gradients before the step.
        let grad_limit = self.ft.grad_limit;
        let mut healthy = loss.is_finite();
        if healthy {
            model.visit_params("", &mut |_, _, g| {
                if !g.iter().all(|v| v.is_finite() && v.abs() <= grad_limit) {
                    healthy = false;
                }
            });
        }
        if !healthy {
            self.note_skipped();
            return (loss, StepOutcome::SkippedStep);
        }

        optimizer.step(model, lr);
        self.steps_done += 1;

        if self.ft.checkpoint_every > 0
            && (self.steps_done as usize).is_multiple_of(self.ft.checkpoint_every)
        {
            self.latest_checkpoint = Some(checkpoint::save(
                model,
                optimizer,
                kfac.as_ref(),
                self.steps_done,
                0,
            ));
        }
        (loss, StepOutcome::Stepped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac::KfacConfig;
    use kfac_collectives::{FaultPlan, FaultPlanConfig, FaultyCommunicator, ThreadComm};
    use kfac_nn::Linear;
    use kfac_tensor::Rng64;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn model(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        Sequential::from_layers(vec![
            Box::new(Linear::new("fc1", 6, 5, true, &mut rng)),
            Box::new(Linear::new("fc2", 5, 4, true, &mut rng)),
        ])
    }

    fn batch(round: usize) -> (Tensor4, Vec<usize>) {
        let mut rng = Rng64::new(7 + round as u64);
        let x = Tensor4::from_vec(4, 6, 1, 1, (0..24).map(|_| rng.normal_f32()).collect());
        (x, vec![0, 1, 2, 3])
    }

    fn run_group(
        world: usize,
        iters: usize,
        ft: FaultTolerance,
        plan: Option<Arc<FaultPlan>>,
    ) -> Vec<(Vec<f32>, ResilientTrainer)> {
        let comms = ThreadComm::create(world);
        let plan = &plan;
        let ft = &ft;
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    s.spawn(move || {
                        let mut m = model(3);
                        let mut opt = Sgd::new(0.9, 1e-4);
                        let mut k = Some(Kfac::new(
                            &mut m,
                            KfacConfig {
                                update_freq: 2,
                                ..KfacConfig::default()
                            },
                        ));
                        let criterion = CrossEntropyLoss::new();
                        let mut tr = ResilientTrainer::new(*ft);
                        let mut run = |tr: &mut ResilientTrainer, c: &dyn Communicator| {
                            let (m, opt, k) = (&mut m, &mut opt, &mut k);
                            for round in 0..iters {
                                let (x, labels) = batch(round);
                                let (loss, outcome) =
                                    tr.step(m, k, opt, c, &x, &labels, &criterion, 0.05);
                                assert!(loss.is_finite());
                                assert_ne!(
                                    outcome,
                                    StepOutcome::RankLost(usize::MAX),
                                    "unreachable"
                                );
                            }
                            let mut p = Vec::new();
                            m.visit_params("", &mut |_, w, _| p.extend_from_slice(w));
                            p
                        };
                        let params = match plan {
                            Some(plan) => {
                                let fc = FaultyCommunicator::new(comm, Arc::clone(plan));
                                run(&mut tr, &fc)
                            }
                            None => run(&mut tr, &comm),
                        };
                        (params, tr)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    /// Transient faults below the retry budget heal completely: the
    /// trajectory is bitwise identical to the fault-free run.
    #[test]
    fn transient_faults_heal_bitwise() {
        let ft = FaultTolerance {
            retry: RetryPolicy {
                max_attempts: 12,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            ..FaultTolerance::default()
        };
        let clean = run_group(2, 6, ft, None);
        let plan = Arc::new(FaultPlan::new(
            FaultPlanConfig {
                seed: 11,
                transient_prob: 0.3,
                transient_ops: 2,
                ..FaultPlanConfig::default()
            },
            2,
        ));
        let faulty = run_group(2, 6, ft, Some(plan));
        for (c, f) in clean.iter().zip(&faulty) {
            assert_eq!(c.0.len(), f.0.len());
            for (a, b) in c.0.iter().zip(&f.0) {
                assert_eq!(a.to_bits(), b.to_bits(), "transient fault left a residue");
            }
        }
        assert_eq!(faulty[0].1.skipped_steps, 0);
    }

    /// Long outages on K-FAC traffic degrade to stale factors — the
    /// run finishes with finite parameters and counts its degradations.
    #[test]
    fn timeouts_on_kfac_traffic_degrade_to_stale_factors() {
        let ft = FaultTolerance {
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::ZERO,
                max_backoff: Duration::ZERO,
            },
            ..FaultTolerance::default()
        };
        let plan = Arc::new(FaultPlan::new(
            FaultPlanConfig {
                seed: 5,
                timeout_prob: 0.5,
                timeout_ops: 6,
                classes: vec![TrafficClass::Factor, TrafficClass::Eigen],
                ..FaultPlanConfig::default()
            },
            2,
        ));
        let results = run_group(2, 8, ft, Some(plan));
        for (params, tr) in &results {
            assert!(params.iter().all(|v| v.is_finite()));
            assert!(tr.comm_faults > 0, "plan injected no faults — weak test");
            // Gradient traffic untouched → no skipped steps.
            assert_eq!(tr.skipped_steps, 0);
        }
        // Replicas stayed in lockstep through identical degradation.
        assert_eq!(results[0].0, results[1].0);
    }

    /// Critical watchdog findings map onto the ladder's own typed
    /// signals; staleness stays on rung 2 and never escalates.
    #[test]
    fn watchdog_criticals_map_to_ladder_signals() {
        use kfac_telemetry::watchdog::Finding;
        let registry = kfac_telemetry::Registry::new();
        let _guard = registry.install(3);
        let mut tr = ResilientTrainer::new(FaultTolerance::default());
        let report = |rule, severity| HealthReport {
            severity,
            findings: vec![Finding {
                rule,
                severity,
                message: String::new(),
            }],
            checked_at_us: 0,
        };
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::NonFinite, Severity::Warn)),
            None
        );
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::NonFinite, Severity::Critical)),
            Some(StepOutcome::SkippedStep)
        );
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::RetryRate, Severity::Critical)),
            Some(StepOutcome::SkippedStep)
        );
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::StalenessCeiling, Severity::Critical)),
            None
        );
        // A stall or dead peer leaves the group, reported as this
        // rank's own loss so every survivor reacts identically.
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::HeartbeatStall, Severity::Critical)),
            Some(StepOutcome::RankLost(3))
        );
        assert_eq!(
            tr.apply_watchdog(&report(RuleKind::PeerDead, Severity::Critical)),
            Some(StepOutcome::RankLost(3))
        );
    }

    /// A shrink resume bumps its counter, publishes the new membership
    /// epoch, and clears the dead-peer gauge the watchdog alarms on.
    #[test]
    fn shrink_resume_updates_membership_telemetry() {
        use kfac_telemetry::watchdog::names;
        let registry = kfac_telemetry::Registry::new();
        let _guard = registry.install(0);
        registry.gauge(names::DEAD_PEERS).set(1.0);
        let mut tr = ResilientTrainer::new(FaultTolerance::default());
        tr.note_shrink_resume(2);
        let gauges: std::collections::HashMap<_, _> = registry.gauges().into_iter().collect();
        assert_eq!(gauges[names::MEMBERSHIP_EPOCH], 2.0);
        assert_eq!(gauges[names::DEAD_PEERS], 0.0);
        let counters: std::collections::HashMap<_, _> = registry.counters().into_iter().collect();
        assert_eq!(counters["train/shrink_resumes"], 1);
    }

    /// A skipped step with a recorder attached snapshots the metrics and
    /// dumps; a critical watchdog verdict dumps to the configured path.
    #[test]
    fn escalations_snapshot_and_dump_the_flight_recorder() {
        use kfac_telemetry::watchdog::Finding;
        let registry = kfac_telemetry::Registry::new();
        let _guard = registry.install(0);
        let dir = std::env::temp_dir().join(format!("kfac-resilient-dump-{}", std::process::id()));
        let path = dir.join("dump.json");
        let _ = std::fs::remove_file(&path);

        // grad_limit 0 rejects every real gradient → rung 4 on step 1.
        let mut tr = ResilientTrainer::new(FaultTolerance {
            grad_limit: 0.0,
            ..FaultTolerance::default()
        });
        tr.set_flight_recorder(
            kfac_telemetry::FlightRecorder::default(),
            Some(path.clone()),
        );
        let mut m = model(3);
        let mut opt = Sgd::new(0.9, 1e-4);
        let mut k = None;
        let criterion = CrossEntropyLoss::new();
        let (x, labels) = batch(0);
        let (_, outcome) = tr.step(
            &mut m,
            &mut k,
            &mut opt,
            &kfac_collectives::LocalComm::new(),
            &x,
            &labels,
            &criterion,
            0.05,
        );
        assert_eq!(outcome, StepOutcome::SkippedStep);
        assert_eq!(tr.flight_recorder().unwrap().len(), 1, "one snapshot");
        let doc = std::fs::read_to_string(&path).expect("skip dumped to file");
        assert!(doc.contains("skipped_step"));

        let report = HealthReport {
            severity: Severity::Critical,
            findings: vec![Finding {
                rule: RuleKind::NonFinite,
                severity: Severity::Critical,
                message: "loss is NaN".into(),
            }],
            checked_at_us: 1,
        };
        assert_eq!(tr.apply_watchdog(&report), Some(StepOutcome::SkippedStep));
        let doc = std::fs::read_to_string(&path).expect("watchdog dumped to file");
        assert!(doc.contains("watchdog_critical"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rank loss aborts with `RankLost` on every rank, and the latest
    /// checkpoint restores for bitwise-identical resumption.
    #[test]
    fn rank_loss_aborts_and_checkpoint_resumes() {
        let ft = FaultTolerance {
            checkpoint_every: 2,
            ..FaultTolerance::default()
        };
        // Fault-free 6-iteration reference on a single rank.
        let clean = run_group(1, 6, FaultTolerance::default(), None);

        // Single rank, rank loss partway through: enough ops for 4
        // steps (~1 gradient + K-FAC ops each), then loss.
        let mut m = model(3);
        let mut opt = Sgd::new(0.9, 1e-4);
        let mut k = Some(Kfac::new(
            &mut m,
            KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            },
        ));
        let criterion = CrossEntropyLoss::new();
        let mut tr = ResilientTrainer::new(ft);
        // Single-rank comm never issues collectives (size()==1 paths),
        // so simulate loss by driving 4 steps then stopping — the
        // checkpoint mechanics are what's under test.
        for round in 0..4 {
            let (x, labels) = batch(round);
            let (_, outcome) = tr.step(
                &mut m,
                &mut k,
                &mut opt,
                &kfac_collectives::LocalComm::new(),
                &x,
                &labels,
                &criterion,
                0.05,
            );
            assert_eq!(outcome, StepOutcome::Stepped);
        }
        let blob = tr.latest_checkpoint().expect("checkpointed").to_vec();

        // Restore on fresh instances and finish iterations 4 and 5.
        let mut m2 = model(777);
        let mut opt2 = Sgd::new(0.9, 1e-4);
        let mut k2 = Some(Kfac::new(
            &mut m2,
            KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            },
        ));
        let (it, _) = checkpoint::restore(&blob, &mut m2, &mut opt2, k2.as_mut()).unwrap();
        assert_eq!(it, 4);
        let mut tr2 = ResilientTrainer::new(FaultTolerance::default());
        for round in it as usize..6 {
            let (x, labels) = batch(round);
            tr2.step(
                &mut m2,
                &mut k2,
                &mut opt2,
                &kfac_collectives::LocalComm::new(),
                &x,
                &labels,
                &criterion,
                0.05,
            );
        }
        let mut resumed = Vec::new();
        m2.visit_params("", &mut |_, w, _| resumed.extend_from_slice(w));
        assert_eq!(
            clean[0].0, resumed,
            "resumed run diverged from uninterrupted"
        );
    }
}
