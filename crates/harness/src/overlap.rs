//! Graph-based training iteration with compute/communication overlap.
//!
//! The sequential loop in [`trainer`](crate::trainer) runs
//! barrier-separated phases: backward, gradient allreduce, K-FAC step,
//! optimizer step. This module expresses the same iteration as a
//! [`TaskGraph`] (paper §V; Shi et al., arXiv:2107.06533) so the
//! [`Executor`] can hide communication behind computation:
//!
//! * the backward sweep signals a per-child external `Backward(c)` node
//!   as soon as that child's gradients are final, releasing the child's
//!   gradient bucket for allreduce while earlier layers are still in
//!   backprop;
//! * per-layer factor updates overlap the remaining gradient traffic;
//! * on factor-only iterations the factor allreduce overlaps
//!   preconditioning, which does not read the averages.
//!
//! **Numerics are bitwise identical to the sequential path.** Per-bucket
//! `Average` allreduces equal the one fused allreduce element-wise (the
//! communicator reduces in rank order per element, independent of
//! framing); the K-FAC phases are the exact methods `Kfac::step`
//! composes, partitioned along their real data dependencies; and the
//! task bodies lock shared state (model, preconditioner) so reorderings
//! the dependencies do permit never race.

use kfac::Kfac;
use kfac_collectives::{wire, Communicator, ReduceOp, TrafficClass};
use kfac_exec::{ExecMode, Executor, TaskGraph, TaskId, TaskKind};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Sequential};
use kfac_optim::{Optimizer, Sgd};
use kfac_telemetry::Span;
use kfac_tensor::{Matrix, Tensor4};
use parking_lot::Mutex;

/// How each rank executes its training iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Barrier-separated phases in program order (the reference oracle).
    Sequential,
    /// Task-graph execution: compute workers plus a dedicated
    /// communication worker overlapping collectives with computation.
    Overlapped {
        /// Compute worker threads per rank (≥ 1; the comm worker is
        /// extra).
        compute_workers: usize,
    },
    /// Task-graph execution on a single thread in a seeded topological
    /// order — deterministic replay for debugging overlap schedules.
    /// Every rank must use the same seed (collective order must match).
    Replay {
        /// Schedule seed; permutes execution order among ready tasks.
        seed: u64,
    },
}

impl ExecStrategy {
    /// The executor mode for this strategy; `None` for `Sequential`.
    pub fn exec_mode(self) -> Option<ExecMode> {
        match self {
            ExecStrategy::Sequential => None,
            ExecStrategy::Overlapped { compute_workers } => {
                Some(ExecMode::Overlapped { compute_workers })
            }
            ExecStrategy::Replay { seed } => Some(ExecMode::Replay { seed }),
        }
    }
}

/// Process-wide default strategy for new [`TrainConfig`]s, encoded as
/// `tag | payload << 2` (replay seeds truncate to 62 bits, which the
/// CLI never exceeds).
///
/// [`TrainConfig`]: crate::TrainConfig
static DEFAULT_EXEC: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Set the process-wide default execution strategy — how `xp --overlap`
/// routes every training run it drives through the task graph without
/// threading a flag through each experiment.
pub fn set_default_exec(exec: ExecStrategy) {
    let v = match exec {
        ExecStrategy::Sequential => 0,
        ExecStrategy::Overlapped { compute_workers } => 1 | ((compute_workers as u64) << 2),
        ExecStrategy::Replay { seed } => 2 | (seed << 2),
    };
    DEFAULT_EXEC.store(v, std::sync::atomic::Ordering::SeqCst);
}

/// The current process-wide default execution strategy.
pub fn default_exec() -> ExecStrategy {
    let v = DEFAULT_EXEC.load(std::sync::atomic::Ordering::SeqCst);
    match v & 3 {
        0 => ExecStrategy::Sequential,
        1 => ExecStrategy::Overlapped {
            compute_workers: (v >> 2) as usize,
        },
        _ => ExecStrategy::Replay { seed: v >> 2 },
    }
}

/// Run one training iteration as a task graph. Returns the batch loss.
///
/// Mirrors one body of the sequential loop exactly: zero grads, forward,
/// loss, backward, gradient allreduce, K-FAC step phases (factor /
/// eigendecomposition / precondition, K-FAC-opt strategy), optimizer
/// step. All ranks must call this with identically-shaped models and the
/// same mode so their comm-task sequences match.
#[allow(clippy::too_many_arguments)]
pub fn overlap_iteration(
    model: &mut Sequential,
    kfac: &mut Option<Kfac>,
    optimizer: &mut Sgd,
    comm: &dyn Communicator,
    x: &Tensor4,
    labels: &[usize],
    criterion: &CrossEntropyLoss,
    lr: f32,
    capture: bool,
    mode: ExecMode,
) -> f32 {
    let world = comm.size();
    let rank = comm.rank();
    // Wire dtypes from the preconditioner's precision policy (f32 — the
    // bitwise-legacy passthrough — when no K-FAC or policy is default).
    // The sequential path reads the same policy, so overlap-vs-sequential
    // bitwise identity holds per wire dtype, not just for f32.
    let precision = kfac.as_ref().map(|k| k.precision()).unwrap_or_default();
    let grad_wire = precision.grad_wire;
    let factor_wire = precision.factor_wire;

    // Gradient buckets: one per parameterized top-level child, flattened
    // in visit_params order. (counts[c] == 0 children — activations,
    // pooling — have nothing to exchange.)
    let counts = model.child_param_counts();
    let buckets: Vec<usize> = (0..counts.len()).filter(|&c| counts[c] > 0).collect();
    let mut bucket_of_child: Vec<Option<usize>> = vec![None; counts.len()];
    for (b, &c) in buckets.iter().enumerate() {
        bucket_of_child[c] = Some(b);
    }
    let bucket_bufs: Vec<Mutex<Vec<f32>>> = buckets
        .iter()
        .map(|&c| Mutex::new(vec![0.0f32; counts[c]]))
        .collect();

    // The K-FAC plan for this iteration, read before the graph borrows
    // the preconditioner mutably.
    let plan = kfac.as_ref().map(|k| {
        (
            k.is_factor_iteration(),
            k.is_eig_iteration(),
            k.num_layers(),
            k.eig_assignment(world),
            k.factors().len(),
        )
    });
    let n_layers = plan.as_ref().map(|p| p.2).unwrap_or(0);

    let loss_cell = Mutex::new(0.0f32);
    let model_mx = Mutex::new(model);
    let kfac_mx = kfac.as_mut().map(Mutex::new);
    let optim_mx = Mutex::new(optimizer);
    let grad_slots: Vec<Mutex<Option<Matrix>>> = (0..n_layers).map(|_| Mutex::new(None)).collect();
    let precond_slots: Vec<Mutex<Option<Matrix>>> =
        (0..n_layers).map(|_| Mutex::new(None)).collect();

    // Shadow everything as shared references so `move` closures capture
    // copies of the references, not the values.
    let buckets = &buckets;
    let bucket_of_child = &bucket_of_child;
    let bucket_bufs = &bucket_bufs;
    let loss_cell = &loss_cell;
    let model_mx = &model_mx;
    let kfac_mx = &kfac_mx;
    let optim_mx = &optim_mx;
    let grad_slots = &grad_slots;
    let precond_slots = &precond_slots;
    let assignment: &[usize] = plan.as_ref().map(|p| p.3.as_slice()).unwrap_or(&[]);

    // Declared before the graph: closures inside `g` borrow this vector,
    // so it must outlive `g`.
    let mut exts_storage = vec![TaskId(0); buckets.len()];

    let mut g = TaskGraph::new();

    // External completion events, created in reverse structural order —
    // the order the backward sweep signals them — so the comm worker's
    // ascending-id schedule matches gradient availability.
    for b in (0..buckets.len()).rev() {
        exts_storage[b] = g.add_external(TaskKind::Backward(buckets[b]), &[]);
    }
    let exts = &exts_storage;

    // Forward + loss + backward as one compute task; each finished child
    // drains its gradients into its bucket and signals its external.
    // Lock order everywhere below: model before preconditioner.
    let sweep = g.add(TaskKind::Custom("backward_sweep"), &[], move |ctl| {
        let mut model = model_mx.lock();
        model.zero_grad();
        model.set_capture(capture);
        let out = {
            let _span = Span::enter("train/forward").with("batch", labels.len());
            model.forward(x, Mode::Train)
        };
        let (loss, grad) = criterion.forward(&out, labels);
        *loss_cell.lock() = loss;
        let _span = Span::enter("train/backward");
        model.backward_each(&grad, &mut |c, layer| {
            if let Some(b) = bucket_of_child[c] {
                {
                    let mut buf = bucket_bufs[b].lock();
                    let mut off = 0;
                    layer.visit_params("", &mut |_, _, gs| {
                        buf[off..off + gs.len()].copy_from_slice(gs);
                        off += gs.len();
                    });
                }
                ctl.complete(exts[b]).unwrap();
            }
        });
    });

    // Per-bucket gradient allreduce, ids ascending in signal order.
    let mut grad_comms = Vec::with_capacity(buckets.len());
    for b in (0..buckets.len()).rev() {
        grad_comms.push(g.add(TaskKind::GradAllreduce(b), &[exts[b]], move |_| {
            let mut buf = bucket_bufs[b].lock();
            if world > 1 {
                wire::try_allreduce_half(
                    comm,
                    &mut buf,
                    ReduceOp::Average,
                    TrafficClass::Gradient,
                    grad_wire,
                )
                .expect("gradient allreduce");
            }
        }));
    }

    // Averaged gradients back into the model (single writer; needs the
    // sweep done so the model lock is free and grads are final).
    let mut wb_deps = grad_comms.clone();
    wb_deps.push(sweep);
    let writeback = g.add(TaskKind::Custom("grad_writeback"), &wb_deps, move |_| {
        let mut model = model_mx.lock();
        for (b, &c) in buckets.iter().enumerate() {
            let buf = bucket_bufs[b].lock();
            let mut off = 0;
            model.visit_child_params(c, &mut |_, _, gs| {
                gs.copy_from_slice(&buf[off..off + gs.len()]);
                off += gs.len();
            });
        }
    });

    // K-FAC phases (Opt strategy), partitioned along real dependencies.
    let mut precond_gate: Vec<TaskId> = Vec::new();
    if let Some((factor_iter, eig_iter, _, _, n_factors)) =
        plan.as_ref().map(|p| (p.0, p.1, p.2, (), p.4))
    {
        let mut factor_done: Vec<TaskId> = Vec::new();
        if factor_iter {
            // Per-layer factor computation: depends only on the sweep
            // (captures are final after backward), so it overlaps the
            // gradient allreduces still in flight.
            let mut fu_ids = Vec::with_capacity(n_layers);
            for li in 0..n_layers {
                fu_ids.push(g.add(TaskKind::FactorUpdate(li), &[sweep], move |_| {
                    let mut model = model_mx.lock();
                    let mut k = kfac_mx.as_ref().unwrap().lock();
                    let _span = Span::enter("kfac/factor_comp").with("layer", li);
                    let mut layers = Vec::new();
                    model.collect_kfac(&mut layers);
                    k.factor_update_layer(li, &*layers[li]);
                }));
            }
            factor_done.push(g.add(TaskKind::FactorAllreduce(0), &fu_ids, move |_| {
                let mut k = kfac_mx.as_ref().unwrap().lock();
                let _span = Span::enter("kfac/factor_comm");
                if world > 1 {
                    let mut fused = k.factor_pack();
                    wire::try_allreduce_half(
                        comm,
                        &mut fused,
                        ReduceOp::Average,
                        TrafficClass::Factor,
                        factor_wire,
                    )
                    .expect("factor allreduce");
                    k.factor_unpack(&fused);
                }
                k.note_factor_update();
            }));
        }
        if eig_iter {
            // Owned eigendecompositions read the freshly-averaged
            // factors; on an eig-without-factor iteration they read
            // last update's averages and can start immediately.
            let mut ag_deps = factor_done.clone();
            let mine = (0..n_factors).filter(|&id| assignment[id] == rank);
            for id in mine {
                ag_deps.push(g.add(TaskKind::Eigendecomp(id), &factor_done, move |_| {
                    let mut k = kfac_mx.as_ref().unwrap().lock();
                    let _span = Span::enter("kfac/eig_comp").with("factor", id);
                    k.eig_compute_one(id);
                }));
            }
            precond_gate.push(g.add(TaskKind::EigenAllgather, &ag_deps, move |_| {
                let mut k = kfac_mx.as_ref().unwrap().lock();
                let _span = Span::enter("kfac/eig_comm");
                if world > 1 {
                    let payload = k.eig_local_payload(assignment, rank);
                    let gathered =
                        wire::try_allgather_half(comm, &payload, TrafficClass::Eigen, factor_wire)
                            .expect("eigen allgather");
                    k.eig_apply_gathered(assignment, rank, &gathered);
                }
                k.note_eig_update();
            }));
        }
        // NOTE: on factor-only iterations `precond_gate` stays empty —
        // preconditioning never reads the averages, so the factor
        // allreduce deliberately overlaps it (§V-C of the ISSUE design).
    }

    // Per-layer preconditioning: needs averaged gradients and (on eig
    // iterations) the refreshed eigendecompositions.
    let mut final_deps: Vec<TaskId> = Vec::new();
    if kfac_mx.is_some() {
        for li in 0..n_layers {
            let deps: Vec<TaskId> = std::iter::once(writeback)
                .chain(precond_gate.iter().copied())
                .collect();
            final_deps.push(g.add(TaskKind::Precondition(li), &deps, move |_| {
                let mut model = model_mx.lock();
                let k = kfac_mx.as_ref().unwrap().lock();
                let _span = Span::enter("kfac/precond").with("layer", li);
                let mut layers = Vec::new();
                model.collect_kfac(&mut layers);
                let grad = layers[li].grad_matrix();
                let pg = k.precondition_one(li, &grad);
                *grad_slots[li].lock() = Some(grad);
                *precond_slots[li].lock() = Some(pg);
            }));
        }
    } else {
        final_deps.push(writeback);
    }

    // KL clip + writeback + SGD step close the iteration.
    g.add(TaskKind::OptimStep, &final_deps, move |_| {
        let mut model = model_mx.lock();
        if let Some(kfac) = kfac_mx.as_ref() {
            let mut k = kfac.lock();
            let mut layers = Vec::new();
            model.collect_kfac(&mut layers);
            let grads: Vec<Matrix> = grad_slots
                .iter()
                .map(|s| s.lock().take().unwrap())
                .collect();
            let preconds: Vec<Matrix> = precond_slots
                .iter()
                .map(|s| s.lock().take().unwrap())
                .collect();
            k.apply_with_clip(&mut layers, &preconds, &grads, lr);
            k.advance();
        }
        let _span = Span::enter("train/opt_step");
        optim_mx.lock().step(&mut **model, lr);
    });

    Executor::run(g, mode).expect("overlap iteration graph completes");
    let loss = *loss_cell.lock();
    loss
}
