//! Distributed synchronous training loop.
//!
//! Implements the paper's training procedure end-to-end (Fig. 1 +
//! Listing 1): each rank runs on its own thread with a full model
//! replica and a disjoint data shard; per iteration it computes
//! forward/backward on its local mini-batch, allreduces gradients,
//! optionally applies the K-FAC preconditioner, and takes an SGD step.
//! Validation accuracy is computed with sharded evaluation and count
//! allreduce at the end of each epoch.

use crate::overlap::{overlap_iteration, ExecStrategy};
use kfac::{DistStrategy, Kfac, KfacConfig, StageStats};
use kfac_collectives::{
    CommBackend, Communicator, FusionBuffer, LocalComm, ProcComm, ReduceOp, ThreadComm, Traffic,
    TrafficClass,
};
use kfac_data::{batch_of, Dataset, ShardedSampler};
use kfac_nn::{layer::Mode, CrossEntropyLoss, KfacEligible, Layer, Sequential};
use kfac_optim::{LrSchedule, Optimizer, Sgd};
use kfac_telemetry::{Registry, Span};
use kfac_tensor::Dtype;
use std::time::Instant;

/// Full configuration of one training run.
#[derive(Clone)]
pub struct TrainConfig {
    /// Simulated worker count ("GPUs" in the paper's terms); each rank
    /// is a thread with a model replica.
    pub ranks: usize,
    /// Per-rank mini-batch (global batch = ranks × local_batch).
    pub local_batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Learning-rate schedule (already scaled for the rank count).
    pub lr: LrSchedule,
    /// SGD momentum (paper: 0.9).
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Label smoothing (paper: 0.1 on ImageNet, 0 on CIFAR).
    pub label_smoothing: f32,
    /// K-FAC preconditioner; `None` trains plain SGD.
    pub kfac: Option<KfacConfig>,
    /// Master seed (models, shuffles).
    pub seed: u64,
    /// Telemetry registry the run records into. `None` (the default)
    /// creates a fresh registry per run; pass a shared one to collect
    /// several runs onto a single timeline (e.g. `xp --trace-out`).
    pub telemetry: Option<Registry>,
    /// How each rank executes its iteration: sequential phases (the
    /// reference oracle), the overlapped task graph, or seeded replay.
    pub exec: ExecStrategy,
    /// Which communicator fabric carries the collectives: in-process
    /// threads or the multi-process TCP backend. Resolved from
    /// `KFAC_COMM_BACKEND` by [`TrainConfig::new`]; override with
    /// [`TrainConfig::with_backend`]. Either way the loss trajectory is
    /// bitwise identical — the algorithm layer pins one reduction order.
    pub backend: CommBackend,
    /// Gradient fusion-buffer flush threshold in bytes; `None` defers to
    /// the `KFAC_FUSION_MB` env override and then Horovod's 16 MiB
    /// default. Clamped by the collectives crate so an oversized tensor
    /// still flushes in one message.
    pub fusion_threshold_bytes: Option<usize>,
}

impl TrainConfig {
    /// Paper-style defaults for a given worker count and schedule.
    pub fn new(ranks: usize, local_batch: usize, epochs: usize, lr: LrSchedule) -> Self {
        TrainConfig {
            ranks,
            local_batch,
            epochs,
            lr,
            momentum: 0.9,
            weight_decay: 5e-4,
            label_smoothing: 0.0,
            kfac: None,
            seed: 42,
            telemetry: None,
            exec: crate::overlap::default_exec(),
            backend: CommBackend::from_env().unwrap_or_else(|e| panic!("{e}")),
            fusion_threshold_bytes: None,
        }
    }

    /// Attach a K-FAC preconditioner. A `KFAC_EIG_BACKEND` env knob
    /// (jacobi|tridiag|randomized) overrides the configured eigensolver
    /// here, so any experiment can be re-run under a different factor
    /// backend without a rebuild; an unparseable value panics here at
    /// the binary boundary (the parse itself returns a typed
    /// [`kfac::ConfigError`] for fallible callers).
    pub fn with_kfac(mut self, mut cfg: KfacConfig) -> Self {
        match kfac::EigenSolver::from_env() {
            Ok(Some(solver)) => cfg.eigen_solver = solver,
            Ok(None) => {}
            Err(e) => panic!("{e}"),
        }
        // Same contract for the mixed-precision policy: `KFAC_PRECISION`
        // (a preset and/or `stage=dtype` overrides) rebinds the per-stage
        // dtypes of any experiment without a rebuild. Unset keeps the
        // configured policy (f32 everywhere by default — bitwise legacy).
        match kfac::PrecisionPolicy::from_env() {
            Ok(Some(policy)) => cfg.precision = policy,
            Ok(None) => {}
            Err(e) => panic!("{e}"),
        }
        self.kfac = Some(cfg);
        self
    }

    /// Select the execution strategy (e.g. `--overlap`).
    pub fn with_exec(mut self, exec: ExecStrategy) -> Self {
        self.exec = exec;
        self
    }

    /// Select the communicator backend (e.g. `--backend proc`),
    /// overriding the `KFAC_COMM_BACKEND` resolution done by `new`.
    pub fn with_backend(mut self, backend: CommBackend) -> Self {
        self.backend = backend;
        self
    }
}

/// Per-epoch measurements from rank 0.
#[derive(Debug, Clone)]
pub struct EpochRecord {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation top-1 accuracy in `[0, 1]` after the epoch.
    pub val_acc: f64,
    /// Wall-clock seconds spent in this epoch (training only).
    pub wall_s: f64,
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Per-epoch records.
    pub epochs: Vec<EpochRecord>,
    /// Validation accuracy after the final epoch.
    pub final_val_acc: f64,
    /// Best validation accuracy over all epochs.
    pub best_val_acc: f64,
    /// Total training wall time, seconds.
    pub total_s: f64,
    /// Rank-0 communication volumes.
    pub traffic: Traffic,
    /// Rank-0 K-FAC stage stats (if K-FAC ran).
    pub stage_stats: Option<StageStats>,
    /// The telemetry registry the run recorded into: per-rank spans for
    /// every iteration stage, exportable via `kfac_telemetry::export`.
    pub telemetry: Registry,
    /// Rank-0 flat model parameters after the final epoch (visit_params
    /// order) — the witness for bitwise overlap-vs-sequential checks.
    pub final_params: Vec<f32>,
}

impl TrainResult {
    /// First epoch whose validation accuracy reached `target`, if any.
    pub fn epochs_to_reach(&self, target: f64) -> Option<usize> {
        self.epochs
            .iter()
            .find(|e| e.val_acc >= target)
            .map(|e| e.epoch)
    }
}

/// Average the model's gradients across ranks through a fusion buffer —
/// the `optimizer.synchronize()` step of Listing 1. With the default
/// 16 MiB threshold every CPU-scale model here still goes out as one
/// fused message; a smaller configured threshold splits the exchange into
/// several bandwidth-sized collectives. The split never changes the
/// result bits: reduction is element-wise in pinned rank order, so the
/// message partitioning is invisible to the math.
pub fn allreduce_gradients_fused(
    model: &mut dyn Layer,
    comm: &dyn Communicator,
    threshold_bytes: Option<usize>,
    wire_dtype: Dtype,
) {
    if comm.size() == 1 {
        return;
    }
    // `wire_dtype` selects the wire width of each fused message
    // (`PrecisionPolicy::grad_wire`); `Dtype::F32` is the plain tagged
    // allreduce, bit-for-bit.
    let mut fb =
        FusionBuffer::with_configured(threshold_bytes, ReduceOp::Average, TrafficClass::Gradient)
            .with_dtype(wire_dtype);
    let mut next_id = 0usize;
    model.visit_params("", &mut |_, _, g| {
        fb.push(next_id, g.to_vec(), comm);
        next_id += 1;
    });
    fb.flush(comm);
    let mut done = fb.take_completed();
    done.sort_unstable_by_key(|(id, _)| *id);
    let mut reduced = done.into_iter();
    model.visit_params("", &mut |_, _, g| {
        let (_, data) = reduced.next().expect("one reduced tensor per parameter");
        g.copy_from_slice(&data);
    });
}

/// [`allreduce_gradients_fused`] at the default/env-resolved threshold
/// and full-width (f32) wire.
pub fn allreduce_gradients(model: &mut dyn Layer, comm: &dyn Communicator) {
    allreduce_gradients_fused(model, comm, None, Dtype::F32);
}

/// True when every gradient entry is finite — the health gate that
/// decides whether this iteration's update is applied at all.
pub fn gradients_finite(model: &mut dyn Layer) -> bool {
    let mut ok = true;
    model.visit_params("", &mut |_, _, g| {
        if ok && !g.iter().all(|v| v.is_finite()) {
            ok = false;
        }
    });
    ok
}

/// Sharded validation: each rank evaluates a slice of the validation
/// set; correct/total counts are allreduced.
fn validate(
    model: &mut Sequential,
    val: &dyn Dataset,
    comm: &dyn Communicator,
    batch: usize,
) -> f64 {
    let rank = comm.rank();
    let world = comm.size();
    let n = val.len();
    let per_rank = n.div_ceil(world);
    let start = (rank * per_rank).min(n);
    let end = ((rank + 1) * per_rank).min(n);

    let mut correct = 0usize;
    let mut total = 0usize;
    let mut idx = start;
    while idx < end {
        let stop = (idx + batch).min(end);
        let indices: Vec<usize> = (idx..stop).collect();
        let (x, labels) = batch_of(val, &indices, 0);
        let out = model.forward(&x, Mode::Eval);
        correct += kfac_nn::top1_correct(&out, &labels);
        total += labels.len();
        idx = stop;
    }

    let mut counts = [correct as f32, total as f32];
    comm.allreduce_tagged(&mut counts, ReduceOp::Sum, TrafficClass::Other);
    counts[0] as f64 / counts[1] as f64
}

/// Run one rank's training loop.
fn run_rank(
    rank: usize,
    comm: &dyn Communicator,
    build_model: &(dyn Fn(u64) -> Sequential + Sync),
    train_ds: &dyn Dataset,
    val_ds: &dyn Dataset,
    cfg: &TrainConfig,
    registry: &Registry,
) -> Option<TrainResult> {
    // Record this thread's spans into the run registry as `rank`; the
    // guard flushes on scope exit. Must precede Kfac::new, which
    // captures the ambient recorder for its stats view.
    let _telemetry = registry.install(rank);
    let setup_span = Span::enter("train/setup").with("ranks", cfg.ranks);
    // Identical replicas: every rank builds from the same seed (the
    // paper broadcasts initial weights; same-seed construction is the
    // deterministic equivalent).
    let mut model = build_model(cfg.seed);
    let mut optimizer = Sgd::new(cfg.momentum, cfg.weight_decay);
    let mut kfac = cfg.kfac.clone().map(|k| Kfac::new(&mut model, k));
    // Resolve the mixed-precision policy once per run. Gradients travel
    // at `grad_wire` width; capture storage goes bf16 when either the
    // capture or the factor-Gram stage asks for it (the bf16 Gram
    // kernels consume bf16-encoded captures, so the two knobs share the
    // storage format). The all-f32 default skips every conversion.
    let precision = cfg.kfac.as_ref().map(|k| k.precision).unwrap_or_default();
    let grad_wire = precision.grad_wire;
    if precision.capture == Dtype::Bf16 || precision.factor_gram == Dtype::Bf16 {
        let mut layers: Vec<&mut dyn KfacEligible> = Vec::new();
        model.collect_kfac(&mut layers);
        for layer in &mut layers {
            layer.set_capture_dtype(Dtype::Bf16);
        }
    }
    if !precision.is_all_f32() {
        // Policy gauges for the live metrics plane: one per stage, value
        // = storage/wire width in bits (32 or 16).
        for (stage, dtype) in [
            ("capture", precision.capture),
            ("factor_gram", precision.factor_gram),
            ("factor_ema", precision.factor_ema),
            ("eig", precision.eig),
            ("precond", precision.precond),
            ("grad_wire", precision.grad_wire),
            ("factor_wire", precision.factor_wire),
        ] {
            registry
                .gauge(&format!("kfac/precision/{stage}_bits"))
                .set((dtype.size_of() * 8) as f64);
        }
    }
    let criterion = CrossEntropyLoss::with_smoothing(cfg.label_smoothing);
    let sampler = ShardedSampler::new(
        train_ds.len(),
        comm.size(),
        rank,
        cfg.local_batch,
        cfg.seed ^ 0x5a5a,
    );
    let iters_per_epoch = sampler.batches_per_epoch();
    drop(setup_span);

    let mut records = Vec::with_capacity(cfg.epochs);
    let t_start = Instant::now();

    for epoch in 0..cfg.epochs {
        let t_epoch = Instant::now();
        if let Some(k) = &mut kfac {
            k.set_epoch(epoch);
        }
        let mut loss_sum = 0.0f64;
        for (bi, indices) in sampler.epoch_batches(epoch).into_iter().enumerate() {
            let lr = cfg
                .lr
                .lr_at(epoch as f32 + bi as f32 / iters_per_epoch as f32);
            let capture = kfac.as_ref().map(|k| k.needs_capture()).unwrap_or(false);
            let t_iter = Instant::now();
            // Liveness + trajectory probes for the watchdog and the live
            // metrics plane. Pure reads of already-computed values: the
            // training math never consumes them.
            let record_iter = |loss: f32| {
                registry
                    .gauge(kfac_telemetry::watchdog::names::LOSS)
                    .set(loss as f64);
                registry
                    .gauge(kfac_telemetry::watchdog::names::HEARTBEAT_US)
                    .set(registry.micros_at(Instant::now()) as f64);
                registry
                    .histogram("train/iter_time_us")
                    .record(t_iter.elapsed().as_micros() as f64);
            };
            let _iter_span = Span::enter("train/iteration")
                .with("epoch", epoch)
                .with("iter", bi);
            let (x, labels) = batch_of(train_ds, &indices, epoch as u64 + 1);
            if let Some(mode) = cfg.exec.exec_mode() {
                let loss = overlap_iteration(
                    &mut model,
                    &mut kfac,
                    &mut optimizer,
                    comm,
                    &x,
                    &labels,
                    &criterion,
                    lr,
                    capture,
                    mode,
                );
                loss_sum += loss as f64;
                record_iter(loss);
                continue;
            }
            model.zero_grad();
            model.set_capture(capture);

            let loss = {
                let _span = Span::enter("train/forward").with("batch", indices.len());
                let out = model.forward(&x, Mode::Train);
                let (loss, grad) = criterion.forward(&out, &labels);
                loss_sum += loss as f64;
                drop(_span);
                let _span = Span::enter("train/backward");
                let _ = model.backward(&grad);
                loss
            };

            {
                let _span = Span::enter("train/grad_allreduce");
                allreduce_gradients_fused(&mut model, comm, cfg.fusion_threshold_bytes, grad_wire);
            }
            // Health gate: a non-finite loss or gradient (overflow,
            // data corruption) skips the K-FAC and optimizer updates
            // rather than poisoning the parameters. Post-allreduce
            // gradients are identical on every rank, so the skip is
            // group-consistent by construction.
            if !loss.is_finite() || !gradients_finite(&mut model) {
                registry.counter("train/skipped_steps").inc();
                record_iter(loss);
                continue;
            }
            if let Some(k) = &mut kfac {
                let _span = Span::enter("train/kfac_step").with("capture", capture as u64);
                k.step(&mut model, comm, lr);
            }
            {
                let _span = Span::enter("train/opt_step");
                optimizer.step(&mut model, lr);
            }
            record_iter(loss);
        }
        let wall_s = t_epoch.elapsed().as_secs_f64();

        let val_acc = {
            let _span = Span::enter("train/eval").with("epoch", epoch);
            validate(&mut model, val_ds, comm, cfg.local_batch.max(32))
        };
        records.push(EpochRecord {
            epoch,
            train_loss: loss_sum / iters_per_epoch.max(1) as f64,
            val_acc,
            wall_s,
        });
    }

    if rank != 0 {
        return None;
    }
    let best = records.iter().map(|r| r.val_acc).fold(0.0, f64::max);
    let last = records.last().map(|r| r.val_acc).unwrap_or(0.0);
    let mut final_params = Vec::new();
    model.visit_params("", &mut |_, p, _| final_params.extend_from_slice(p));
    Some(TrainResult {
        final_val_acc: last,
        best_val_acc: best,
        total_s: t_start.elapsed().as_secs_f64(),
        traffic: comm.traffic(),
        stage_stats: kfac.map(|k| k.stats()),
        telemetry: registry.clone(),
        epochs: records,
        final_params,
    })
}

/// Run one rank of the training loop over a caller-provided
/// communicator — the entry point for worker *processes* (`xp` in
/// `KFAC_PROC_RANK` mode) and for tests that drive exotic fabrics
/// ([`kfac_collectives::HierComm`], fault-wrapped comms). Returns
/// `Some(TrainResult)` on global rank 0, `None` elsewhere. The caller
/// must ensure every rank of `comm`'s group runs this with an identical
/// `cfg`, datasets and `build_model`.
pub fn train_with_comm(
    comm: &dyn Communicator,
    build_model: &(dyn Fn(u64) -> Sequential + Sync),
    train_ds: &dyn Dataset,
    val_ds: &dyn Dataset,
    cfg: &TrainConfig,
) -> Option<TrainResult> {
    let registry = cfg
        .telemetry
        .clone()
        .or_else(|| kfac_telemetry::current().map(|(r, _)| r))
        .unwrap_or_default();
    run_rank(
        comm.rank(),
        comm,
        build_model,
        train_ds,
        val_ds,
        cfg,
        &registry,
    )
}

/// Train a model across `cfg.ranks` simulated workers.
///
/// `build_model(seed)` must be deterministic: every rank calls it with
/// the same seed to obtain identical replicas.
pub fn train(
    build_model: impl Fn(u64) -> Sequential + Sync,
    train_ds: &dyn Dataset,
    val_ds: &dyn Dataset,
    cfg: &TrainConfig,
) -> TrainResult {
    assert!(cfg.ranks >= 1);
    if cfg.exec != ExecStrategy::Sequential {
        if let Some(k) = &cfg.kfac {
            assert_eq!(
                k.strategy,
                DistStrategy::Opt,
                "overlapped execution implements the K-FAC-opt phase graph only; \
                 use ExecStrategy::Sequential for K-FAC-lw"
            );
        }
    }
    // Precedence: explicit per-run registry, else the calling thread's
    // ambient one (so `xp --trace-out` captures every run it drives
    // without each driver threading a handle), else a fresh registry.
    let registry = cfg
        .telemetry
        .clone()
        .or_else(|| kfac_telemetry::current().map(|(r, _)| r))
        .unwrap_or_default();
    if cfg.ranks == 1 {
        let comm = LocalComm::new();
        return run_rank(0, &comm, &build_model, train_ds, val_ds, cfg, &registry)
            .expect("rank 0 returns");
    }
    match cfg.backend {
        CommBackend::Thread => {
            let comms = ThreadComm::create(cfg.ranks);
            drive_group(&comms, &build_model, train_ds, val_ds, cfg, &registry)
        }
        // Same rank threads, but every collective crosses a real TCP
        // socket through the proc wire path (the in-process harness for
        // the multi-process fabric; true process workers enter through
        // `train_with_comm`).
        CommBackend::Proc => {
            let comms = ProcComm::create_local_with(
                cfg.ranks,
                kfac_collectives::AlgoPolicy::from_env(),
                kfac_collectives::ProcConfig::DEFAULT_TIMEOUT,
            )
            .unwrap_or_else(|e| panic!("proc backend rendezvous failed: {e}"));
            drive_group(&comms, &build_model, train_ds, val_ds, cfg, &registry)
        }
    }
}

/// Spawn one thread per rank over an already-created communicator group
/// and collect rank 0's result.
fn drive_group<C: Communicator + Sync>(
    comms: &[C],
    build_model: &(dyn Fn(u64) -> Sequential + Sync),
    train_ds: &dyn Dataset,
    val_ds: &dyn Dataset,
    cfg: &TrainConfig,
    registry: &Registry,
) -> TrainResult {
    std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    run_rank(
                        comm.rank(),
                        comm,
                        build_model,
                        train_ds,
                        val_ds,
                        cfg,
                        registry,
                    )
                })
            })
            .collect();
        let mut result = None;
        for h in handles {
            if let Some(r) = h.join().expect("rank thread panicked") {
                result = Some(r);
            }
        }
        result.expect("rank 0 returns a result")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_data::synthetic_cifar;
    use kfac_nn::resnet::resnet_cifar;
    use kfac_tensor::Rng64;

    fn tiny_cfg(ranks: usize, epochs: usize) -> TrainConfig {
        TrainConfig::new(
            ranks,
            16,
            epochs,
            LrSchedule::paper_steps(0.05, vec![epochs * 2]),
        )
    }

    fn build(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        resnet_cifar(1, 4, 10, 3, &mut rng)
    }

    #[test]
    fn single_rank_training_learns() {
        let (train_ds, val_ds) = synthetic_cifar(8, 256, 64, 7);
        let mut cfg = tiny_cfg(1, 4);
        cfg.lr.warmup_epochs = 1.0;
        let result = train(build, &train_ds, &val_ds, &cfg);
        assert_eq!(result.epochs.len(), 4);
        // Better than chance (10 classes) after a few epochs.
        assert!(
            result.best_val_acc > 0.2,
            "val acc {} too low",
            result.best_val_acc
        );
        // Loss decreased.
        assert!(result.epochs.last().unwrap().train_loss < result.epochs[0].train_loss);
    }

    #[test]
    fn multi_rank_matches_equivalent_global_batch() {
        // 2 ranks × batch 8 must follow the same trajectory as 1 rank ×
        // batch 16 when the data order matches? (Sharding differs, so
        // only statistical equivalence holds — here we just require both
        // to learn and to produce valid records.)
        let (train_ds, val_ds) = synthetic_cifar(8, 256, 64, 7);
        let mut cfg = tiny_cfg(2, 3);
        cfg.local_batch = 8;
        cfg.lr.warmup_epochs = 1.0;
        let result = train(build, &train_ds, &val_ds, &cfg);
        assert_eq!(result.epochs.len(), 3);
        assert!(
            result.traffic.gradient_bytes > 0,
            "gradients were exchanged"
        );
        assert!(
            result.best_val_acc > 0.12,
            "above chance: {}",
            result.best_val_acc
        );
    }

    #[test]
    fn kfac_run_produces_stage_stats_and_traffic_classes() {
        let (train_ds, val_ds) = synthetic_cifar(8, 128, 32, 9);
        let mut cfg = tiny_cfg(2, 2);
        cfg.local_batch = 8;
        cfg.kfac = Some(KfacConfig {
            update_freq: 4,
            ..KfacConfig::default()
        });
        let result = train(build, &train_ds, &val_ds, &cfg);
        let stats = result.stage_stats.expect("kfac ran");
        assert!(stats.steps > 0);
        assert!(stats.factor_updates > 0);
        assert!(stats.eig_updates > 0);
        assert!(result.traffic.factor_bytes > 0);
        assert!(result.traffic.eigen_bytes > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (train_ds, val_ds) = synthetic_cifar(8, 128, 32, 3);
        let cfg = tiny_cfg(1, 2);
        let a = train(build, &train_ds, &val_ds, &cfg);
        let b = train(build, &train_ds, &val_ds, &cfg);
        assert_eq!(a.final_val_acc, b.final_val_acc);
        for (ra, rb) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(ra.train_loss, rb.train_loss);
        }
    }

    /// Satellite 4: the `--overlap` trainer must be bitwise identical to
    /// the sequential oracle — weights AND losses — after 3 iterations
    /// of 4-rank K-FAC CIFAR training.
    #[test]
    fn overlap_is_bitwise_identical_to_sequential_on_4_rank_cifar() {
        // 4 ranks × batch 8 × 3 batches/epoch = 96 training samples.
        let (train_ds, val_ds) = synthetic_cifar(8, 96, 32, 11);
        let base = {
            let mut cfg = tiny_cfg(4, 1);
            cfg.local_batch = 8;
            cfg.kfac = Some(KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            });
            cfg
        };
        let sequential = train(build, &train_ds, &val_ds, &base);
        assert!(!sequential.final_params.is_empty());

        for exec in [
            ExecStrategy::Overlapped { compute_workers: 2 },
            ExecStrategy::Replay { seed: 7 },
        ] {
            let mut cfg = base.clone();
            cfg.exec = exec;
            let overlapped = train(build, &train_ds, &val_ds, &cfg);
            assert_eq!(
                sequential.final_params, overlapped.final_params,
                "{exec:?} weights diverge from sequential"
            );
            for (s, o) in sequential.epochs.iter().zip(&overlapped.epochs) {
                assert_eq!(
                    s.train_loss.to_bits(),
                    o.train_loss.to_bits(),
                    "{exec:?} loss diverges from sequential"
                );
            }
        }
    }

    /// SGD-only (no K-FAC) overlap must also match the oracle.
    #[test]
    fn overlap_matches_sequential_without_kfac() {
        let (train_ds, val_ds) = synthetic_cifar(8, 64, 32, 5);
        let mut cfg = tiny_cfg(2, 1);
        cfg.local_batch = 8;
        let sequential = train(build, &train_ds, &val_ds, &cfg);
        cfg.exec = ExecStrategy::Overlapped { compute_workers: 1 };
        let overlapped = train(build, &train_ds, &val_ds, &cfg);
        assert_eq!(sequential.final_params, overlapped.final_params);
    }

    #[test]
    fn epochs_to_reach_finds_threshold() {
        let r = TrainResult {
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    train_loss: 1.0,
                    val_acc: 0.3,
                    wall_s: 1.0,
                },
                EpochRecord {
                    epoch: 1,
                    train_loss: 0.5,
                    val_acc: 0.6,
                    wall_s: 1.0,
                },
                EpochRecord {
                    epoch: 2,
                    train_loss: 0.4,
                    val_acc: 0.7,
                    wall_s: 1.0,
                },
            ],
            final_val_acc: 0.7,
            best_val_acc: 0.7,
            total_s: 3.0,
            traffic: Traffic::default(),
            stage_stats: None,
            telemetry: Registry::new(),
            final_params: Vec::new(),
        };
        assert_eq!(r.epochs_to_reach(0.6), Some(1));
        assert_eq!(r.epochs_to_reach(0.9), None);
    }
}
