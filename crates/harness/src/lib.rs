//! # kfac-harness
//!
//! Training harness and experiment drivers for the `kfac-rs` reproduction
//! of *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! * [`trainer`] — the distributed synchronous training loop (Fig. 1 +
//!   Listing 1): thread-rank replicas, fused gradient allreduce, optional
//!   K-FAC preconditioning, sharded validation.
//! * [`resilient`] — fault-tolerant iterations: retry, stale-factor and
//!   identity-preconditioner degradation, skipped steps, checkpoints.
//! * [`elastic`] — shrink-world recovery trials: kill a rank mid-run,
//!   fence it behind a membership epoch, restore the checkpoint on the
//!   survivors, and verify the trajectory bitwise (`xp elastic`).
//! * [`checkpoint`] — bitwise-resumable training-state serialization
//!   with atomic on-disk persistence.
//! * [`presets`] — CPU-tractable stand-ins for the paper's
//!   CIFAR-10/ResNet-32 and ImageNet/ResNet-50 setups at three scales
//!   (smoke/quick/full), preserving the paper's budget ratios.
//! * [`experiments`] — one driver per table and figure of §VI.
//! * [`benchkernels`] — packed-vs-legacy GEMM/Gram kernel benchmark
//!   behind `xp bench-kernels`.
//! * [`procrun`] — multi-process orchestration: `xp` re-executed as one
//!   OS process per rank over the TCP collective fabric
//!   (`xp proc-train`, `xp bench-allreduce`).
//! * [`report`] — markdown rendering of results.
//!
//! Regenerate any experiment with the `xp` binary:
//!
//! ```text
//! cargo run --release -p kfac-harness --bin xp -- table1 --scale quick
//! cargo run --release -p kfac-harness --bin xp -- all --scale smoke
//! ```

pub mod bencheig;
pub mod benchkernels;
pub mod checkpoint;
pub mod elastic;
pub mod experiments;
pub mod overlap;
pub mod presets;
pub mod procrun;
pub mod report;
pub mod resilient;
pub mod trainer;

pub use overlap::ExecStrategy;
pub use presets::{CifarSetup, ImagenetSetup, Scale};
pub use resilient::{FaultTolerance, ResilientTrainer, StepOutcome};
pub use trainer::{train, train_with_comm, TrainConfig, TrainResult};
