//! Training-state checkpoints for rank-loss recovery.
//!
//! A checkpoint captures everything needed to resume training with
//! bitwise-identical results: model parameters (`visit_params` order),
//! SGD momentum buffers, the complete K-FAC preconditioner state
//! ([`Kfac::save_state`]), and the loop position (iteration / epoch).
//! BatchNorm running statistics are deliberately excluded: they feed
//! only `Mode::Eval` forward passes, so Train-mode math — and therefore
//! the resumed parameter trajectory — is unaffected.
//!
//! The encoding is self-describing little-endian binary with no
//! external dependencies; [`restore`] validates structure and sizes and
//! errors on mismatched models rather than silently corrupting state.

use kfac::Kfac;
use kfac_nn::Layer;
use kfac_optim::Sgd;

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        if self.0.len() < n {
            return Err("checkpoint truncated".into());
        }
        let (head, tail) = self.0.split_at(n);
        self.0 = tail;
        Ok(head)
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, String> {
        let raw = self.take(4 * n)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Serialize the full training state into a checkpoint blob.
///
/// `iteration` and `epoch` are the loop position to resume from (the
/// next iteration to execute).
pub fn save(
    model: &mut dyn Layer,
    optimizer: &Sgd,
    kfac: Option<&Kfac>,
    iteration: u64,
    epoch: u64,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"CKPT");
    put_u64(&mut out, 1); // format version
    put_u64(&mut out, iteration);
    put_u64(&mut out, epoch);

    // Model parameters, flat in visit_params order.
    let mut params = Vec::new();
    model.visit_params("", &mut |_, w, _| params.extend_from_slice(w));
    put_u64(&mut out, params.len() as u64);
    put_f32s(&mut out, &params);

    // SGD momentum buffers, name-sorted.
    let velocity = optimizer.export_state();
    put_u64(&mut out, velocity.len() as u64);
    for (name, v) in &velocity {
        put_u64(&mut out, name.len() as u64);
        out.extend_from_slice(name.as_bytes());
        put_u64(&mut out, v.len() as u64);
        put_f32s(&mut out, v);
    }

    // K-FAC preconditioner state.
    match kfac {
        Some(k) => {
            out.push(1);
            let state = k.save_state();
            put_u64(&mut out, state.len() as u64);
            out.extend_from_slice(&state);
        }
        None => out.push(0),
    }
    out
}

/// Restore a checkpoint produced by [`save`] into an
/// identically-structured model / optimizer / preconditioner. Returns
/// `(iteration, epoch)` to resume from. Errors on malformed bytes or a
/// parameter-count mismatch, in which case the model may be partially
/// written and should be discarded.
pub fn restore(
    bytes: &[u8],
    model: &mut dyn Layer,
    optimizer: &mut Sgd,
    kfac: Option<&mut Kfac>,
) -> Result<(u64, u64), String> {
    let mut r = Reader(bytes);
    if r.take(4)? != b"CKPT" {
        return Err("not a checkpoint blob".into());
    }
    if r.u64()? != 1 {
        return Err("unsupported checkpoint version".into());
    }
    let iteration = r.u64()?;
    let epoch = r.u64()?;

    let n_params = r.u64()? as usize;
    let params = r.f32s(n_params)?;
    let mut off = 0usize;
    let mut overrun = false;
    model.visit_params("", &mut |_, w, _| {
        if off + w.len() <= params.len() {
            w.copy_from_slice(&params[off..off + w.len()]);
        } else {
            overrun = true;
        }
        off += w.len();
    });
    if overrun || off != params.len() {
        return Err(format!(
            "checkpoint holds {} parameters, model wants {off}",
            params.len()
        ));
    }

    let n_vel = r.u64()? as usize;
    let mut velocity = Vec::with_capacity(n_vel);
    for _ in 0..n_vel {
        let name_len = r.u64()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| "bad parameter name in checkpoint".to_string())?;
        let len = r.u64()? as usize;
        velocity.push((name, r.f32s(len)?));
    }
    optimizer.import_state(velocity);

    match (r.u8()?, kfac) {
        (0, _) => {}
        (1, Some(k)) => {
            let len = r.u64()? as usize;
            k.restore_state(r.take(len)?)?;
        }
        (1, None) => {
            // Checkpoint carries K-FAC state but the run has no
            // preconditioner: skip it rather than fail, so SGD-only
            // resumption from a K-FAC checkpoint still works.
            let len = r.u64()? as usize;
            r.take(len)?;
        }
        (t, _) => return Err(format!("bad kfac tag {t}")),
    }
    if !r.0.is_empty() {
        return Err("trailing bytes in checkpoint".into());
    }
    Ok((iteration, epoch))
}

/// Atomically persist a checkpoint blob to `path`: write to a temp file
/// in the same directory, fsync it, rename over the destination, then
/// fsync the directory (on Unix) so the rename itself is durable. A
/// crash at any point leaves either the previous checkpoint or the new
/// one — never a torn `CKPT` file.
pub fn save_to_file(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    #[cfg(unix)]
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Read a checkpoint blob previously persisted with [`save_to_file`].
/// Structural validation happens in [`restore`]; this only moves bytes.
pub fn load_from_file(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac::KfacConfig;
    use kfac_nn::{layer::Mode, CrossEntropyLoss, Linear, Sequential};
    use kfac_optim::Optimizer;
    use kfac_tensor::{Rng64, Tensor4};

    fn model(seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        Sequential::from_layers(vec![Box::new(Linear::new("fc", 6, 4, true, &mut rng))])
    }

    fn one_iter(m: &mut Sequential, opt: &mut Sgd, k: &mut Option<Kfac>, seed: u64) {
        let mut rng = Rng64::new(seed);
        let x = Tensor4::from_vec(4, 6, 1, 1, (0..24).map(|_| rng.normal_f32()).collect());
        m.zero_grad();
        m.set_capture(k.as_ref().map(|k| k.needs_capture()).unwrap_or(false));
        let out = m.forward(&x, Mode::Train);
        let (_, g) = CrossEntropyLoss::new().forward(&out, &[0, 1, 2, 3]);
        let _ = m.backward(&g);
        if let Some(k) = k {
            k.step(m, &kfac_collectives::LocalComm::new(), 0.05);
        }
        opt.step(m, 0.05);
    }

    fn flat_params(m: &mut Sequential) -> Vec<f32> {
        let mut p = Vec::new();
        m.visit_params("", &mut |_, w, _| p.extend_from_slice(w));
        p
    }

    /// Satellite: checkpoint → restore must continue training with
    /// bitwise-identical parameters versus the uninterrupted run.
    #[test]
    fn roundtrip_resumes_bitwise_identical() {
        // Uninterrupted reference: 6 iterations.
        let mut m_a = model(3);
        let mut opt_a = Sgd::new(0.9, 1e-4);
        let mut k_a = Some(Kfac::new(
            &mut m_a,
            KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            },
        ));
        for i in 0..6 {
            one_iter(&mut m_a, &mut opt_a, &mut k_a, 100 + i);
        }

        // Interrupted run: 3 iterations, checkpoint, restore into fresh
        // instances, 3 more iterations.
        let mut m_b = model(3);
        let mut opt_b = Sgd::new(0.9, 1e-4);
        let mut k_b = Some(Kfac::new(
            &mut m_b,
            KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            },
        ));
        for i in 0..3 {
            one_iter(&mut m_b, &mut opt_b, &mut k_b, 100 + i);
        }
        let blob = save(&mut m_b, &opt_b, k_b.as_ref(), 3, 0);

        let mut m_c = model(999); // different init — must be overwritten
        let mut opt_c = Sgd::new(0.9, 1e-4);
        let mut k_c = Some(Kfac::new(
            &mut m_c,
            KfacConfig {
                update_freq: 2,
                ..KfacConfig::default()
            },
        ));
        let (it, ep) = restore(&blob, &mut m_c, &mut opt_c, k_c.as_mut()).unwrap();
        assert_eq!((it, ep), (3, 0));
        for i in it..6 {
            one_iter(&mut m_c, &mut opt_c, &mut k_c, 100 + i);
        }

        let pa = flat_params(&mut m_a);
        let pc = flat_params(&mut m_c);
        assert_eq!(pa.len(), pc.len());
        for (a, c) in pa.iter().zip(&pc) {
            assert_eq!(a.to_bits(), c.to_bits(), "resumed trajectory diverged");
        }
    }

    #[test]
    fn mismatched_model_is_rejected() {
        let mut m = model(1);
        let mut opt = Sgd::new(0.9, 0.0);
        let blob = save(&mut m, &opt, None, 0, 0);
        let mut rng = Rng64::new(2);
        let mut other =
            Sequential::from_layers(vec![Box::new(Linear::new("fc", 10, 4, true, &mut rng))]);
        assert!(restore(&blob, &mut other, &mut opt, None).is_err());
        assert!(restore(b"JUNK", &mut m, &mut opt, None).is_err());
        assert!(restore(&blob[..blob.len() - 3], &mut m, &mut opt, None).is_err());
    }

    /// Satellite: a checkpoint file truncated mid-write (the failure
    /// atomic persistence prevents, simulated here directly) must
    /// restore as a typed error, never a panic.
    #[test]
    fn truncated_checkpoint_file_is_a_typed_error() {
        let mut m = model(5);
        let mut opt = Sgd::new(0.9, 1e-4);
        let blob = save(&mut m, &opt, None, 7, 1);
        let dir = std::env::temp_dir().join("kfac-ckpt-truncation-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        save_to_file(&path, &blob).unwrap();

        // Intact file round-trips.
        let loaded = load_from_file(&path).unwrap();
        assert_eq!(loaded, blob);
        let (it, ep) = restore(&loaded, &mut m, &mut opt, None).unwrap();
        assert_eq!((it, ep), (7, 1));

        // Truncate at every interesting boundary: header, mid-params,
        // one byte short. All must be Err("checkpoint truncated"-class),
        // none may panic.
        for cut in [0, 2, 9, blob.len() / 2, blob.len() - 1] {
            std::fs::write(&path, &blob[..cut]).unwrap();
            let torn = load_from_file(&path).unwrap();
            let err = restore(&torn, &mut m, &mut opt, None).unwrap_err();
            assert!(
                err.contains("truncated") || err.contains("not a checkpoint"),
                "cut={cut}: unexpected error {err:?}"
            );
        }

        // Atomic persistence leaves no temp file behind.
        save_to_file(&path, &blob).unwrap();
        assert!(!path.with_extension("ckpt.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
