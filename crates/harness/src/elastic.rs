//! Shrink-world recovery trials (rung 5 of the degradation ladder).
//!
//! An elastic trial kills one rank of a K-FAC CIFAR training group
//! mid-run and drives the survivors through the full recovery path:
//! the failed gradient exchange surfaces [`StepOutcome::RankLost`], the
//! survivors run membership agreement and [`Elastic::shrink`] to an
//! epoch-fenced contiguous group, restore the latest checkpoint, and
//! continue on the smaller world. The acceptance bar — asserted by
//! `xp elastic` and the `elastic` integration test — is that the
//! post-shrink trajectory is **bitwise identical** (loss bits and
//! parameter bits) to a from-scratch group of the shrunken size
//! restored from the same checkpoint blob.
//!
//! Everything that determines the math lives here once and is shared by
//! the thread-fabric trial, the proc-fabric worker
//! (`xp` job `train-elastic`), and the reference run:
//! [`post_shrink_resume`] re-derives the batch plan from the *new*
//! `(rank, world)` — the same world-parameterized recompute the K-FAC
//! factor assignment performs internally — so survivors and reference
//! consume identical batches.

use crate::checkpoint;
use crate::procrun::params_bit_hash;
use crate::resilient::{FaultTolerance, ResilientTrainer, StepOutcome};
use kfac::{Kfac, KfacConfig};
use kfac_collectives::proc::ProcComm;
use kfac_collectives::{Communicator, Elastic, ReduceOp, ThreadComm};
use kfac_data::{batch_of, synthetic_cifar, Dataset, ShardedSampler, SyntheticImages};
use kfac_nn::{resnet::resnet_cifar, CrossEntropyLoss, Layer, Sequential};
use kfac_optim::Sgd;
use kfac_telemetry::watchdog::names;
use kfac_telemetry::{FlightRecorder, Registry, Watchdog, WatchdogConfig};
use kfac_tensor::Rng64;
use std::path::PathBuf;
use std::thread;

const LOCAL_BATCH: usize = 4;
const MODEL_SEED: u64 = 3;
const DATA_SEED: u64 = 11;
const LR: f32 = 0.02;

/// One elastic scenario: a `world`-rank run of `iters` iterations that
/// loses `kill_rank` at the start of iteration `kill_step`.
#[derive(Debug, Clone, Copy)]
pub struct ElasticSpec {
    /// Boot group size.
    pub world: usize,
    /// Total iteration budget (pre- and post-shrink combined).
    pub iters: usize,
    /// Iteration at whose start the victim dies.
    pub kill_step: usize,
    /// The victim (must not be rank 0: the original rank 0 reports).
    pub kill_rank: usize,
    /// Checkpoint cadence in successful steps.
    pub checkpoint_every: usize,
}

impl ElasticSpec {
    /// The canonical scenario at a given iteration budget: 4 ranks,
    /// death of rank 2 halfway through, checkpoints every 2 steps.
    pub fn canonical(iters: usize) -> ElasticSpec {
        ElasticSpec {
            world: 4,
            iters,
            kill_step: iters / 2,
            kill_rank: 2,
            checkpoint_every: 2,
        }
    }

    /// Read the scenario from the `KFAC_ELASTIC_*` env (worker side of
    /// the proc trial), with [`canonical`](Self::canonical) defaults.
    /// Malformed values are typed errors, not panics.
    pub fn from_env() -> Result<ElasticSpec, String> {
        fn knob(name: &str, default: usize) -> Result<usize, String> {
            match std::env::var(name) {
                Ok(s) => s
                    .trim()
                    .parse()
                    .map_err(|_| format!("{name}={s:?} is not a non-negative integer")),
                Err(_) => Ok(default),
            }
        }
        let iters = knob("KFAC_ELASTIC_ITERS", 8)?;
        let mut spec = ElasticSpec::canonical(iters);
        spec.world = knob("KFAC_ELASTIC_WORLD", spec.world)?;
        spec.kill_step = knob("KFAC_ELASTIC_KILL_STEP", spec.kill_step)?;
        spec.kill_rank = knob("KFAC_ELASTIC_KILL_RANK", spec.kill_rank)?;
        spec.checkpoint_every = knob("KFAC_ELASTIC_CKPT_EVERY", spec.checkpoint_every)?;
        spec.validate()?;
        Ok(spec)
    }

    /// The env the proc launcher sets so workers reconstruct this spec.
    pub fn to_env(&self) -> Vec<(String, String)> {
        vec![
            ("KFAC_ELASTIC_ITERS".into(), self.iters.to_string()),
            ("KFAC_ELASTIC_WORLD".into(), self.world.to_string()),
            ("KFAC_ELASTIC_KILL_STEP".into(), self.kill_step.to_string()),
            ("KFAC_ELASTIC_KILL_RANK".into(), self.kill_rank.to_string()),
            (
                "KFAC_ELASTIC_CKPT_EVERY".into(),
                self.checkpoint_every.to_string(),
            ),
        ]
    }

    /// Structural sanity: the kill must land after the first checkpoint
    /// and before the budget runs out, and rank 0 must survive.
    pub fn validate(&self) -> Result<(), String> {
        if self.world < 3 {
            return Err(format!(
                "elastic trial needs world >= 3, got {}",
                self.world
            ));
        }
        if self.kill_rank == 0 || self.kill_rank >= self.world {
            return Err(format!(
                "kill_rank must be in 1..{} (rank 0 reports), got {}",
                self.world, self.kill_rank
            ));
        }
        if self.checkpoint_every == 0 || self.kill_step < self.checkpoint_every {
            return Err(format!(
                "kill_step {} precedes the first checkpoint (every {})",
                self.kill_step, self.checkpoint_every
            ));
        }
        if self.kill_step >= self.iters {
            return Err(format!(
                "kill_step {} is outside the {}-iteration budget",
                self.kill_step, self.iters
            ));
        }
        Ok(())
    }
}

/// The trial model: the 3-stage depth-1 CIFAR ResNet every chaos
/// scenario trains (same seed, so cross-experiment numbers line up).
pub fn demo_model() -> Sequential {
    let mut rng = Rng64::new(MODEL_SEED);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

/// The trial preconditioner configuration.
pub fn demo_kfac(model: &mut Sequential) -> Kfac {
    Kfac::new(
        model,
        KfacConfig {
            update_freq: 2,
            damping: 0.003,
            ..KfacConfig::default()
        },
    )
}

/// The trial dataset (deterministic synthetic CIFAR, training split).
pub fn demo_data() -> SyntheticImages {
    synthetic_cifar(8, 96, 32, DATA_SEED).0
}

/// Per-rank batch index sequence for `iters` iterations, parameterized
/// on `(world, rank)` so a shrunken group re-derives its data sharding
/// from the new view — the elastic analogue of recomputing the K-FAC
/// factor assignment.
pub fn batch_plan(
    ds_len: usize,
    world: usize,
    rank: usize,
    iters: usize,
) -> Vec<(Vec<usize>, u64)> {
    let sampler = ShardedSampler::new(ds_len, world, rank, LOCAL_BATCH, DATA_SEED ^ 0x5a5a);
    let mut plan = Vec::with_capacity(iters);
    let mut epoch = 0usize;
    while plan.len() < iters {
        for indices in sampler.epoch_batches(epoch) {
            plan.push((indices, epoch as u64 + 1));
            if plan.len() == iters {
                break;
            }
        }
        epoch += 1;
    }
    plan
}

/// What one survivor (or one reference rank) produced after the shrink
/// point. Bitwise comparable across ranks, fabrics, and the reference.
#[derive(Debug, Clone)]
pub struct ResumeResult {
    /// Iteration the checkpoint restored to (the next one to run).
    pub restore_iteration: u64,
    /// Post-shrink per-iteration losses (averaged across the group, so
    /// every rank holds the same bits), in order.
    pub post_losses: Vec<f64>,
    /// Final parameters after the full budget.
    pub params: Vec<f32>,
}

impl ResumeResult {
    /// Bitwise equality: every loss bit and every parameter bit.
    pub fn bitwise_eq(&self, other: &ResumeResult) -> bool {
        self.restore_iteration == other.restore_iteration
            && self.post_losses.len() == other.post_losses.len()
            && self
                .post_losses
                .iter()
                .zip(&other.post_losses)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.params.len() == other.params.len()
            && self
                .params
                .iter()
                .zip(&other.params)
                .all(|(a, b)| a.to_bits() == b.to_bits())
    }
}

/// Restore `blob` into fresh training state and finish the budget on
/// `comm` — the shared recovery path: survivors call it with their
/// [`Elastic::shrink`] result, the reference calls it with a fresh
/// boot group of the shrunken size. The batch plan, K-FAC factor
/// assignment, and fusion sharding all re-derive from `comm`'s
/// `(rank, size)`, which is what makes the two bitwise comparable.
pub fn post_shrink_resume(
    comm: &dyn Communicator,
    blob: &[u8],
    spec: &ElasticSpec,
    train_ds: &(dyn Dataset + Sync),
) -> ResumeResult {
    let mut model = demo_model();
    let mut optimizer = Sgd::new(0.9, 1e-4);
    let mut kfac = Some(demo_kfac(&mut model));
    let (it, _) = checkpoint::restore(blob, &mut model, &mut optimizer, kfac.as_mut())
        .expect("checkpoint restores on the shrunken world");
    let batches = batch_plan(train_ds.len(), comm.size(), comm.rank(), spec.iters);
    let criterion = CrossEntropyLoss::new();
    let mut tr = ResilientTrainer::new(FaultTolerance::default());
    let mut post_losses = Vec::with_capacity(spec.iters - it as usize);
    for (j, (indices, variant)) in batches
        .iter()
        .enumerate()
        .take(spec.iters)
        .skip(it as usize)
    {
        let (x, labels) = batch_of(train_ds, indices, *variant);
        let (loss, outcome) = tr.step(
            &mut model,
            &mut kfac,
            &mut optimizer,
            comm,
            &x,
            &labels,
            &criterion,
            LR,
        );
        assert_eq!(
            outcome,
            StepOutcome::Stepped,
            "shrunken group degraded at iteration {j}"
        );
        // Each rank's loss is over its own shard; average so the
        // recorded trajectory is rank-invariant (and bitwise so).
        let mut global = [loss];
        comm.allreduce(&mut global, ReduceOp::Average);
        post_losses.push(global[0] as f64);
    }
    let mut params = Vec::new();
    model.visit_params("", &mut |_, w, _| params.extend_from_slice(w));
    ResumeResult {
        restore_iteration: it,
        post_losses,
        params,
    }
}

/// The epoch-fenced survivor group a `shrink` closure hands back:
/// the communicator plus the membership epoch it is fenced to.
type ShrunkGroup = (Box<dyn Communicator>, u64);

/// Drive one rank's pre-kill iterations and the recovery. Generic over
/// the fabric: `die` is what the victim does at the kill step (thread:
/// inject the death observation and return; proc: exit the process),
/// `shrink` produces the survivor communicator from the culprit hint.
#[allow(clippy::too_many_arguments)]
fn survivor_loop(
    comm: &dyn Communicator,
    spec: &ElasticSpec,
    train_ds: &(dyn Dataset + Sync),
    registry: &Registry,
    dump_path: Option<PathBuf>,
    die: &dyn Fn(),
    shrink: &dyn Fn(&[usize]) -> ShrunkGroup,
) -> Option<(ResumeResult, Vec<u8>, u64)> {
    let rank = comm.rank();
    let batches = batch_plan(train_ds.len(), spec.world, rank, spec.iters);
    let mut model = demo_model();
    let mut optimizer = Sgd::new(0.9, 1e-4);
    let mut kfac = Some(demo_kfac(&mut model));
    let criterion = CrossEntropyLoss::new();
    let mut tr = ResilientTrainer::new(FaultTolerance {
        checkpoint_every: spec.checkpoint_every,
        ..FaultTolerance::default()
    });
    if rank == 0 {
        tr.set_flight_recorder(FlightRecorder::default(), dump_path);
    }
    let mut i = 0usize;
    while i < spec.iters {
        if rank == spec.kill_rank && i == spec.kill_step {
            die();
            return None;
        }
        let (indices, variant) = &batches[i];
        let (x, labels) = batch_of(train_ds, indices, *variant);
        let (_, outcome) = tr.step(
            &mut model,
            &mut kfac,
            &mut optimizer,
            comm,
            &x,
            &labels,
            &criterion,
            LR,
        );
        match outcome {
            StepOutcome::Stepped => i += 1,
            StepOutcome::SkippedStep => panic!("elastic trial skipped a step at iteration {i}"),
            StepOutcome::RankLost(culprit) => {
                // Surface the death the way production detection does,
                // and check the watchdog → ladder wiring end to end:
                // a dead peer must recommend leaving this group.
                registry.gauge(names::DEAD_PEERS).set(1.0);
                let report = Watchdog::new(registry.clone(), WatchdogConfig::default()).evaluate();
                assert_eq!(
                    tr.apply_watchdog(&report),
                    Some(StepOutcome::RankLost(rank)),
                    "watchdog must escalate a dead peer off this group"
                );
                let blob = tr
                    .latest_checkpoint()
                    .expect("rank lost before the first checkpoint")
                    .to_vec();
                let (shrunk, epoch) = shrink(&[culprit]);
                assert_eq!(shrunk.size(), spec.world - 1, "one rank was lost");
                tr.note_shrink_resume(epoch);
                let resumed = post_shrink_resume(&*shrunk, &blob, spec, train_ds);
                return Some((resumed, blob, epoch));
            }
        }
    }
    panic!(
        "rank {rank}: the kill at iteration {} never landed",
        spec.kill_step
    );
}

/// Outcome of a whole-group elastic trial (every survivor agreed
/// bitwise; this is their shared view).
#[derive(Debug, Clone)]
pub struct ElasticTrial {
    /// The survivors' post-shrink trajectory.
    pub resumed: ResumeResult,
    /// The checkpoint blob the survivors restored from — feed it to
    /// [`run_reference`] for the bitwise oracle.
    pub checkpoint: Vec<u8>,
    /// Membership epoch of the shrunken group.
    pub epoch: u64,
    /// `train/shrink_resumes` across the group (one per survivor).
    pub shrink_resumes: u64,
}

/// Run the scenario on the in-process thread fabric: `world` ranks, the
/// victim injects its own death observation at the kill step (the
/// deterministic stand-in for the proc fabric's EOF/heartbeat
/// detection), survivors shrink and resume. Panics if the survivors
/// disagree at any bit. Rank 0's flight recorder dumps membership
/// events to `dump_path` when given.
pub fn run_thread_trial(
    spec: &ElasticSpec,
    train_ds: &(dyn Dataset + Sync),
    dump_path: Option<PathBuf>,
) -> ElasticTrial {
    spec.validate().expect("valid elastic spec");
    let comms = ThreadComm::create(spec.world);
    let registry = Registry::new();
    let registry = &registry;
    let dump_path = &dump_path;
    let results: Vec<Option<(ResumeResult, Vec<u8>, u64)>> = thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                s.spawn(move || {
                    let _telemetry = registry.install(rank);
                    let die = || comm.mark_dead(spec.kill_rank);
                    let shrink = |hint: &[usize]| {
                        let shrunk = comm.shrink(hint).expect("membership agreement");
                        let epoch = shrunk.view().epoch;
                        (Box::new(shrunk) as Box<dyn Communicator>, epoch)
                    };
                    survivor_loop(
                        &comm,
                        spec,
                        train_ds,
                        registry,
                        if rank == 0 { dump_path.clone() } else { None },
                        &die,
                        &shrink,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let survivors: Vec<(ResumeResult, Vec<u8>, u64)> = results.into_iter().flatten().collect();
    assert_eq!(survivors.len(), spec.world - 1, "exactly one rank died");
    for (r, blob, epoch) in &survivors[1..] {
        assert!(
            r.bitwise_eq(&survivors[0].0),
            "survivors diverged after the shrink"
        );
        assert_eq!(blob, &survivors[0].1, "survivors restored different blobs");
        assert_eq!(epoch, &survivors[0].2, "survivors fenced different epochs");
    }
    let shrink_resumes = registry
        .counters()
        .into_iter()
        .find(|(name, _)| name == "train/shrink_resumes")
        .map(|(_, v)| v)
        .unwrap_or(0);
    let (resumed, checkpoint, epoch) = survivors.into_iter().next().unwrap();
    ElasticTrial {
        resumed,
        checkpoint,
        epoch,
        shrink_resumes,
    }
}

/// The oracle: a *fresh* boot group of the shrunken size restores the
/// same blob and finishes the budget. Whatever the survivors computed
/// through the epoch-fenced view must match this bitwise.
pub fn run_reference(
    spec: &ElasticSpec,
    blob: &[u8],
    train_ds: &(dyn Dataset + Sync),
) -> ResumeResult {
    let comms = ThreadComm::create(spec.world - 1);
    let results: Vec<ResumeResult> = thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| s.spawn(move || post_shrink_resume(&comm, blob, spec, train_ds)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &results[1..] {
        assert!(r.bitwise_eq(&results[0]), "reference replicas diverged");
    }
    results.into_iter().next().unwrap()
}

/// The summary line the proc worker's original rank 0 prints, and the
/// launcher reconstructs from the reference run for comparison.
pub fn elastic_summary_json(world_after: usize, epoch: u64, result: &ResumeResult) -> String {
    let losses = result
        .post_losses
        .iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"world\": {}, \"epoch\": {}, \"restore_iteration\": {}, \
         \"post_losses\": [{}], \"params_hash\": \"{:016x}\"}}",
        world_after,
        epoch,
        result.restore_iteration,
        losses,
        params_bit_hash(&result.params)
    )
}

/// Worker half of the proc-fabric trial (`xp` job `train-elastic`):
/// the victim exits the process cold at the kill step — no goodbye, the
/// peers' readers see EOF and the failure detector does the rest. Rank
/// 0 persists the restore blob to `KFAC_ELASTIC_CKPT` (atomic
/// write-to-temp + rename) so the launcher can drive the reference run,
/// and prints the summary line.
pub fn proc_elastic_worker(comm: &ProcComm) -> i32 {
    let spec = match ElasticSpec::from_env() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if comm.size() != spec.world {
        eprintln!(
            "train-elastic spawned with {} ranks but KFAC_ELASTIC_WORLD={}",
            comm.size(),
            spec.world
        );
        return 2;
    }
    let ckpt_path = std::env::var_os("KFAC_ELASTIC_CKPT").map(PathBuf::from);
    let train_ds = demo_data();
    let registry = Registry::new();
    let _telemetry = registry.install(comm.rank());
    let rank = comm.rank();
    let die = || {
        // Simulate a crash: no Drop, no socket shutdown handshake.
        std::process::exit(0);
    };
    let ckpt_path = &ckpt_path;
    let shrink = |hint: &[usize]| {
        let shrunk = comm.shrink(hint).expect("membership agreement");
        let epoch = shrunk.epoch();
        (Box::new(shrunk) as Box<dyn Communicator>, epoch)
    };
    match survivor_loop(comm, &spec, &train_ds, &registry, None, &die, &shrink) {
        Some((resumed, blob, epoch)) => {
            if rank == 0 {
                // Persist the restore blob (atomic write-to-temp +
                // rename) so the launcher can drive the reference run
                // against the exact bytes the survivors used.
                if let Some(path) = ckpt_path {
                    checkpoint::save_to_file(path, &blob).expect("persist restore blob");
                }
                println!("{}", elastic_summary_json(spec.world - 1, epoch, &resumed));
            }
            0
        }
        None => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_env_parsing_is_typed_not_panicking() {
        let base = ElasticSpec::canonical(8);
        assert!(base.validate().is_ok());
        // Rank 0 must survive to report.
        let mut bad = base;
        bad.kill_rank = 0;
        assert!(bad.validate().unwrap_err().contains("rank 0"));
        // The kill must land after a checkpoint exists.
        let mut bad = base;
        bad.kill_step = 1;
        assert!(bad.validate().unwrap_err().contains("checkpoint"));
        // And inside the budget.
        let mut bad = base;
        bad.kill_step = 8;
        assert!(bad.validate().unwrap_err().contains("budget"));
        // Env round-trip covers every knob.
        let keys: Vec<String> = base.to_env().into_iter().map(|(k, _)| k).collect();
        for knob in [
            "KFAC_ELASTIC_ITERS",
            "KFAC_ELASTIC_WORLD",
            "KFAC_ELASTIC_KILL_STEP",
            "KFAC_ELASTIC_KILL_RANK",
            "KFAC_ELASTIC_CKPT_EVERY",
        ] {
            assert!(keys.iter().any(|k| k == knob), "missing {knob}");
        }
    }

    #[test]
    fn summary_json_is_parseable_and_bit_faithful() {
        let result = ResumeResult {
            restore_iteration: 4,
            post_losses: vec![2.2412109375, 1.5],
            params: vec![1.0, -2.5],
        };
        let json = elastic_summary_json(3, 1, &result);
        let doc = kfac_telemetry::json::Json::parse(&json).expect("valid json");
        assert_eq!(doc.get("world").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(doc.get("epoch").and_then(|v| v.as_f64()), Some(1.0));
        let losses: Vec<f64> = doc
            .get("post_losses")
            .and_then(|v| v.as_arr())
            .unwrap()
            .iter()
            .map(|v| v.as_f64().unwrap())
            .collect();
        // f64 Debug repr round-trips exactly through the parser.
        assert_eq!(losses[0].to_bits(), result.post_losses[0].to_bits());
        assert_eq!(
            doc.get("params_hash").and_then(|v| v.as_str()),
            Some(format!("{:016x}", params_bit_hash(&result.params)).as_str())
        );
    }
}
