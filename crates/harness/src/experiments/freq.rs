//! Table III + Figure 6 — accuracy and training time vs K-FAC update
//! frequency.
//!
//! Two halves, exactly as the paper assembles them:
//!
//! * **Accuracy** (measured here by real training runs): the update
//!   interval is swept over the same *fractions of an epoch* the paper's
//!   {100, 500, 1000}-iteration intervals represent at 64 GPUs
//!   (625 iterations/epoch → 0.16, 0.8 and 1.6 epochs between updates),
//!   plus the near-continuous interval of Fig. 6's freq-10 curve.
//! * **Training time** (projected by the calibrated cluster model): the
//!   55-epoch K-FAC budget priced at each frequency for
//!   ResNet-50/101/152 on 64 GPUs, alongside the 90-epoch SGD budget.

use crate::experiments::ExperimentOutput;
use crate::presets::{ImagenetSetup, Scale};
use crate::report::{hms, pct, Table};
use crate::trainer::{train, TrainConfig};
use kfac::KfacConfig;
use kfac_cluster::{
    scaling::TrainingBudget, ClusterSpec, IterationModel, KfacRunConfig, ModelProfile,
};
use kfac_data::Dataset as _;
use kfac_nn::arch::{resnet101, resnet152, resnet50};
use kfac_optim::LrSchedule;

/// The paper's interval sweep at 64 GPUs, as fractions of an epoch.
const PAPER_FRACTIONS: &[(usize, f64)] = &[(10, 0.016), (100, 0.16), (500, 0.8), (1000, 1.6)];

/// Run the experiment (serves both `table3` and `fig6`).
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = ImagenetSetup::new(scale);
    let ranks = match scale {
        Scale::Smoke => 2,
        _ => 2,
    };
    let iters_per_epoch = setup.train.len() / (ranks * setup.base_batch);

    // --- Accuracy half: real training runs at scaled intervals. ---
    let mut acc_rows = Vec::new();
    let mut tail_series: Vec<(String, Vec<f64>)> = Vec::new();
    let mut curves = Table::new(
        "Fig. 6 — last-third validation accuracy per update frequency",
        &["epoch", "update freq (paper-equivalent)", "val acc"],
    );
    for &(paper_freq, frac) in PAPER_FRACTIONS {
        let freq = ((iters_per_epoch as f64 * frac).round() as usize).max(1);
        let cfg = TrainConfig {
            label_smoothing: 0.1,
            ..TrainConfig::new(
                ranks,
                setup.base_batch,
                setup.kfac_epochs,
                LrSchedule {
                    warmup_epochs: setup.warmup(setup.kfac_epochs),
                    ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
                }
                .scale_for_workers(ranks),
            )
        }
        .with_kfac(KfacConfig {
            update_freq: freq,
            damping: 0.1,
            kl_clip: Some(0.01),
            // The QL backend makes the tight-interval sweep tractable on
            // CPU (same results as Jacobi; cross-checked in the core
            // crate's tests).
            eigen_solver: kfac::EigenSolver::TridiagonalQl,
            ..KfacConfig::default()
        });
        let r = train(
            |s| setup.correctness_model(s),
            &setup.train,
            &setup.val,
            &cfg,
        );
        acc_rows.push((paper_freq, freq, r.final_val_acc));
        let tail_start = setup.kfac_epochs - (setup.kfac_epochs / 3).max(1);
        let mut tail = Vec::new();
        for rec in r.epochs.iter().filter(|e| e.epoch >= tail_start) {
            curves.row(vec![
                rec.epoch.to_string(),
                paper_freq.to_string(),
                pct(rec.val_acc),
            ]);
            tail.push(rec.val_acc);
        }
        tail_series.push((format!("freq {paper_freq}"), tail));
    }

    let mut acc_table = Table::new(
        "Table III (accuracy half) — validation accuracy vs update frequency",
        &["paper-equivalent freq", "our interval (iters)", "val acc"],
    );
    for &(pf, f, acc) in &acc_rows {
        acc_table.row(vec![pf.to_string(), f.to_string(), pct(acc)]);
    }

    // --- Time half: calibrated cluster projection at 64 GPUs. ---
    let budget = TrainingBudget::default();
    let mut time_table = Table::new(
        "Table III (time half) — projected training minutes @64 GPUs",
        &["Model", "SGD", "freq 100", "freq 500", "freq 1000"],
    );
    for arch in [resnet50(), resnet101(), resnet152()] {
        let model = IterationModel::new(
            ModelProfile::from_arch(&arch),
            ClusterSpec::frontera(64),
            budget.local_batch,
        );
        let iters = budget.dataset / (64 * budget.local_batch);
        let sgd_min = model.sgd_iteration().total() * (iters * budget.sgd_epochs) as f64 / 60.0;
        let mut cells = vec![arch.name.clone(), hms(sgd_min * 60.0)];
        for freq in [100usize, 500, 1000] {
            let t = model
                .kfac_opt_iteration(KfacRunConfig::with_freq(freq))
                .total()
                * (iters * budget.kfac_epochs) as f64;
            cells.push(hms(t));
        }
        time_table.row(cells);
    }

    // Shape checks.
    let mut notes = Vec::new();
    let accs: Vec<f64> = acc_rows.iter().map(|&(_, _, a)| a).collect();
    let best = accs.iter().cloned().fold(0.0, f64::max);
    let last = *accs.last().expect("rows");
    if last <= best {
        notes.push(format!(
            "Shape holds: the largest interval has the lowest accuracy ({} vs best {}).",
            pct(last),
            pct(best)
        ));
    } else {
        notes.push("Shape DEVIATION: accuracy did not degrade at the largest interval.".into());
    }
    notes.push(
        "Times are projections from the calibrated cluster model (no GPUs available); \
         accuracies are measured on the synthetic ImageNet stand-in."
            .into(),
    );
    notes.push(format!(
        "Fig. 6 tail curves:\n```\n{}```",
        crate::report::ascii_chart(&tail_series, 60, 10)
    ));

    ExperimentOutput {
        id: "table3",
        tables: vec![acc_table, time_table, curves],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_all_frequencies() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables[0].len(), PAPER_FRACTIONS.len());
        assert_eq!(out.tables[1].len(), 3, "three models in the time half");
    }
}
