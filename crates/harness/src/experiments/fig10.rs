//! Figure 10 — factor computation time vs model complexity.
//!
//! Two complementary views:
//!
//! * **Measured**: wall-clock time of the real `compute_factors` code on
//!   runnable (width-scaled) ResNet-50/101/152 models, on this machine.
//! * **Projected**: the calibrated power law at full ImageNet scale.
//!
//! Both must show the same shape: factor time growing super-linearly
//! with parameter count.

use crate::experiments::ExperimentOutput;
use crate::presets::{ImagenetSetup, Scale};
use crate::report::{ms, Table};
use kfac_cluster::{ClusterSpec, IterationModel, ModelProfile};
use kfac_nn::arch::{resnet101, resnet152, resnet50};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer};
use std::time::Instant;

/// Measure one factor computation on a runnable scaled model.
fn measure_factor_time(setup: &ImagenetSetup, depth: usize, batch: usize) -> (usize, f64) {
    let mut model = setup.model(depth, 7);
    let params = model.num_params();

    // One captured forward/backward to populate activations/gradients.
    let (x, labels) = kfac_data::batch_of(&setup.train, &(0..batch).collect::<Vec<_>>(), 0);
    model.set_capture(true);
    let out = model.forward(&x, Mode::Train);
    let (_, grad) = CrossEntropyLoss::new().forward(&out, &labels);
    let _ = model.backward(&grad);

    let mut layers = Vec::new();
    model.collect_kfac(&mut layers);
    let t0 = Instant::now();
    let mut checksum = 0.0f32;
    for layer in &layers {
        let (a, g) = layer.compute_factors();
        checksum += a.trace() + g.trace();
    }
    std::hint::black_box(checksum);
    (params, t0.elapsed().as_secs_f64())
}

/// Run the experiment.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = ImagenetSetup::new(scale);
    let batch = match scale {
        Scale::Smoke => 8,
        _ => 16,
    };

    let mut measured = Table::new(
        "Fig. 10 (measured) — factor computation time on runnable scaled models",
        &["Model", "params", "factor time"],
    );
    let mut meas: Vec<(usize, f64)> = Vec::new();
    for depth in [50usize, 101, 152] {
        let (params, t) = measure_factor_time(&setup, depth, batch);
        measured.row(vec![
            format!("ResNet-{depth} (scaled)"),
            params.to_string(),
            ms(t),
        ]);
        meas.push((params, t));
    }

    let mut projected = Table::new(
        "Fig. 10 (projected) — factor computation time at full ImageNet scale",
        &["Model", "params", "factor time"],
    );
    let mut proj: Vec<(usize, f64)> = Vec::new();
    for arch in [resnet50(), resnet101(), resnet152()] {
        let profile = ModelProfile::from_arch(&arch);
        let params = profile.params;
        let m = IterationModel::new(profile, ClusterSpec::frontera(16), 32);
        let (fc, _) = m.factor_stage_s();
        projected.row(vec![arch.name.clone(), params.to_string(), ms(fc)]);
        proj.push((params, fc));
    }

    // Shape: super-linear growth — time ratio exceeds parameter ratio.
    let shape = |series: &[(usize, f64)]| -> bool {
        let t_ratio = series[2].1 / series[0].1;
        let p_ratio = series[2].0 as f64 / series[0].0 as f64;
        t_ratio > p_ratio
    };

    ExperimentOutput {
        id: "fig10",
        tables: vec![measured, projected],
        notes: vec![
            if shape(&proj) {
                "Shape holds (projected): factor time grows faster than parameter count.".into()
            } else {
                "Shape DEVIATION (projected).".into()
            },
            if shape(&meas) {
                "Shape holds (measured): factor time grows faster than parameter count on \
                 this machine too."
                    .into()
            } else {
                "Measured growth on the width-scaled CPU models is closer to linear (the \
                 memory-hierarchy effect driving the paper's super-linearity is \
                 GPU-specific)."
                    .into()
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_measures_three_models() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables[0].len(), 3);
        assert_eq!(out.tables[1].len(), 3);
    }
}
