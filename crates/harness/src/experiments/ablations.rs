//! Ablations of the paper's §V-C techniques, beyond the published tables.
//!
//! DESIGN.md §4 commits to ablating the design choices the paper
//! introduces but does not isolate:
//!
//! * **damping decay** — "starting with a larger damping accounts for
//!   rapid changes in the FIM at the start of training";
//! * **update-frequency decay** — "at fixed training epochs, we decrease
//!   kfac-update-freq … small performance improvements can be gained";
//! * **KL clipping** (Eq. 18) on vs off;
//! * **placement policy** in real training — round-robin (the paper's)
//!   vs size-balanced LPT (its proposed future work), compared on both
//!   accuracy (must be identical: placement is numerics-neutral) and
//!   measured eig-stage wall time.

use crate::experiments::ExperimentOutput;
use crate::presets::{CifarSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig};
use kfac::{KfacConfig, PlacementPolicy};
use kfac_optim::LrSchedule;

fn base_cfg(setup: &CifarSetup, ranks: usize) -> TrainConfig {
    TrainConfig::new(
        ranks,
        setup.base_batch,
        setup.kfac_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.kfac_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
        }
        .scale_for_workers(ranks),
    )
}

fn base_kfac() -> KfacConfig {
    KfacConfig {
        update_freq: 10,
        damping: 0.1,
        kl_clip: Some(0.01),
        ..KfacConfig::default()
    }
}

/// Run the ablation suite.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let ranks = match scale {
        Scale::Smoke => 2,
        _ => 4,
    };
    let epochs = setup.kfac_epochs;

    let mut table = Table::new(
        "Ablations — §V-C techniques on the CIFAR stand-in",
        &["variant", "final val acc", "best val acc"],
    );

    let mut results: Vec<(&str, f64, f64)> = Vec::new();
    let variants: Vec<(&str, KfacConfig)> = vec![
        ("baseline (paper defaults)", base_kfac()),
        (
            "+ damping decay (×0.5 at ⅓ and ⅔ of training)",
            KfacConfig {
                damping_decay_epochs: vec![epochs / 3, 2 * epochs / 3],
                damping_decay_factor: 0.5,
                ..base_kfac()
            },
        ),
        (
            "+ update-freq decay (10 → 20 at ⅔ of training)",
            KfacConfig {
                update_freq_schedule: vec![(2 * epochs / 3, 20)],
                ..base_kfac()
            },
        ),
        (
            "− KL clip",
            KfacConfig {
                kl_clip: None,
                ..base_kfac()
            },
        ),
        (
            "LPT placement (future-work policy)",
            KfacConfig {
                placement: PlacementPolicy::SizeBalanced,
                ..base_kfac()
            },
        ),
    ];

    let mut eig_ms: Vec<(String, f64)> = Vec::new();
    for (name, kfac_cfg) in variants {
        let cfg = base_cfg(&setup, ranks).with_kfac(kfac_cfg);
        let r = train(|s| setup.model(s), &setup.train, &setup.val, &cfg);
        table.row(vec![name.into(), pct(r.final_val_acc), pct(r.best_val_acc)]);
        results.push((name, r.final_val_acc, r.best_val_acc));
        if let Some(stats) = &r.stage_stats {
            eig_ms.push((name.into(), stats.eig_comp_ms()));
        }
    }

    let mut notes = Vec::new();
    let baseline = results[0].1;
    let lpt = results[4].1;
    if (baseline - lpt).abs() < 0.06 {
        notes.push(format!(
            "Placement is numerics-neutral as designed: round-robin {} vs LPT {}.",
            pct(baseline),
            pct(lpt)
        ));
    } else {
        notes.push(format!(
            "UNEXPECTED: placement changed accuracy ({} vs {}).",
            pct(baseline),
            pct(lpt)
        ));
    }
    if let (Some((_, rr)), Some((_, lpt_t))) = (eig_ms.first(), eig_ms.last()) {
        notes.push(format!(
            "Measured per-update eig time on this machine: round-robin {rr:.1} ms vs LPT {lpt_t:.1} ms (rank 0)."
        ));
    }
    let no_clip = results[3].1;
    notes.push(format!(
        "KL clip effect at this scale: {} with vs {} without.",
        pct(baseline),
        pct(no_clip)
    ));

    ExperimentOutput {
        id: "ablations",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_five_variants() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables[0].len(), 5);
    }
}
