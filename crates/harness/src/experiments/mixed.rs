//! Mixed-precision loss parity — 4-rank CIFAR, f32 vs bf16 policies.
//!
//! The performance case for the bf16 substrate is made by
//! `xp bench-kernels` (kernel speedups) and the traffic columns below
//! (wire bytes); this experiment makes the *accuracy and determinism*
//! case on the paper's 4-worker correctness platform:
//!
//! * the f32-everywhere policy and the bf16 policy each produce a
//!   **bitwise identical** trajectory (loss bits and final parameters)
//!   on the thread fabric and the TCP proc fabric — the wire codec's
//!   allgather-and-fold construction is fabric-independent;
//! * the bf16 policy's final training loss lands within [`LOSS_TOL`] of
//!   the f32 run's (loss parity);
//! * bf16 wire payloads halve the measured gradient/factor/eigen bytes
//!   ([`WIRE_RATIO_MAX`]), and the per-dtype counters
//!   (`comm/bytes/dtype/*`) attribute the volume to the right dtype.

use crate::experiments::ExperimentOutput;
use crate::presets::{CifarSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig, TrainResult};
use kfac::{KfacConfig, PrecisionPolicy};
use kfac_collectives::CommBackend;
use kfac_optim::LrSchedule;
use kfac_telemetry::Registry;

/// Documented tolerance: absolute difference in final mean training loss
/// between the bf16 and f32 policies. bf16 keeps f32's exponent with
/// ~2⁻⁸ relative rounding per stored value; the compensated factor EMA
/// and f32-accumulating kernels keep the compounded effect on a short
/// CIFAR budget well inside this bound.
pub const LOSS_TOL: f64 = 0.1;

/// Upper bound on `bf16 bytes / f32 bytes` per traffic class. The exact
/// ratio is `(⌈n/2⌉ + 1) / n` per message — ≈ 0.5 for the payload sizes
/// here; 0.6 leaves room for the per-message length-prefix word on the
/// small eigen payloads.
pub const WIRE_RATIO_MAX: f64 = 0.6;

/// The paper's correctness platform worker count.
const RANKS: usize = 4;

struct Arm {
    result: TrainResult,
    /// `comm/bytes/dtype/{f32,bf16}` counter readings for the run.
    dtype_f32: u64,
    dtype_bf16: u64,
}

fn run_with(
    setup: &CifarSetup,
    base: &TrainConfig,
    policy: PrecisionPolicy,
    backend: CommBackend,
) -> Arm {
    let mut cfg = base.clone().with_backend(backend);
    // Set the policy directly (not through `with_kfac`) so a stray
    // `KFAC_PRECISION` override cannot collapse the two arms of the
    // comparison into the same policy.
    cfg.kfac = Some(KfacConfig {
        update_freq: 4,
        damping: 0.05,
        kl_clip: Some(0.01),
        precision: policy,
        ..KfacConfig::default()
    });
    // Fresh registry per run: the per-dtype wire counters must be
    // attributable to this arm alone.
    let registry = Registry::new();
    cfg.telemetry = Some(registry.clone());
    let result = train(|s| setup.model(s), &setup.train, &setup.val, &cfg);
    Arm {
        result,
        dtype_f32: registry.counter("comm/bytes/dtype/f32").get(),
        dtype_bf16: registry.counter("comm/bytes/dtype/bf16").get(),
    }
}

/// FNV-1a over the final parameters' bit patterns — the cross-fabric
/// bitwise-identity witness, compact enough for the table.
fn params_hash(params: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in params {
        for b in p.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn final_loss(r: &TrainResult) -> f64 {
    r.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN)
}

/// Loss trajectories agree bit-for-bit (per-epoch f64 bits).
fn bitwise_equal(a: &TrainResult, b: &TrainResult) -> bool {
    a.final_params == b.final_params
        && a.epochs.len() == b.epochs.len()
        && a.epochs
            .iter()
            .zip(&b.epochs)
            .all(|(x, y)| x.train_loss.to_bits() == y.train_loss.to_bits())
}

/// Run the experiment.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let base = TrainConfig::new(
        RANKS,
        setup.base_batch,
        setup.kfac_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.kfac_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
        }
        .scale_for_workers(RANKS),
    );

    let arms: Vec<(&str, PrecisionPolicy)> = vec![
        ("f32", PrecisionPolicy::f32()),
        ("bf16", PrecisionPolicy::bf16()),
    ];
    let fabrics = [("thread", CommBackend::Thread), ("proc", CommBackend::Proc)];

    let mut table = Table::new(
        "Mixed-precision policies — 4-rank CIFAR, both fabrics",
        &[
            "Policy",
            "Fabric",
            "Final Loss",
            "Final Val Acc",
            "Grad KiB",
            "Factor KiB",
            "Eigen KiB",
            "Params Hash",
        ],
    );
    let mut notes = Vec::new();
    let mut by_policy: Vec<(&str, Vec<Arm>)> = Vec::new();

    for (pname, policy) in &arms {
        let mut runs = Vec::new();
        for (fname, backend) in fabrics {
            let arm = run_with(&setup, &base, *policy, backend);
            let t = &arm.result.traffic;
            table.row(vec![
                pname.to_string(),
                fname.to_string(),
                format!("{:.4}", final_loss(&arm.result)),
                pct(arm.result.final_val_acc),
                format!("{:.1}", t.gradient_bytes as f64 / 1024.0),
                format!("{:.1}", t.factor_bytes as f64 / 1024.0),
                format!("{:.1}", t.eigen_bytes as f64 / 1024.0),
                format!("{:016x}", params_hash(&arm.result.final_params)),
            ]);
            runs.push(arm);
        }
        by_policy.push((pname, runs));
    }

    // 1) Cross-fabric bitwise identity per policy.
    for (pname, runs) in &by_policy {
        if bitwise_equal(&runs[0].result, &runs[1].result) {
            notes.push(format!(
                "Shape holds: {pname} trajectory bitwise identical on thread and proc fabrics."
            ));
        } else {
            notes.push(format!(
                "Shape DEVIATION: {pname} trajectory differs across fabrics."
            ));
        }
    }

    // 2) Loss parity between the policies (thread-fabric arms; the
    //    cross-fabric check already pinned proc to the same bits).
    let f32_arm = &by_policy[0].1[0];
    let bf16_arm = &by_policy[1].1[0];
    let delta = (final_loss(&f32_arm.result) - final_loss(&bf16_arm.result)).abs();
    notes.push(format!(
        "Loss parity: |Δ final loss| = {delta:.4} vs documented LOSS_TOL = {LOSS_TOL}."
    ));
    if delta > LOSS_TOL {
        notes.push(format!(
            "Shape DEVIATION: |Δ loss| {delta:.4} exceeds tolerance {LOSS_TOL}."
        ));
    }

    // 3) Wire-byte halving per traffic class, and dtype attribution.
    let (tf, tb) = (&f32_arm.result.traffic, &bf16_arm.result.traffic);
    for (class, f32_bytes, bf16_bytes) in [
        ("gradient", tf.gradient_bytes, tb.gradient_bytes),
        ("factor", tf.factor_bytes, tb.factor_bytes),
        ("eigen", tf.eigen_bytes, tb.eigen_bytes),
    ] {
        let ratio = bf16_bytes as f64 / f32_bytes.max(1) as f64;
        if f32_bytes > 0 && ratio <= WIRE_RATIO_MAX {
            notes.push(format!(
                "Shape holds: {class} wire bytes halved (bf16/f32 = {ratio:.3})."
            ));
        } else {
            notes.push(format!(
                "Shape DEVIATION: {class} bf16/f32 byte ratio {ratio:.3} exceeds {WIRE_RATIO_MAX} \
                 (f32 {f32_bytes} B, bf16 {bf16_bytes} B)."
            ));
        }
    }
    if bf16_arm.dtype_bf16 > 0 && f32_arm.dtype_bf16 == 0 {
        notes.push(format!(
            "Per-dtype counters attribute correctly: bf16 run moved {} B at bf16 \
             (f32 run: 0 B at bf16, {} B at f32).",
            bf16_arm.dtype_bf16, f32_arm.dtype_f32
        ));
    } else {
        notes.push(format!(
            "Shape DEVIATION: per-dtype counters misattributed (f32 run bf16 bytes {}, \
             bf16 run bf16 bytes {}).",
            f32_arm.dtype_bf16, bf16_arm.dtype_bf16
        ));
    }

    ExperimentOutput {
        id: "mixed",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_holds_parity_determinism_and_byte_halving() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables.len(), 1);
        let md = out.to_markdown();
        assert!(md.contains("bf16"), "{md}");
        assert!(
            !md.contains("DEVIATION"),
            "mixed-precision shape check failed:\n{md}"
        );
    }
}
