//! Table VI — min/max per-worker eigendecomposition speedup, plus the
//! size-balanced-placement ablation the paper proposes as future work.
//!
//! The per-worker loads come from the *real* round-robin placement over
//! the *real* full-size factor inventories; speedups are relative to the
//! 16-GPU configuration, exactly as the paper reports them.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use kfac::PlacementPolicy;
use kfac_cluster::{ClusterSpec, IterationModel, ModelProfile};
use kfac_nn::arch::{resnet101, resnet152, resnet50};

fn min_max(times: &[f64]) -> (f64, f64) {
    let busy: Vec<f64> = times.iter().cloned().filter(|&t| t > 0.0).collect();
    (
        busy.iter().cloned().fold(f64::MAX, f64::min),
        busy.iter().cloned().fold(0.0, f64::max),
    )
}

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(
        "Table VI — min/max eigendecomposition worker speedup vs 16 GPUs (round-robin)",
        &[
            "GPUs", "R50 min", "R50 max", "R101 min", "R101 max", "R152 min", "R152 max",
        ],
    );
    let mut ablation = Table::new(
        "Table VI′ (extension) — eig-stage makespan: round-robin vs size-balanced LPT",
        &["Model", "GPUs", "RR makespan", "LPT makespan", "LPT gain"],
    );

    let archs = [resnet50(), resnet101(), resnet152()];
    let mut base: Vec<(f64, f64)> = Vec::new(); // (min, max) at 16 per model

    for gpus in [16usize, 32, 64] {
        let mut cells = vec![gpus.to_string()];
        for (ai, arch) in archs.iter().enumerate() {
            let m = IterationModel::new(
                ModelProfile::from_arch(arch),
                ClusterSpec::frontera(gpus),
                32,
            );
            let times = m.eig_worker_times_s(PlacementPolicy::RoundRobin);
            let (mn, mx) = min_max(&times);
            if gpus == 16 {
                base.push((mn, mx));
                cells.push("1.00".into());
                cells.push("1.00".into());
            } else {
                cells.push(format!("{:.2}", base[ai].0 / mn));
                cells.push(format!("{:.2}", base[ai].1 / mx));
            }

            let (rr, _) = m.eig_stage_s(PlacementPolicy::RoundRobin);
            let (lpt, _) = m.eig_stage_s(PlacementPolicy::SizeBalanced);
            ablation.row(vec![
                arch.name.clone(),
                gpus.to_string(),
                format!("{:.2} s", rr),
                format!("{:.2} s", lpt),
                format!("{:.1}%", (1.0 - lpt / rr) * 100.0),
            ]);
        }
        table.row(cells);
    }

    // Shape: at 64 GPUs, min (fastest-worker) speedup far exceeds max
    // (slowest-worker) speedup for every model.
    let mut holds = true;
    for (ai, arch) in archs.iter().enumerate() {
        let m = IterationModel::new(ModelProfile::from_arch(arch), ClusterSpec::frontera(64), 32);
        let (mn64, mx64) = min_max(&m.eig_worker_times_s(PlacementPolicy::RoundRobin));
        let fast = base[ai].0 / mn64;
        let slow = base[ai].1 / mx64;
        if fast <= slow * 1.5 {
            holds = false;
        }
    }

    ExperimentOutput {
        id: "table6",
        tables: vec![table, ablation],
        notes: vec![
            if holds {
                "Shape holds: fastest workers speed up several× more than the slowest \
                 (the imbalance §VI-C4 identifies)."
                    .into()
            } else {
                "Shape DEVIATION: imbalance did not reproduce.".into()
            },
            "Table VI′ implements the paper's proposed future-work fix: LPT placement \
             using dim³ as the cost heuristic."
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_scales_and_ablation() {
        let out = run();
        assert_eq!(out.tables[0].len(), 3);
        assert_eq!(out.tables[1].len(), 9);
        assert!(out.notes[0].contains("Shape holds"));
    }
}
