//! Figure 5 — ImageNet-style convergence: K-FAC's 55-epoch budget vs
//! SGD's 90.
//!
//! The paper's acceptance criteria (§VI-C1): (1) K-FAC reaches the
//! baseline accuracy, (2) K-FAC's final accuracy ≥ SGD's, (3) K-FAC
//! converges in fewer iterations. The baseline on the synthetic stand-in
//! is *measured SGD at full budget* (the analogue of MLPerf's 75.9%,
//! which is itself just well-tuned SGD's converged accuracy).

use crate::experiments::ExperimentOutput;
use crate::presets::{ImagenetSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig};
use kfac::KfacConfig;
use kfac_optim::LrSchedule;

/// Run the experiment.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = ImagenetSetup::new(scale);
    // Stand-in for the paper's 16 GPUs at CPU-tractable thread counts.
    let ranks = match scale {
        Scale::Smoke => 2,
        Scale::Quick => 2,
        Scale::Full => 4,
    };

    let sgd_cfg = TrainConfig {
        label_smoothing: 0.1,
        ..TrainConfig::new(
            ranks,
            setup.base_batch,
            setup.sgd_epochs,
            LrSchedule {
                warmup_epochs: setup.warmup(setup.sgd_epochs),
                ..LrSchedule::paper_steps(setup.base_lr, setup.sgd_decay_epochs())
            }
            .scale_for_workers(ranks),
        )
    };
    let sgd = train(
        |s| setup.correctness_model(s),
        &setup.train,
        &setup.val,
        &sgd_cfg,
    );

    let kfac_cfg = TrainConfig {
        label_smoothing: 0.1,
        ..TrainConfig::new(
            ranks,
            setup.base_batch,
            setup.kfac_epochs,
            LrSchedule {
                warmup_epochs: setup.warmup(setup.kfac_epochs),
                ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
            }
            .scale_for_workers(ranks),
        )
    }
    .with_kfac(KfacConfig {
        update_freq: 10,
        damping: 0.1,
        kl_clip: Some(0.01),
        ..KfacConfig::default()
    });
    let kfac = train(
        |s| setup.correctness_model(s),
        &setup.train,
        &setup.val,
        &kfac_cfg,
    );

    let baseline = sgd.final_val_acc;

    let mut curves = Table::new(
        "Fig. 5 — validation accuracy: K-FAC (short budget) vs SGD (full budget)",
        &["epoch", "run", "val acc"],
    );
    for rec in &sgd.epochs {
        curves.row(vec![rec.epoch.to_string(), "SGD".into(), pct(rec.val_acc)]);
    }
    for rec in &kfac.epochs {
        curves.row(vec![
            rec.epoch.to_string(),
            "K-FAC".into(),
            pct(rec.val_acc),
        ]);
    }

    let mut summary = Table::new(
        "Fig. 5 summary — acceptance criteria",
        &["criterion", "value", "met?"],
    );
    let c1 = kfac.best_val_acc >= baseline - 1e-9;
    summary.row(vec![
        format!("K-FAC reaches SGD baseline ({})", pct(baseline)),
        pct(kfac.best_val_acc),
        if c1 { "yes" } else { "no" }.into(),
    ]);
    let c2 = kfac.final_val_acc >= sgd.final_val_acc - 0.02;
    summary.row(vec![
        "final K-FAC ≥ final SGD (−2 pts tolerance)".into(),
        format!("{} vs {}", pct(kfac.final_val_acc), pct(sgd.final_val_acc)),
        if c2 { "yes" } else { "no" }.into(),
    ]);
    let sgd_hit = sgd.epochs_to_reach(baseline * 0.98);
    let kfac_hit = kfac.epochs_to_reach(baseline * 0.98);
    let c3 = match (kfac_hit, sgd_hit) {
        (Some(k), Some(s)) => k <= s,
        (Some(_), None) => true,
        _ => false,
    };
    summary.row(vec![
        "K-FAC reaches 98% of baseline in fewer epochs".into(),
        format!("{kfac_hit:?} vs {sgd_hit:?}"),
        if c3 { "yes" } else { "no" }.into(),
    ]);

    let chart = crate::report::ascii_chart(
        &[
            (
                "SGD (full budget)".into(),
                sgd.epochs.iter().map(|e| e.val_acc).collect(),
            ),
            (
                "K-FAC (55/90 budget)".into(),
                kfac.epochs.iter().map(|e| e.val_acc).collect(),
            ),
        ],
        60,
        12,
    );

    ExperimentOutput {
        id: "fig5",
        tables: vec![summary, curves],
        notes: vec![
            format!(
                "{} simulated workers; budgets {} (K-FAC) vs {} (SGD) epochs — the paper's 55/90 ratio.",
                ranks, setup.kfac_epochs, setup.sgd_epochs
            ),
            format!("Fig. 5 curves (x = fraction of each run's budget):\n```\n{chart}```"),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_reports_three_criteria() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables[0].len(), 3);
        assert!(out.tables[1].len() > 4);
    }
}
