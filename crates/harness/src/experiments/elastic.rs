//! Elastic-membership experiment (`xp elastic`) — kill a rank of a
//! 4-way K-FAC CIFAR group mid-run on both fabrics and verify the
//! shrink-world recovery bitwise.
//!
//! Two scenarios share one [`ElasticSpec`]:
//!
//! * **thread fabric** — in-process, the victim injects its death
//!   observation deterministically (the chaos-test path through the
//!   same membership machinery);
//! * **proc fabric** — four OS processes over TCP, the victim exits
//!   cold, and EOF/heartbeat detection finds the body.
//!
//! For each, the survivors' post-shrink trajectory (loss bits and
//! final-parameter bits) must equal a *from-scratch* group of the
//! shrunken size restored from the same checkpoint blob — the proof
//! that the epoch-fenced view, the re-derived batch plan, and the
//! recomputed K-FAC factor assignment introduce zero numerical drift.
//! The driver also asserts the observability contract: membership-epoch
//! gauges move, `train/shrink_resumes` counts every survivor, and the
//! flight recorder dumps a `shrink_resume_epoch_*` event.

use crate::elastic::{elastic_summary_json, run_reference, run_thread_trial, ElasticSpec};
use crate::experiments::ExperimentOutput;
use crate::presets::Scale;
use crate::procrun::run_proc_elastic;
use crate::report::Table;
use kfac_telemetry::json::Json;
use std::path::PathBuf;

/// Where the thread trial's flight-recorder dump lands.
fn flight_dump_path() -> PathBuf {
    std::env::temp_dir()
        .join("kfac-elastic-flight")
        .join("thread-trial.json")
}

/// Run the experiment (`xp elastic`).
pub fn run(scale: Scale) -> ExperimentOutput {
    let iters = match scale {
        Scale::Smoke => 8,
        Scale::Quick => 12,
        Scale::Full => 20,
    };
    let spec = ElasticSpec::canonical(iters);
    let train_ds = crate::elastic::demo_data();
    let mut notes = Vec::new();
    let mut table = Table::new(
        "Elastic membership — kill one of 4 ranks mid-run, shrink, resume",
        &[
            "fabric",
            "world",
            "restore iter",
            "epoch",
            "post-shrink steps",
            "bitwise = reference",
        ],
    );

    // Thread fabric: deterministic death injection.
    let dump = flight_dump_path();
    let _ = std::fs::remove_file(&dump);
    let trial = run_thread_trial(&spec, &train_ds, Some(dump.clone()));
    let reference = run_reference(&spec, &trial.checkpoint, &train_ds);
    assert!(
        trial.resumed.bitwise_eq(&reference),
        "thread-fabric survivors diverged from the shrunken-world reference"
    );
    assert_eq!(trial.epoch, 1, "one shrink fences epoch 1");
    assert_eq!(
        trial.shrink_resumes,
        (spec.world - 1) as u64,
        "every survivor records its resume"
    );
    table.row(vec![
        "thread".into(),
        format!("{} → {}", spec.world, spec.world - 1),
        trial.resumed.restore_iteration.to_string(),
        trial.epoch.to_string(),
        trial.resumed.post_losses.len().to_string(),
        "yes".into(),
    ]);

    // The escalation must leave membership evidence in the recorder.
    let dump_doc =
        std::fs::read_to_string(&dump).expect("shrink resume must leave a flight-recorder dump");
    let parsed = Json::parse(&dump_doc).expect("flight-recorder dump must be valid JSON");
    let reason = parsed
        .get("reason")
        .and_then(|r| r.as_str())
        .unwrap_or("?")
        .to_string();
    assert!(
        reason.starts_with("shrink_resume_epoch_"),
        "dump must record the membership event, got reason {reason:?}"
    );
    notes.push(format!(
        "Flight recorder dumped on shrink: {} ({} bytes, reason `{reason}`).",
        dump.display(),
        dump_doc.len(),
    ));

    // Proc fabric: real processes, cold exit, EOF/heartbeat detection.
    let proc = run_proc_elastic(&spec).expect("proc elastic trial");
    // Both fabrics run the identical pre-kill trajectory, so the
    // survivors must have restored the identical blob…
    assert_eq!(
        proc.checkpoint, trial.checkpoint,
        "proc survivors restored a different checkpoint than the thread trial"
    );
    // …and the summary must match the reference, field for field (the
    // reference is fabric-agnostic: proc_train pins thread ≡ proc).
    let doc = Json::parse(&proc.summary).expect("proc summary must be valid JSON");
    let expected = elastic_summary_json(spec.world - 1, 1, &reference);
    let expected_doc = Json::parse(&expected).unwrap();
    assert_eq!(
        doc, expected_doc,
        "proc-fabric post-shrink trajectory diverged from the reference\n\
         got:      {}\n\
         expected: {expected}",
        proc.summary
    );
    table.row(vec![
        "proc".into(),
        format!("{} → {}", spec.world, spec.world - 1),
        reference.restore_iteration.to_string(),
        "1".into(),
        reference.post_losses.len().to_string(),
        "yes".into(),
    ]);

    notes.push(format!(
        "Scenario: {} iterations, rank {} dies at the start of iteration {}, checkpoints \
         every {} steps; restore landed at iteration {}.",
        spec.iters,
        spec.kill_rank,
        spec.kill_step,
        spec.checkpoint_every,
        reference.restore_iteration,
    ));
    notes.push(
        "Post-shrink losses and final parameters are bitwise identical to a from-scratch \
         3-rank group restored from the same blob, on both fabrics — the epoch-fenced view \
         and re-derived assignments introduce zero numerical drift."
            .to_string(),
    );

    ExperimentOutput {
        id: "elastic",
        tables: vec![table],
        notes,
    }
}

// No in-lib smoke here: the proc half spawns the current executable as
// workers, which only the `xp` binary knows how to dispatch. The thread
// half is pinned by `tests/elastic.rs`; CI runs the full two-fabric
// scenario via `xp elastic --scale smoke`.
