//! Execution-engine experiment — overlapped vs sequential training.
//!
//! Two halves, mirroring how the paper argues for overlap (§V):
//!
//! * **Measured** (real 4-rank CIFAR K-FAC training on this host): the
//!   same run under the sequential reference loop, the task-graph
//!   executor with a worker pool (`--overlap`), and the seeded
//!   single-threaded replay mode. Wall time is reported per strategy and
//!   the final parameter vectors are compared **bitwise** against the
//!   sequential oracle — overlap must change when work happens, never
//!   what is computed.
//! * **Projected** (calibrated cluster model): sequential vs overlapped
//!   K-FAC-opt iteration timelines for ResNet-50 at the paper's 64-GPU
//!   operating point, pricing how much gradient/factor communication
//!   hides behind backprop and preconditioning.

use crate::experiments::ExperimentOutput;
use crate::overlap::ExecStrategy;
use crate::presets::{CifarSetup, Scale};
use crate::report::Table;
use crate::trainer::{train, TrainConfig};
use kfac::KfacConfig;
use kfac_cluster::{
    emit_kfac_opt_overlap_trace, emit_kfac_opt_trace, ClusterSpec, IterationModel, KfacRunConfig,
    ModelProfile,
};
use kfac_nn::arch::resnet50;
use kfac_optim::LrSchedule;
use kfac_telemetry::Registry;

/// Run the experiment (`xp overlap`).
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let ranks = 4;
    let epochs = setup.kfac_epochs.clamp(1, 4);
    let make_cfg = |exec: ExecStrategy| {
        let mut cfg = TrainConfig::new(
            ranks,
            setup.base_batch,
            epochs,
            LrSchedule {
                warmup_epochs: setup.warmup(epochs),
                ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
            }
            .scale_for_workers(ranks),
        )
        .with_kfac(KfacConfig {
            update_freq: 2,
            damping: 0.003,
            ..KfacConfig::default()
        });
        cfg.exec = exec;
        cfg
    };

    // --- Measured half: identical runs under each execution strategy. ---
    let strategies: &[(&str, ExecStrategy)] = &[
        ("sequential (reference)", ExecStrategy::Sequential),
        (
            "overlapped (2 compute workers)",
            ExecStrategy::Overlapped { compute_workers: 2 },
        ),
        ("replay (seed 7)", ExecStrategy::Replay { seed: 7 }),
    ];
    let mut measured = Table::new(
        format!("Execution engine — {ranks}-rank CIFAR K-FAC, {epochs} epochs per strategy"),
        &[
            "strategy",
            "wall (s)",
            "final train loss",
            "params vs sequential",
        ],
    );
    let mut seq_params: Vec<f32> = Vec::new();
    let mut seq_loss_bits: u64 = 0;
    let mut all_bitwise = true;
    for &(name, exec) in strategies {
        let started = std::time::Instant::now();
        let r = train(
            |s| setup.model(s),
            &setup.train,
            &setup.val,
            &make_cfg(exec),
        );
        let wall = started.elapsed().as_secs_f64();
        let loss = r.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN);
        let verdict = if matches!(exec, ExecStrategy::Sequential) {
            seq_params = r.final_params.clone();
            seq_loss_bits = loss.to_bits();
            "oracle".to_string()
        } else {
            let same = r.final_params.len() == seq_params.len()
                && r.final_params
                    .iter()
                    .zip(&seq_params)
                    .all(|(a, b)| a.to_bits() == b.to_bits())
                && loss.to_bits() == seq_loss_bits;
            all_bitwise &= same;
            if same {
                "bitwise identical"
            } else {
                "DIVERGED"
            }
            .to_string()
        };
        measured.row(vec![
            name.to_string(),
            format!("{wall:.2}"),
            format!("{loss:.6}"),
            verdict,
        ]);
    }

    // --- Projected half: cluster-model timeline at the paper's scale. ---
    let model = IterationModel::new(
        ModelProfile::from_arch(&resnet50()),
        ClusterSpec::frontera(64),
        32,
    );
    let cfg = KfacRunConfig::with_freq(500);
    let iterations = 8;
    let seq_wall = emit_kfac_opt_trace(&Registry::new(), &model, cfg, iterations);
    let mut projected = Table::new(
        "Projected K-FAC-opt timelines — ResNet-50 @64 GPUs, 8 iterations",
        &["timeline", "wall (s)", "speedup vs sequential"],
    );
    projected.row(vec![
        "sequential".into(),
        format!("{seq_wall:.4}"),
        "1.00x".into(),
    ]);
    let mut best_speedup = 0.0f64;
    for buckets in [1usize, 4, 16] {
        let wall = emit_kfac_opt_overlap_trace(&Registry::new(), &model, cfg, iterations, buckets);
        let speedup = seq_wall / wall;
        best_speedup = best_speedup.max(speedup);
        projected.row(vec![
            format!("overlapped, {buckets} gradient bucket(s)"),
            format!("{wall:.4}"),
            format!("{speedup:.2}x"),
        ]);
    }

    let mut notes = Vec::new();
    if all_bitwise {
        notes.push(
            "Numerical contract holds: overlapped and replay runs reproduce the sequential \
             parameters and loss bit-for-bit (per-bucket allreduce framing and K-FAC phase \
             decomposition are exact refactorings)."
                .into(),
        );
    } else {
        notes.push("CONTRACT VIOLATION: an execution strategy diverged from sequential.".into());
    }
    notes.push(format!(
        "Projected overlap hides communication behind backprop/preconditioning for up to a \
         {best_speedup:.2}x iteration speedup at 64 GPUs; measured CPU wall times mostly price \
         scheduler overhead at these tiny scales, so the timing claim rests on the calibrated \
         model while the correctness claim is measured."
    ));
    notes.push(
        "Reproduce any training experiment on the task-graph path by passing `--overlap` to \
         `xp` (sets the process-wide default execution strategy)."
            .into(),
    );

    ExperimentOutput {
        id: "overlap",
        tables: vec![measured, projected],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_all_strategies_and_stays_bitwise() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables[0].len(), 3, "three execution strategies");
        assert_eq!(out.tables[1].len(), 4, "sequential + three bucket counts");
        assert!(
            out.notes[0].starts_with("Numerical contract holds"),
            "overlap diverged from sequential: {}",
            out.notes[0]
        );
    }
}
