//! Figures 7–9 + Table IV — time-to-solution across 16–256 GPUs.
//!
//! Pure cluster-model projections (no GPUs exist here): real layer
//! inventories, real placement code, calibrated rates — see
//! `kfac-cluster` for the calibration story.

use crate::experiments::ExperimentOutput;
use crate::report::{hms, pct, Table};
use kfac_cluster::{
    efficiency, emit_kfac_opt_trace, scaling_sweep, ClusterSpec, IterationModel, KfacRunConfig,
    ModelProfile, ScalingPoint, TrainingBudget,
};
use kfac_nn::arch::{resnet101, resnet152, resnet50, ModelArch};

fn arch_for(depth: usize) -> ModelArch {
    match depth {
        50 => resnet50(),
        101 => resnet101(),
        152 => resnet152(),
        other => panic!("unsupported depth {other}"),
    }
}

/// Figure 7 (ResNet-50) / 8 (ResNet-101) / 9 (ResNet-152).
pub fn run_model(depth: usize) -> ExperimentOutput {
    let arch = arch_for(depth);
    let points = scaling_sweep(&arch, TrainingBudget::default());

    // When the caller (xp --trace-out) has telemetry installed, render a
    // short synthetic 16-GPU timeline through the same span API the real
    // trainer uses: `sim/*` lanes land in the same Chrome trace.
    if let Some((registry, _)) = kfac_telemetry::current() {
        let model = IterationModel::new(
            ModelProfile::from_arch(&arch),
            ClusterSpec::frontera(16),
            32,
        );
        emit_kfac_opt_trace(&registry, &model, KfacRunConfig::with_freq(4), 8);
    }

    let fig_id: &'static str = match depth {
        50 => "fig7",
        101 => "fig8",
        _ => "fig9",
    };

    let mut table = Table::new(
        format!("{} — {} time-to-solution (projected)", fig_id, arch.name),
        &[
            "GPUs",
            "SGD (90 ep)",
            "K-FAC-lw (55 ep)",
            "K-FAC-opt (55 ep)",
            "opt vs SGD",
        ],
    );
    for p in &points {
        table.row(vec![
            p.gpus.to_string(),
            hms(p.sgd_s),
            hms(p.lw_s),
            hms(p.opt_s),
            pct(p.opt_improvement()),
        ]);
    }

    let eff_opt = efficiency(&points, |p| p.opt_s);
    let eff_sgd = efficiency(&points, |p| p.sgd_s);
    let eff_lw = efficiency(&points, |p| p.lw_s);
    let mut eff_table = Table::new(
        format!("{} — scaling efficiency relative to 16 GPUs", fig_id),
        &["GPUs", "SGD", "K-FAC-lw", "K-FAC-opt"],
    );
    for (i, p) in points.iter().enumerate() {
        eff_table.row(vec![
            p.gpus.to_string(),
            pct(eff_sgd[i]),
            pct(eff_lw[i]),
            pct(eff_opt[i]),
        ]);
    }

    let mut notes = Vec::new();
    if depth == 50 {
        let ordered = points.iter().all(|p| p.opt_s < p.lw_s && p.lw_s < p.sgd_s);
        notes.push(if ordered {
            "Shape holds: K-FAC-opt < K-FAC-lw < SGD at every scale (paper Fig. 7).".into()
        } else {
            "Shape DEVIATION: strategy ordering broken somewhere.".into()
        });
    }
    if depth == 152 {
        let last = points.last().expect("sweep");
        notes.push(format!(
            "At 256 GPUs the K-FAC-opt advantage is {} (paper measures −11.1%): the \
             deterioration with scale and model size reproduces.",
            pct(last.opt_improvement())
        ));
    }

    ExperimentOutput {
        id: fig_id,
        tables: vec![table, eff_table],
        notes,
    }
}

/// Table IV — K-FAC-opt improvement over SGD across models × scales.
pub fn run_table4() -> ExperimentOutput {
    let budget = TrainingBudget::default();
    let sweeps: Vec<(String, Vec<ScalingPoint>)> = [resnet50(), resnet101(), resnet152()]
        .into_iter()
        .map(|a| (a.name.clone(), scaling_sweep(&a, budget)))
        .collect();

    let mut table = Table::new(
        "Table IV — K-FAC-opt improvement over SGD (projected)",
        &["Scale", "16", "32", "64", "128", "256"],
    );
    for (name, points) in &sweeps {
        let mut cells = vec![name.clone()];
        for p in points {
            cells.push(pct(p.opt_improvement()));
        }
        table.row(cells);
    }

    // Shape: improvement shrinks with model size at each scale.
    let mut monotone = true;
    for col in 0..5 {
        let i50 = sweeps[0].1[col].opt_improvement();
        let i101 = sweeps[1].1[col].opt_improvement();
        let i152 = sweeps[2].1[col].opt_improvement();
        if !(i50 > i101 && i101 > i152) {
            monotone = false;
        }
    }
    let min152 = sweeps[2]
        .1
        .iter()
        .map(|p| p.opt_improvement())
        .fold(f64::INFINITY, f64::min);

    ExperimentOutput {
        id: "table4",
        tables: vec![table],
        notes: vec![
            if monotone {
                "Shape holds: improvement declines with model depth at every scale.".into()
            } else {
                "Shape DEVIATION: depth ordering broken at some scale.".into()
            },
            format!(
                "ResNet-152 minimum improvement across the sweep: {} (paper: −11.1% at 256).",
                pct(min152)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_have_five_scales() {
        for depth in [50, 101, 152] {
            let out = run_model(depth);
            assert_eq!(out.tables[0].len(), 5);
            assert_eq!(out.tables[1].len(), 5);
        }
    }

    #[test]
    fn table4_has_three_models() {
        let out = run_table4();
        assert_eq!(out.tables[0].len(), 3);
    }
}
