//! Table V — time profile of the factor and eigendecomposition stages of
//! a K-FAC update, across models and scales.
//!
//! Projected by the calibrated cluster model (the R50@16 row anchors the
//! calibration; the rest are predictions).

use crate::experiments::ExperimentOutput;
use crate::report::{ms, Table};
use kfac::PlacementPolicy;
use kfac_cluster::{ClusterSpec, IterationModel, ModelProfile};
use kfac_nn::arch::{resnet101, resnet152, resnet50};

/// Run the experiment.
pub fn run() -> ExperimentOutput {
    let mut table = Table::new(
        "Table V — per-update stage times (projected; R50@16 is the calibration anchor)",
        &[
            "Model",
            "GPUs",
            "Factor Tcomp",
            "Factor Tcomm",
            "Eig Tcomp",
            "Eig Tcomm",
        ],
    );

    let mut factor_comps: Vec<(String, Vec<f64>)> = Vec::new();
    for arch in [resnet50(), resnet101(), resnet152()] {
        let profile = ModelProfile::from_arch(&arch);
        let mut per_scale = Vec::new();
        for gpus in [16usize, 32, 64] {
            let m = IterationModel::new(profile.clone(), ClusterSpec::frontera(gpus), 32);
            let (fc, fx) = m.factor_stage_s();
            let (ec, ex) = m.eig_stage_s(PlacementPolicy::RoundRobin);
            table.row(vec![
                arch.name.clone(),
                gpus.to_string(),
                ms(fc),
                ms(fx),
                ms(ec),
                ms(ex),
            ]);
            per_scale.push(fc);
        }
        factor_comps.push((arch.name.clone(), per_scale));
    }

    // Shape checks the paper's table exhibits.
    let mut notes = Vec::new();
    let constant_in_gpus = factor_comps.iter().all(|(_, v)| (v[0] - v[2]).abs() < 1e-9);
    notes.push(if constant_in_gpus {
        "Shape holds: factor Tcomp is constant in GPU count (not distributable).".into()
    } else {
        "Shape DEVIATION: factor Tcomp varied with GPU count.".into()
    });
    let superlinear = factor_comps[2].1[0] / factor_comps[0].1[0];
    notes.push(format!(
        "Factor Tcomp grows {superlinear:.1}× from ResNet-50 to ResNet-152 \
         (paper: 218.4/36.8 ≈ 5.9×) — the super-linear growth of Fig. 10."
    ));

    ExperimentOutput {
        id: "table5",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_rows_three_by_three() {
        let out = run();
        assert_eq!(out.tables[0].len(), 9);
        assert!(out.notes[0].contains("Shape holds"));
    }
}
