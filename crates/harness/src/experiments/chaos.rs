//! Chaos experiment (`xp chaos`) — 4-rank CIFAR K-FAC training under a
//! seeded fault matrix.
//!
//! One scenario per fault kind the collectives layer can inject
//! (straggler delays, transient outages, long timeouts, bit-flip
//! corruption, permanent rank loss), each run through
//! [`ResilientTrainer`] against the same model / data / seed as a
//! fault-free baseline. The driver *asserts* the degradation contract:
//!
//! * every scenario finishes — bounded deadlines and the degradation
//!   ladder mean no fault can hang the group (a wall-clock watchdog
//!   backs this up);
//! * losses stay finite and within a tolerance band of the baseline;
//! * faults that cannot change the math (delays; transients healed by
//!   retry) leave the final parameters **bitwise identical**;
//! * faults that degrade (timeouts on K-FAC traffic, corruption) show
//!   up in the right counters: stale factor steps, skipped steps;
//! * rank loss aborts cleanly and training resumes from the latest
//!   checkpoint to complete the full iteration budget.

use crate::experiments::ExperimentOutput;
use crate::report::Table;
use crate::resilient::{FaultTolerance, ResilientTrainer, StepOutcome};
use crate::{checkpoint, presets::Scale};
use kfac::{Kfac, KfacConfig};
use kfac_collectives::{
    Communicator, FaultPlan, FaultPlanConfig, FaultyCommunicator, RetryPolicy, ThreadComm,
    TrafficClass,
};
use kfac_data::{batch_of, synthetic_cifar, Dataset, ShardedSampler};
use kfac_nn::{resnet::resnet_cifar, CrossEntropyLoss, Layer, Sequential};
use kfac_optim::Sgd;
use kfac_telemetry::{FlightRecorder, Registry};
use kfac_tensor::Rng64;
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const RANKS: usize = 4;
const LOCAL_BATCH: usize = 4;
const MODEL_SEED: u64 = 3;
const DATA_SEED: u64 = 11;
const LR: f32 = 0.02;

fn build_model() -> Sequential {
    let mut rng = Rng64::new(MODEL_SEED);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

fn build_kfac(model: &mut Sequential) -> Kfac {
    Kfac::new(
        model,
        KfacConfig {
            update_freq: 2,
            damping: 0.003,
            ..KfacConfig::default()
        },
    )
}

/// Per-rank batch index sequence covering `iters` iterations, plus the
/// epoch variant used for augmentation, indexed by global iteration.
fn batch_plan(ds_len: usize, rank: usize, iters: usize) -> Vec<(Vec<usize>, u64)> {
    let sampler = ShardedSampler::new(ds_len, RANKS, rank, LOCAL_BATCH, DATA_SEED ^ 0x5a5a);
    let mut plan = Vec::with_capacity(iters);
    let mut epoch = 0usize;
    while plan.len() < iters {
        for indices in sampler.epoch_batches(epoch) {
            plan.push((indices, epoch as u64 + 1));
            if plan.len() == iters {
                break;
            }
        }
        epoch += 1;
    }
    plan
}

/// What one scenario produced (rank 0's view; replicas are identical).
struct ScenarioResult {
    final_loss: f64,
    params: Vec<f32>,
    skipped: u64,
    comm_faults: u64,
    stale_factor_steps: u64,
    eig_fallbacks: u64,
    identity_preconds: u64,
    resumed: bool,
}

/// Where a chaos scenario's flight-recorder dump lands (rank 0 carries
/// the recorder; the registry it snapshots is shared by all ranks).
fn flight_dump_path(name: &str) -> PathBuf {
    std::env::temp_dir()
        .join("kfac-chaos-flight")
        .join(format!("{name}.json"))
}

/// Run `iters` resilient iterations on 4 ranks under `plan` (None =
/// fault-free). If the group aborts with a rank loss, every rank
/// restores the latest checkpoint and finishes the budget on a fresh
/// fault-free group — the recovery drill the checkpoint exists for.
/// Every rank records into one shared registry; rank 0 carries a
/// flight recorder that dumps to `flight_dump_path(name)` whenever the
/// ladder escalates (skipped step or rank loss).
fn run_scenario(
    name: &str,
    iters: usize,
    plan: Option<Arc<FaultPlan>>,
    ft: FaultTolerance,
    train_ds: &(dyn Dataset + Sync),
) -> ScenarioResult {
    let faulty_comms = ThreadComm::create(RANKS);
    let recovery_comms = ThreadComm::create(RANKS);
    let plan = &plan;
    let ft = &ft;
    let registry = Registry::new();
    let registry = &registry;
    let dump_path = flight_dump_path(name);
    let dump_path = &dump_path;
    let results: Vec<ScenarioResult> = thread::scope(|s| {
        let handles: Vec<_> = faulty_comms
            .into_iter()
            .zip(recovery_comms)
            .enumerate()
            .map(|(rank, (comm, recovery))| {
                s.spawn(move || {
                    let _telemetry = registry.install(rank);
                    let batches = batch_plan(train_ds.len(), rank, iters);
                    let mut model = build_model();
                    let mut optimizer = Sgd::new(0.9, 1e-4);
                    let mut kfac = Some(build_kfac(&mut model));
                    let criterion = CrossEntropyLoss::new();
                    let mut tr = ResilientTrainer::new(*ft);
                    if rank == 0 {
                        tr.set_flight_recorder(FlightRecorder::default(), Some(dump_path.clone()));
                    }
                    let mut losses = Vec::with_capacity(iters);
                    let mut resumed = false;
                    // One wrapper for the whole run: the fault plan is
                    // indexed by a cursor that must advance across
                    // iterations for windows to land as scheduled.
                    let comm: Box<dyn Communicator> = match plan {
                        Some(p) => Box::new(FaultyCommunicator::new(comm, Arc::clone(p))),
                        None => Box::new(comm),
                    };

                    let mut i = 0usize;
                    while i < iters {
                        let (indices, variant) = &batches[i];
                        let (x, labels) = batch_of(train_ds, indices, *variant);
                        let outcome = tr.step(
                            &mut model,
                            &mut kfac,
                            &mut optimizer,
                            &*comm,
                            &x,
                            &labels,
                            &criterion,
                            LR,
                        );
                        match outcome {
                            (loss, StepOutcome::RankLost(_)) => {
                                losses.push(loss as f64);
                                // Recovery drill: restore the latest
                                // checkpoint into fresh instances and
                                // finish on the clean replacement group.
                                let blob = tr
                                    .latest_checkpoint()
                                    .expect("rank loss before first checkpoint")
                                    .to_vec();
                                let mut m2 = build_model();
                                let mut opt2 = Sgd::new(0.9, 1e-4);
                                let mut k2 = Some(build_kfac(&mut m2));
                                let (it, _) =
                                    checkpoint::restore(&blob, &mut m2, &mut opt2, k2.as_mut())
                                        .expect("checkpoint restores");
                                model = m2;
                                optimizer = opt2;
                                kfac = k2;
                                tr = ResilientTrainer::new(FaultTolerance::default());
                                resumed = true;
                                i = it as usize;
                                for (j, (indices, variant)) in
                                    batches.iter().enumerate().take(iters).skip(i)
                                {
                                    let (x, labels) = batch_of(train_ds, indices, *variant);
                                    let (loss, outcome) = tr.step(
                                        &mut model,
                                        &mut kfac,
                                        &mut optimizer,
                                        &recovery,
                                        &x,
                                        &labels,
                                        &criterion,
                                        LR,
                                    );
                                    assert_eq!(
                                        outcome,
                                        StepOutcome::Stepped,
                                        "recovery group degraded at iteration {j}"
                                    );
                                    losses.push(loss as f64);
                                }
                                break;
                            }
                            (loss, _) => {
                                losses.push(loss as f64);
                                i += 1;
                            }
                        }
                    }

                    let stats = kfac.as_ref().map(|k| k.stats()).unwrap_or_default();
                    let mut params = Vec::new();
                    model.visit_params("", &mut |_, w, _| params.extend_from_slice(w));
                    let tail = losses.len().saturating_sub(4);
                    ScenarioResult {
                        final_loss: losses[tail..].iter().sum::<f64>()
                            / losses[tail..].len().max(1) as f64,
                        params,
                        skipped: tr.skipped_steps,
                        comm_faults: tr.comm_faults,
                        stale_factor_steps: stats.stale_factor_steps,
                        eig_fallbacks: stats.eig_fallbacks,
                        identity_preconds: stats.identity_preconds,
                        resumed,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Replicas must agree bit-for-bit — lockstep degradation is the
    // whole point of the shared fault plan.
    for r in &results[1..] {
        assert_eq!(
            r.params, results[0].params,
            "ranks diverged under the fault plan"
        );
    }
    results.into_iter().next().unwrap()
}

/// Same, but behind a wall-clock watchdog: a hang is an assertion
/// failure, not a stuck process.
fn run_with_watchdog(
    name: &'static str,
    iters: usize,
    plan: Option<FaultPlanConfig>,
    ft: FaultTolerance,
) -> ScenarioResult {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let (train_ds, _) = synthetic_cifar(8, 96, 32, DATA_SEED);
        let plan = plan.map(|cfg| Arc::new(FaultPlan::new(cfg, RANKS)));
        let result = run_scenario(name, iters, plan, ft, &train_ds);
        let _ = tx.send(result);
    });
    let result = rx
        .recv_timeout(Duration::from_secs(300))
        .unwrap_or_else(|_| panic!("chaos scenario `{name}` hung"));
    handle.join().unwrap();
    result
}

fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// Run the experiment (`xp chaos`).
pub fn run(scale: Scale) -> ExperimentOutput {
    let iters = match scale {
        Scale::Smoke => 8,
        Scale::Quick => 12,
        Scale::Full => 20,
    };
    let mut notes = Vec::new();
    let mut table = Table::new(
        "Chaos matrix — 4-rank CIFAR K-FAC under injected faults",
        &[
            "scenario",
            "final loss",
            "Δ vs clean",
            "bitwise = clean",
            "skipped",
            "degraded colls",
            "stale factor steps",
        ],
    );
    let mut row = |name: &str, r: &ScenarioResult, clean: &ScenarioResult| {
        table.row(vec![
            name.to_string(),
            format!("{:.4}", r.final_loss),
            format!("{:+.4}", r.final_loss - clean.final_loss),
            if r.params == clean.params {
                "yes"
            } else {
                "no"
            }
            .to_string(),
            r.skipped.to_string(),
            r.comm_faults.to_string(),
            r.stale_factor_steps.to_string(),
        ]);
    };

    let clean = run_with_watchdog("baseline", iters, None, FaultTolerance::default());
    assert!(clean.final_loss.is_finite());
    row("fault-free baseline", &clean, &clean);

    // Stragglers: pure delay cannot change the math.
    let straggler = run_with_watchdog(
        "straggler",
        iters,
        Some(FaultPlanConfig {
            seed: 21,
            delay_prob: 0.25,
            delay_micros: 300,
            ..FaultPlanConfig::default()
        }),
        FaultTolerance::default(),
    );
    assert_eq!(
        straggler.params, clean.params,
        "straggler delays altered results"
    );
    row("stragglers (25% ops, +300µs)", &straggler, &clean);

    // Transient outages below the retry budget: healed, bitwise clean.
    let transient = run_with_watchdog(
        "transient",
        iters,
        Some(FaultPlanConfig {
            seed: 22,
            transient_prob: 0.15,
            transient_ops: 2,
            ..FaultPlanConfig::default()
        }),
        FaultTolerance {
            retry: fast_retry(10),
            ..FaultTolerance::default()
        },
    );
    assert_eq!(
        transient.params, clean.params,
        "retry-healed transients left a residue"
    );
    assert_eq!(transient.skipped, 0);
    row("transient outages (retried)", &transient, &clean);

    // Long outages on K-FAC traffic: stale factors, training continues.
    let timeout = run_with_watchdog(
        "timeout",
        iters,
        Some(FaultPlanConfig {
            seed: 23,
            timeout_prob: 0.3,
            timeout_ops: 30,
            classes: vec![TrafficClass::Factor, TrafficClass::Eigen],
            ..FaultPlanConfig::default()
        }),
        FaultTolerance {
            retry: fast_retry(2),
            ..FaultTolerance::default()
        },
    );
    assert!(timeout.final_loss.is_finite());
    assert!(
        timeout.stale_factor_steps > 0 || timeout.comm_faults > 0,
        "timeout plan injected nothing — weak scenario"
    );
    assert_eq!(timeout.skipped, 0, "gradient traffic was untouched");
    assert!(
        (timeout.final_loss - clean.final_loss).abs() < 1.5,
        "stale-factor degradation out of tolerance: {} vs {}",
        timeout.final_loss,
        clean.final_loss
    );
    row("K-FAC timeouts → stale factors", &timeout, &clean);

    // Silent bit-flips: huge-but-finite values that must be caught by
    // the factor payload guard or the gradient health gate.
    let corrupt = run_with_watchdog(
        "corruption",
        iters,
        Some(FaultPlanConfig {
            seed: 24,
            bitflip_prob: 0.35,
            corrupt_prob: 0.1,
            ..FaultPlanConfig::default()
        }),
        FaultTolerance {
            retry: fast_retry(3),
            grad_limit: 1e4,
            ..FaultTolerance::default()
        },
    );
    assert!(corrupt.final_loss.is_finite());
    assert!(corrupt.params.iter().all(|v| v.is_finite()));
    assert!(
        corrupt.skipped + corrupt.stale_factor_steps + corrupt.comm_faults > 0,
        "corruption plan injected nothing — weak scenario"
    );
    row("bit-flip corruption", &corrupt, &clean);

    // Permanent rank loss: abort, restore latest checkpoint, finish.
    // The escalation must also leave a flight-recorder dump behind.
    let dump = flight_dump_path("rank-loss");
    let _ = std::fs::remove_file(&dump);
    let rank_loss = run_with_watchdog(
        "rank-loss",
        iters,
        Some(FaultPlanConfig {
            seed: 25,
            rank_loss_at: Some((3 * iters as u64 / 2, 2)),
            ..FaultPlanConfig::default()
        }),
        FaultTolerance {
            checkpoint_every: 2,
            ..FaultTolerance::default()
        },
    );
    assert!(rank_loss.resumed, "rank loss never triggered");
    assert!(rank_loss.final_loss.is_finite());
    row("rank loss → checkpoint resume", &rank_loss, &clean);
    let dump_doc = std::fs::read_to_string(&dump)
        .expect("rank-loss escalation must leave a flight-recorder dump");
    let parsed = kfac_telemetry::json::Json::parse(&dump_doc)
        .expect("flight-recorder dump must be valid JSON");
    assert!(
        parsed
            .get("reason")
            .and_then(|r| r.as_str())
            .is_some_and(|r| r.starts_with("rank_lost")),
        "dump must record why it was taken"
    );
    notes.push(format!(
        "Flight recorder dumped on rank loss: {} ({} bytes, reason `{}`).",
        dump.display(),
        dump_doc.len(),
        parsed.get("reason").and_then(|r| r.as_str()).unwrap_or("?")
    ));

    notes.push(format!(
        "{iters} iterations × {RANKS} ranks per scenario; every scenario shares model seed \
         {MODEL_SEED} and data seed {DATA_SEED}, so deltas are pure fault effects."
    ));
    notes.push(
        "Delay and retried-transient scenarios reproduced the baseline parameters bitwise; \
         degradation scenarios stayed finite and in-tolerance with nonzero degradation counters."
            .to_string(),
    );
    notes.push(format!(
        "Rank-loss scenario resumed from the latest checkpoint and completed the budget \
         (final loss {:.4}).",
        rank_loss.final_loss
    ));
    notes.push(format!(
        "Deeper-ladder fallbacks under corruption: {} eigendecomposition fallbacks, {} \
         identity-preconditioned factors.",
        corrupt.eig_fallbacks, corrupt.identity_preconds
    ));

    ExperimentOutput {
        id: "chaos",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full matrix at smoke scale — the acceptance gate for the
    /// fault-tolerance work. Ignored by default (multi-scenario, ~tens
    /// of seconds); CI runs it explicitly.
    #[test]
    #[ignore = "chaos stress: run explicitly (CI does)"]
    fn chaos_matrix_smoke() {
        let out = run(Scale::Smoke);
        assert_eq!(out.id, "chaos");
        assert!(!out.tables.is_empty());
    }

    /// Cheap always-on check: one degraded scenario end to end.
    #[test]
    fn timeout_scenario_degrades_gracefully() {
        let r = run_with_watchdog(
            "unit-timeout",
            6,
            Some(FaultPlanConfig {
                seed: 23,
                timeout_prob: 0.3,
                timeout_ops: 20,
                classes: vec![TrafficClass::Factor, TrafficClass::Eigen],
                ..FaultPlanConfig::default()
            }),
            FaultTolerance {
                retry: fast_retry(2),
                ..FaultTolerance::default()
            },
        );
        assert!(r.final_loss.is_finite());
        assert!(r.stale_factor_steps > 0 || r.comm_faults > 0);
    }
}
