//! Randomized-eigensolver accuracy — 4-rank CIFAR, randomized vs exact.
//!
//! The performance case for the randomized factor backend is made by
//! `xp bench-eig`; this experiment makes the *accuracy* case: a 4-rank
//! CIFAR/ResNet run preconditioned with randomized truncated
//! eigendecompositions must land within [`LOSS_TOL`] of the exact
//! tridiagonal-QL run's final training loss (and the per-layer
//! rank/captured-mass telemetry must show real truncation happened —
//! otherwise the run proved nothing).

use crate::experiments::ExperimentOutput;
use crate::presets::{CifarSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig, TrainResult};
use kfac::{EigenSolver, KfacConfig, RandEigPolicy};
use kfac_optim::LrSchedule;

/// Documented tolerance: absolute difference in final mean training loss
/// between the randomized and exact backends. The randomized policy
/// below targets ≥95% captured spectral mass per factor; the discarded
/// tail perturbs each preconditioned gradient by O((1−mass)/γ), which
/// over a short CIFAR budget stays well inside this bound.
pub const LOSS_TOL: f64 = 0.1;

/// The paper's correctness platform worker count for this check.
const RANKS: usize = 4;

fn run_with(setup: &CifarSetup, base: &TrainConfig, solver: EigenSolver) -> TrainResult {
    let mut cfg = base.clone();
    // Set the backend directly (not through `with_kfac`) so a stray
    // `KFAC_EIG_BACKEND` override cannot collapse the two arms of the
    // comparison into the same solver.
    cfg.kfac = Some(KfacConfig {
        update_freq: 10,
        damping: 0.05,
        kl_clip: Some(0.01),
        eigen_solver: solver,
        // Smoke/quick-scale factor dimensions sit below the production
        // `min_dim` small-factor cutoff, so lower it (and the starting
        // rank) to force genuine truncation; 95% mass keeps the
        // truncation aggressive enough to be observable.
        rand_eig: RandEigPolicy {
            min_dim: 1,
            init_rank: 4,
            mass_threshold: 0.95,
            ..RandEigPolicy::default()
        },
        ..KfacConfig::default()
    });
    train(|s| setup.model(s), &setup.train, &setup.val, &cfg)
}

/// Run the experiment.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let base = TrainConfig::new(
        RANKS,
        setup.base_batch,
        setup.kfac_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.kfac_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
        }
        .scale_for_workers(RANKS),
    );

    let exact = run_with(&setup, &base, EigenSolver::TridiagonalQl);
    let rand = run_with(&setup, &base, EigenSolver::Randomized);

    let final_loss = |r: &TrainResult| r.epochs.last().map(|e| e.train_loss).unwrap_or(f64::NAN);
    let (exact_loss, rand_loss) = (final_loss(&exact), final_loss(&rand));
    let delta = (exact_loss - rand_loss).abs();

    let mut table = Table::new(
        "Randomized vs exact eigensolver — 4-rank CIFAR",
        &[
            "Backend",
            "Final Loss",
            "Final Val Acc",
            "Max Eig Rank",
            "Min Captured Mass",
        ],
    );
    for (name, r) in [("tridiag (exact)", &exact), ("randomized", &rand)] {
        let (rank, mass) = r
            .stage_stats
            .as_ref()
            .map(|s| (s.eig_rank, s.eig_captured_mass))
            .unwrap_or((0, 0.0));
        table.row(vec![
            name.to_string(),
            format!("{:.4}", final_loss(r)),
            pct(r.final_val_acc),
            rank.to_string(),
            format!("{mass:.3}"),
        ]);
    }

    let mut notes = vec![format!(
        "Loss tolerance: |Δ final loss| = {delta:.4} vs documented LOSS_TOL = {LOSS_TOL}."
    )];
    if delta <= LOSS_TOL {
        notes.push("Shape holds: randomized backend within loss tolerance of exact.".into());
    } else {
        notes.push(format!(
            "Shape DEVIATION: |Δ loss| {delta:.4} exceeds tolerance {LOSS_TOL}."
        ));
    }
    let rand_stats = rand.stage_stats.as_ref();
    match rand_stats {
        Some(s) if s.eig_captured_mass > 0.0 && s.eig_captured_mass < 1.0 => {
            notes.push(format!(
                "Truncation was real: min captured mass {:.3}, max retained rank {}.",
                s.eig_captured_mass, s.eig_rank
            ));
        }
        _ => notes.push(
            "WARNING: no truncation observed — the randomized path may not have engaged.".into(),
        ),
    }

    ExperimentOutput {
        id: "randeig",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_stays_within_loss_tolerance_and_truncates() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables.len(), 1);
        let md = out.to_markdown();
        assert!(md.contains("randomized"), "{md}");
        assert!(
            !md.contains("DEVIATION"),
            "randomized backend drifted outside LOSS_TOL:\n{md}"
        );
        assert!(
            !md.contains("WARNING"),
            "randomized path never truncated:\n{md}"
        );
    }
}
