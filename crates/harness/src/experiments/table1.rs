//! Table I — explicit-inverse vs eigendecomposition K-FAC across batch
//! sizes.
//!
//! The paper trains CIFAR-10/ResNet-32 at batch {256, 512, 1024} (worker
//! counts {2, 4, 8} × 128) and shows the explicit-inverse variant losing
//! accuracy as batch grows while the eigen variant tracks SGD. We sweep
//! worker counts with the same linear batch/LR scaling on the synthetic
//! CIFAR stand-in and compare the three optimizers at each global batch.

use crate::experiments::ExperimentOutput;
use crate::presets::{CifarSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig};
use kfac::{InversionMethod, KfacConfig};
use kfac_optim::LrSchedule;

/// Per-cell result.
struct Cell {
    batch: usize,
    sgd: f64,
    inverse: f64,
    eigen: f64,
}

/// Run the experiment.
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let ranks_sweep: &[usize] = match scale {
        Scale::Smoke => &[1, 2],
        _ => &[1, 2, 4],
    };

    let mut cells = Vec::new();
    for &ranks in ranks_sweep {
        let global_batch = ranks * setup.base_batch;

        let sgd_cfg = TrainConfig::new(
            ranks,
            setup.base_batch,
            setup.sgd_epochs,
            LrSchedule {
                warmup_epochs: setup.warmup(setup.sgd_epochs),
                ..LrSchedule::paper_steps(setup.base_lr, setup.sgd_decay_epochs())
            }
            .scale_for_workers(ranks),
        );
        let sgd = train(|s| setup.model(s), &setup.train, &setup.val, &sgd_cfg);

        let kfac_base = TrainConfig::new(
            ranks,
            setup.base_batch,
            setup.kfac_epochs,
            LrSchedule {
                warmup_epochs: setup.warmup(setup.kfac_epochs),
                ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
            }
            .scale_for_workers(ranks),
        );

        let mut results = [0.0f64; 2];
        for (i, inversion) in [InversionMethod::ExplicitInverse, InversionMethod::Eigen]
            .into_iter()
            .enumerate()
        {
            let cfg = kfac_base.clone().with_kfac(KfacConfig {
                update_freq: 10,
                // Mid-range damping: large enough for the eigen path to be
                // stable, small enough that the FP32 explicit inverse hits
                // the conditioning regime Table I demonstrates.
                damping: 0.05,
                kl_clip: Some(0.01),
                inversion,
                ..KfacConfig::default()
            });
            let r = train(|s| setup.model(s), &setup.train, &setup.val, &cfg);
            results[i] = r.final_val_acc;
        }

        cells.push(Cell {
            batch: global_batch,
            sgd: sgd.final_val_acc,
            inverse: results[0],
            eigen: results[1],
        });
    }

    let mut table = Table::new(
        "Table I — CIFAR-ResNet validation accuracy: inverse vs eigen K-FAC",
        &[
            "Batch Size",
            "SGD",
            "K-FAC w/ Inverse",
            "K-FAC w/ Eigen-decomp.",
        ],
    );
    for c in &cells {
        table.row(vec![
            c.batch.to_string(),
            pct(c.sgd),
            pct(c.inverse),
            pct(c.eigen),
        ]);
    }

    let mut notes = vec![format!(
        "K-FAC budgets are {} epochs vs SGD's {} (the paper's 100 vs 200).",
        CifarSetup::new(scale).kfac_epochs,
        CifarSetup::new(scale).sgd_epochs
    )];
    // Shape checks the paper's table exhibits.
    let largest = cells.last().expect("cells");
    if largest.eigen >= largest.inverse {
        notes.push(format!(
            "Shape holds at the largest batch ({}): eigen {} ≥ inverse {}.",
            largest.batch,
            pct(largest.eigen),
            pct(largest.inverse)
        ));
    } else {
        notes.push(format!(
            "Shape DEVIATION at batch {}: inverse {} beat eigen {}.",
            largest.batch,
            pct(largest.inverse),
            pct(largest.eigen)
        ));
    }

    ExperimentOutput {
        id: "table1",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_full_grid() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables.len(), 1);
        assert_eq!(out.tables[0].len(), 2, "two batch sizes at smoke scale");
        let md = out.to_markdown();
        assert!(md.contains("K-FAC w/ Inverse"));
    }
}
