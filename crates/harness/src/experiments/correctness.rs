//! Figure 4 + Table II — CIFAR correctness across worker counts.
//!
//! The paper trains ResNet-32 on CIFAR-10 with SGD for 200 epochs and
//! K-FAC for 100, at 1/2/4/8 GPUs with `N × 0.1` learning rates and
//! `N × 128` batches, showing K-FAC matching or beating SGD's final
//! accuracy in half the epochs (Fig. 4 curves, Table II finals).

use crate::experiments::ExperimentOutput;
use crate::presets::{CifarSetup, Scale};
use crate::report::{pct, Table};
use crate::trainer::{train, TrainConfig, TrainResult};
use kfac::KfacConfig;
use kfac_optim::LrSchedule;

fn run_pair(setup: &CifarSetup, ranks: usize) -> (TrainResult, TrainResult) {
    let sgd_cfg = TrainConfig::new(
        ranks,
        setup.base_batch,
        setup.sgd_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.sgd_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.sgd_decay_epochs())
        }
        .scale_for_workers(ranks),
    );
    let sgd = train(|s| setup.model(s), &setup.train, &setup.val, &sgd_cfg);

    let kfac_cfg = TrainConfig::new(
        ranks,
        setup.base_batch,
        setup.kfac_epochs,
        LrSchedule {
            warmup_epochs: setup.warmup(setup.kfac_epochs),
            ..LrSchedule::paper_steps(setup.base_lr, setup.kfac_decay_epochs())
        }
        .scale_for_workers(ranks),
    )
    .with_kfac(KfacConfig {
        update_freq: 10,
        damping: 0.1,
        kl_clip: Some(0.01),
        ..KfacConfig::default()
    });
    let kfac = train(|s| setup.model(s), &setup.train, &setup.val, &kfac_cfg);
    (sgd, kfac)
}

/// Run the experiment (serves both `table2` and `fig4`).
pub fn run(scale: Scale) -> ExperimentOutput {
    let setup = CifarSetup::new(scale);
    let rank_sweep: &[usize] = match scale {
        Scale::Smoke => &[1, 2],
        Scale::Quick => &[1, 2, 4],
        Scale::Full => &[1, 2, 4, 8],
    };

    let mut finals = Vec::new();
    let mut curves: Vec<(usize, TrainResult, TrainResult)> = Vec::new();
    for &ranks in rank_sweep {
        let (sgd, kfac) = run_pair(&setup, ranks);
        finals.push((ranks, sgd.final_val_acc, kfac.final_val_acc));
        if ranks <= 2 {
            curves.push((ranks, sgd.clone(), kfac.clone()));
        }
    }

    // Table II layout: one column per worker count.
    let headers: Vec<String> = std::iter::once("GPUs".to_string())
        .chain(finals.iter().map(|(r, _, _)| r.to_string()))
        .collect();
    let mut table2 = Table::new(
        "Table II — final validation accuracy across worker counts",
        &headers.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    table2.row(
        std::iter::once("SGD".to_string())
            .chain(finals.iter().map(|(_, s, _)| pct(*s)))
            .collect(),
    );
    table2.row(
        std::iter::once("K-FAC".to_string())
            .chain(finals.iter().map(|(_, _, k)| pct(*k)))
            .collect(),
    );

    // Fig. 4: validation-accuracy curves for 1 and 2 workers.
    let mut fig4 = Table::new(
        "Fig. 4 — validation accuracy per epoch (K-FAC trains half the epochs)",
        &["epoch", "run", "val acc"],
    );
    for (ranks, sgd, kfac) in &curves {
        for rec in &sgd.epochs {
            fig4.row(vec![
                rec.epoch.to_string(),
                format!("SGD {ranks}w"),
                pct(rec.val_acc),
            ]);
        }
        for rec in &kfac.epochs {
            fig4.row(vec![
                rec.epoch.to_string(),
                format!("K-FAC {ranks}w"),
                pct(rec.val_acc),
            ]);
        }
    }

    let mut notes = Vec::new();
    // Render the Fig. 4 curves as an ASCII chart (x is epoch *fraction*
    // of each run's budget, so the half-budget K-FAC curve spans the
    // same width as SGD — the visual point of the paper's figure).
    if let Some((ranks, sgd, kfac)) = curves.first() {
        let series = vec![
            (
                format!("SGD {ranks}w"),
                sgd.epochs.iter().map(|e| e.val_acc).collect::<Vec<_>>(),
            ),
            (
                format!("K-FAC {ranks}w (half epochs)"),
                kfac.epochs.iter().map(|e| e.val_acc).collect::<Vec<_>>(),
            ),
        ];
        notes.push(format!(
            "Fig. 4 curves (validation accuracy vs training progress):\n```\n{}```",
            crate::report::ascii_chart(&series, 60, 12)
        ));
    }
    let worst_gap = finals
        .iter()
        .map(|(_, s, k)| k - s)
        .fold(f64::INFINITY, f64::min);
    notes.push(format!(
        "K-FAC trains {} epochs vs SGD's {}; worst-case accuracy gap (K-FAC − SGD) = {:+.2} points.",
        setup.kfac_epochs,
        setup.sgd_epochs,
        worst_gap * 100.0
    ));
    if worst_gap > -0.02 {
        notes.push(
            "Shape holds: K-FAC matches SGD (±2 points) in half the epochs at every worker count."
                .into(),
        );
    } else {
        notes.push("Shape DEVIATION: K-FAC trails SGD by more than 2 points somewhere.".into());
    }

    ExperimentOutput {
        id: "table2",
        tables: vec![table2, fig4],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_table_and_curves() {
        let out = run(Scale::Smoke);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].len(), 2, "SGD and K-FAC rows");
        assert!(out.tables[1].len() > 4, "curves have epoch rows");
    }
}
