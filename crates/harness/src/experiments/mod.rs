//! One driver per table/figure of the paper's evaluation (§VI).
//!
//! | module | regenerates |
//! |---|---|
//! | [`table1`] | Table I — inverse vs eigen K-FAC accuracy across batch sizes |
//! | [`correctness`] | Fig. 4 + Table II — CIFAR accuracy across worker counts |
//! | [`fig5`] | Fig. 5 — ImageNet-style accuracy curves, K-FAC 55-epoch budget vs SGD 90 |
//! | [`freq`] | Table III + Fig. 6 — accuracy/time vs K-FAC update frequency |
//! | [`scaling`] | Figs. 7–9 + Table IV — time-to-solution across 16–256 GPUs |
//! | [`table5`] | Table V — factor/eig stage time profile |
//! | [`table6`] | Table VI — per-worker eig imbalance (+ LPT placement ablation) |
//! | [`fig10`] | Fig. 10 — factor computation time vs model size (measured + projected) |
//! | [`overlap`] | §V — overlapped vs sequential execution (measured + projected) |
//! | [`chaos`] | fault matrix — resilient 4-rank training under injected faults |
//! | [`elastic`] | elastic membership — kill a rank mid-run, shrink, bitwise resume |
//! | [`randeig`] | randomized vs exact eigensolver — 4-rank CIFAR loss parity |
//! | [`mixed`] | mixed precision — f32 vs bf16 policy loss parity + wire-byte halving |
//!
//! Each driver returns an [`ExperimentOutput`] of markdown tables plus
//! free-form notes; the `xp` binary prints them and appends to
//! `results/`.

pub mod ablations;
pub mod chaos;
pub mod correctness;
pub mod elastic;
pub mod fig10;
pub mod fig5;
pub mod freq;
pub mod mixed;
pub mod overlap;
pub mod randeig;
pub mod scaling;
pub mod table1;
pub mod table5;
pub mod table6;

use crate::presets::Scale;
use crate::report::Table;

/// Rendered output of one experiment driver.
pub struct ExperimentOutput {
    /// Experiment id (`"table1"`, `"fig7"`, …).
    pub id: &'static str,
    /// Markdown tables in paper order.
    pub tables: Vec<Table>,
    /// Free-form observations (shape checks, substitutions used).
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Render everything to markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## Experiment `{}`\n\n", self.id);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n");
            for n in &self.notes {
                out.push_str(&format!("- {n}\n"));
            }
        }
        out
    }
}

/// All experiment ids the `xp` binary accepts.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "fig4",
    "correctness",
    "fig5",
    "table3",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table4",
    "table5",
    "table6",
    "fig10",
    "ablations",
    "overlap",
    "chaos",
    "elastic",
    "randeig",
    "mixed",
];

/// Dispatch one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentOutput> {
    match id {
        "table1" => Some(table1::run(scale)),
        "table2" | "fig4" | "correctness" => Some(correctness::run(scale)),
        "fig5" => Some(fig5::run(scale)),
        "table3" | "fig6" => Some(freq::run(scale)),
        "fig7" => Some(scaling::run_model(50)),
        "fig8" => Some(scaling::run_model(101)),
        "fig9" => Some(scaling::run_model(152)),
        "table4" => Some(scaling::run_table4()),
        "table5" => Some(table5::run()),
        "table6" => Some(table6::run()),
        "fig10" => Some(fig10::run(scale)),
        "ablations" => Some(ablations::run(scale)),
        "overlap" => Some(overlap::run(scale)),
        "chaos" => Some(chaos::run(scale)),
        "elastic" => Some(elastic::run(scale)),
        "randeig" => Some(randeig::run(scale)),
        "mixed" => Some(mixed::run(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_knows_every_listed_experiment() {
        // The simulator-only experiments run instantly; just verify
        // dispatch wiring for those (training experiments are exercised
        // by their own smoke tests).
        for id in ["fig7", "fig8", "fig9", "table4", "table5", "table6"] {
            let out = run(id, Scale::Smoke).expect("dispatch");
            assert!(!out.tables.is_empty(), "{id} returned no tables");
        }
        assert!(run("nonsense", Scale::Smoke).is_none());
    }
}
