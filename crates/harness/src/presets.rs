//! Experiment presets: model/dataset/budget combinations at three scales.
//!
//! Every experiment driver accepts a [`Scale`] so the same code path runs
//! as a seconds-long smoke test (CI, Criterion benches), a minutes-long
//! default reproduction (`xp <experiment>`), or a longer full run.
//! All sizes are CPU-tractable stand-ins per DESIGN.md §1; the *ratios*
//! the paper's experiments depend on (K-FAC's epoch budget = 55/90 of
//! SGD's, batch/LR linear scaling, update-frequency scaling) are
//! preserved exactly.

use kfac_data::{synthetic_cifar, synthetic_imagenet, SyntheticImages};
use kfac_nn::resnet::{bottleneck_blocks, resnet_bottleneck, resnet_cifar};
use kfac_nn::Sequential;
use kfac_tensor::Rng64;

/// Experiment size preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds: CI and benchmark smoke runs.
    Smoke,
    /// Minutes: the default for `xp` reproductions.
    Quick,
    /// Tens of minutes: tighter statistics.
    Full,
}

impl Scale {
    /// Parse from CLI text.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// CIFAR-like benchmark setup (the paper's correctness platform).
pub struct CifarSetup {
    /// Training split.
    pub train: SyntheticImages,
    /// Validation split.
    pub val: SyntheticImages,
    /// Image resolution.
    pub size: usize,
    /// SGD epoch budget (paper: 200 on CIFAR).
    pub sgd_epochs: usize,
    /// K-FAC epoch budget (paper: 100 — half of SGD's).
    pub kfac_epochs: usize,
    /// Base learning rate before worker scaling (paper: 0.1).
    pub base_lr: f32,
    /// Base per-worker batch (paper: 128).
    pub base_batch: usize,
    /// Stage depth n of the ResNet (paper: 5 → ResNet-32).
    pub resnet_n: usize,
    /// Base width of the ResNet (paper: 16).
    pub width: usize,
}

impl CifarSetup {
    /// Construct the setup for a scale.
    pub fn new(scale: Scale) -> Self {
        let (size, train_len, val_len, sgd_epochs, n, width) = match scale {
            Scale::Smoke => (8, 256, 64, 4, 1, 4),
            Scale::Quick => (10, 1024, 256, 16, 1, 6),
            Scale::Full => (12, 2048, 512, 30, 2, 8),
        };
        let (train, val) = synthetic_cifar(size, train_len, val_len, 20260704);
        CifarSetup {
            train,
            val,
            size,
            sgd_epochs,
            kfac_epochs: sgd_epochs / 2,
            base_lr: 0.1,
            base_batch: 16,
            resnet_n: n,
            width,
        }
    }

    /// Deterministic model builder for this setup.
    pub fn model(&self, seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        resnet_cifar(self.resnet_n, self.width, 10, 3, &mut rng)
    }

    /// LR decay epochs for SGD (paper: 100, 150 of 200 → same fractions).
    pub fn sgd_decay_epochs(&self) -> Vec<usize> {
        vec![self.sgd_epochs / 2, self.sgd_epochs * 3 / 4]
    }

    /// LR decay epochs for K-FAC (paper: 35, 75, 90 of 100).
    pub fn kfac_decay_epochs(&self) -> Vec<usize> {
        let e = self.kfac_epochs;
        vec![e * 35 / 100, e * 75 / 100, e * 90 / 100]
            .into_iter()
            .filter(|&x| x > 0)
            .collect()
    }

    /// Warmup epochs (paper: 5 of 200 → same fraction, at least 1).
    pub fn warmup(&self, epochs: usize) -> f32 {
        (epochs as f32 * 0.05).max(1.0)
    }
}

/// ImageNet-like benchmark setup (the paper's performance platform).
pub struct ImagenetSetup {
    /// Training split.
    pub train: SyntheticImages,
    /// Validation split.
    pub val: SyntheticImages,
    /// Class count.
    pub classes: usize,
    /// SGD epoch budget (paper: 90).
    pub sgd_epochs: usize,
    /// K-FAC epoch budget (paper: 55).
    pub kfac_epochs: usize,
    /// Base learning rate before worker scaling (paper: 0.0125).
    pub base_lr: f32,
    /// Base per-worker batch (paper: 32).
    pub base_batch: usize,
    /// Width of the bottleneck ResNet.
    pub width: usize,
}

impl ImagenetSetup {
    /// Construct the setup for a scale.
    pub fn new(scale: Scale) -> Self {
        let (classes, size, train_len, val_len, sgd_epochs, width) = match scale {
            Scale::Smoke => (10, 8, 256, 64, 4, 4),
            Scale::Quick => (10, 10, 640, 160, 14, 5),
            Scale::Full => (20, 10, 1536, 384, 24, 6),
        };
        let (train, val) = synthetic_imagenet(classes, size, train_len, val_len, 20200701);
        // Keep the paper's 55/90 epoch ratio.
        ImagenetSetup {
            train,
            val,
            classes,
            sgd_epochs,
            kfac_epochs: (sgd_epochs * 55).div_ceil(90),
            base_lr: 0.1,
            base_batch: 16,
            width,
        }
    }

    /// Deterministic bottleneck-ResNet builder (`depth` ∈ {50, 101, 152}),
    /// used for structure/measurement experiments (Fig. 10).
    pub fn model(&self, depth: usize, seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        resnet_bottleneck(
            &bottleneck_blocks(depth),
            self.width,
            self.classes,
            3,
            &mut rng,
        )
    }

    /// Deterministic model for the *training* correctness experiments
    /// (Fig. 5, Table III): a width-scaled basic-block ImageNet ResNet.
    /// At CPU-tractable widths the deep bottleneck stack optimizes too
    /// poorly to exercise the paper's convergence claims, so — like the
    /// paper's own development protocol, which used the basic-block
    /// ResNet-34 (§VI-B) — the runnable convergence experiments use the
    /// basic-block family. Full-size bottleneck models remain the
    /// subject of the scaling projections.
    pub fn correctness_model(&self, seed: u64) -> Sequential {
        let mut rng = Rng64::new(seed);
        kfac_nn::resnet::resnet_basic(
            &kfac_nn::resnet::basic_blocks(18),
            self.width,
            self.classes,
            3,
            &mut rng,
        )
    }

    /// SGD decay epochs (paper: 30, 40, 80 of 90 → same fractions).
    pub fn sgd_decay_epochs(&self) -> Vec<usize> {
        let e = self.sgd_epochs;
        vec![e * 30 / 90, e * 40 / 90, e * 80 / 90]
            .into_iter()
            .filter(|&x| x > 0)
            .collect()
    }

    /// K-FAC decay epochs (paper: 25, 35, 40, 45, 50 of 55).
    pub fn kfac_decay_epochs(&self) -> Vec<usize> {
        let e = self.kfac_epochs;
        let mut v: Vec<usize> = [25, 35, 40, 45, 50]
            .iter()
            .map(|&x| e * x / 55)
            .filter(|&x| x > 0)
            .collect();
        v.dedup();
        v
    }

    /// Warmup epochs (paper: 5 of 90).
    pub fn warmup(&self, epochs: usize) -> f32 {
        (epochs as f32 * 5.0 / 90.0).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kfac_data::Dataset;
    use kfac_nn::Layer;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn cifar_setup_is_consistent() {
        let s = CifarSetup::new(Scale::Smoke);
        assert_eq!(s.train.num_classes(), 10);
        assert_eq!(s.kfac_epochs, s.sgd_epochs / 2);
        let mut m = s.model(1);
        assert_eq!(m.output_shape((2, 3, s.size, s.size)), (2, 10, 1, 1));
        // Same seed → same model.
        let mut m2 = s.model(1);
        let (mut w1, mut w2) = (Vec::new(), Vec::new());
        m.visit_params("", &mut |_, w, _| w1.extend_from_slice(w));
        m2.visit_params("", &mut |_, w, _| w2.extend_from_slice(w));
        assert_eq!(w1, w2);
    }

    #[test]
    fn imagenet_setup_preserves_epoch_ratio() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Full] {
            let s = ImagenetSetup::new(scale);
            let ratio = s.kfac_epochs as f64 / s.sgd_epochs as f64;
            assert!(
                (ratio - 55.0 / 90.0).abs() < 0.15,
                "epoch ratio {ratio} strays from 55/90"
            );
        }
    }

    #[test]
    fn decay_schedules_fit_budgets() {
        let s = CifarSetup::new(Scale::Quick);
        for &e in &s.sgd_decay_epochs() {
            assert!(e < s.sgd_epochs);
        }
        for &e in &s.kfac_decay_epochs() {
            assert!(e < s.kfac_epochs);
        }
        let i = ImagenetSetup::new(Scale::Quick);
        for &e in &i.kfac_decay_epochs() {
            assert!(e < i.kfac_epochs);
        }
    }

    #[test]
    fn imagenet_models_by_depth() {
        let s = ImagenetSetup::new(Scale::Smoke);
        let mut shallow = s.model(50, 1);
        let mut deep = s.model(101, 1);
        let (mut k1, mut k2) = (Vec::new(), Vec::new());
        shallow.collect_kfac(&mut k1);
        deep.collect_kfac(&mut k2);
        assert!(k2.len() > k1.len());
    }
}
