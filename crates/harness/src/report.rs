//! Markdown rendering for experiment results.
//!
//! Every experiment returns typed rows; this module turns them into the
//! same row/series layout the paper's tables and figures use, and appends
//! them to a results file for EXPERIMENTS.md.

use std::fmt::Write as _;
use std::path::Path;

/// A simple markdown table builder.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format seconds as `MM:SS` or `H:MM:SS`.
pub fn hms(total_s: f64) -> String {
    let s = total_s.round() as u64;
    let (h, m, sec) = (s / 3600, (s % 3600) / 60, s % 60);
    if h > 0 {
        format!("{h}:{m:02}:{sec:02}")
    } else {
        format!("{m}:{sec:02}")
    }
}

/// Format milliseconds with appropriate precision.
pub fn ms(seconds: f64) -> String {
    format!("{:.2} ms", seconds * 1e3)
}

/// Render labelled series as a fixed-size ASCII chart (x = sample index,
/// y = value), so the `fig*` experiments emit actual curves alongside the
/// row data. Each series is drawn with its own glyph; later series
/// overwrite earlier ones on collisions.
pub fn ascii_chart(series: &[(String, Vec<f64>)], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3);
    let all: Vec<f64> = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = all.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);

    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, values)) in series.iter().enumerate() {
        if values.is_empty() {
            continue;
        }
        let glyph = GLYPHS[si % GLYPHS.len()];
        let denom = (values.len() - 1).max(1) as f64;
        for (i, &v) in values.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let x = ((i as f64 / denom) * (width - 1) as f64).round() as usize;
            let y = (((v - lo) / span) * (height - 1) as f64).round() as usize;
            grid[height - 1 - y][x] = glyph;
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "{hi:>8.3} ┤{}", grid[0].iter().collect::<String>());
    for row in &grid[1..height - 1] {
        let _ = writeln!(out, "{:>8} ┤{}", "", row.iter().collect::<String>());
    }
    let _ = writeln!(
        out,
        "{lo:>8.3} └{}",
        grid[height - 1].iter().collect::<String>()
    );
    for (si, (name, _)) in series.iter().enumerate() {
        let _ = writeln!(out, "  {} = {}", GLYPHS[si % GLYPHS.len()], name);
    }
    out
}

/// Append markdown to a results file (creating parent directories).
pub fn append_to_file(path: &Path, markdown: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{markdown}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["3".into(), "4".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 3 | 4 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.759), "75.9%");
        assert_eq!(hms(62.0), "1:02");
        assert_eq!(hms(3723.0), "1:02:03");
        assert_eq!(ms(0.01234), "12.34 ms");
    }

    #[test]
    fn ascii_chart_plots_extremes_and_legend() {
        let chart = ascii_chart(
            &[
                ("up".into(), vec![0.0, 0.5, 1.0]),
                ("down".into(), vec![1.0, 0.5, 0.0]),
            ],
            16,
            5,
        );
        assert!(chart.contains("* = up"));
        assert!(chart.contains("o = down"));
        assert!(chart.contains("1.000"));
        assert!(chart.contains("0.000"));
        // Both glyphs appear somewhere on the canvas.
        assert!(chart.contains('*') && chart.contains('o'));
    }

    #[test]
    fn ascii_chart_handles_empty_and_flat() {
        assert_eq!(ascii_chart(&[], 10, 4), "(no data)\n");
        let flat = ascii_chart(&[("c".into(), vec![2.0; 5])], 10, 4);
        assert!(flat.contains('*'));
    }

    #[test]
    fn append_writes_file() {
        let dir = std::env::temp_dir().join("kfac_report_test");
        let path = dir.join("out.md");
        let _ = std::fs::remove_file(&path);
        append_to_file(&path, "hello").unwrap();
        append_to_file(&path, "world").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("hello\nworld"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
