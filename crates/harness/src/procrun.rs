//! Multi-process run orchestration.
//!
//! The `xp` binary is both the launcher and the worker: `spawn_world`
//! re-executes the current binary once per rank with the
//! `KFAC_PROC_*` rendezvous env set plus a `KFAC_PROC_JOB` selector, and
//! `worker_main` (invoked by `xp`'s `main` whenever `KFAC_PROC_RANK` is
//! present) joins the TCP mesh and dispatches the job. Three jobs exist:
//!
//! * `bench-allreduce` — the allreduce microbenchmark behind
//!   `xp bench-allreduce`: every rank drives the same op sequence, rank 0
//!   reports median seconds per message size on stdout. The launcher runs
//!   one world per algorithm, fits `T(n) = A + B·n` to each, converts the
//!   pipelined-ring fit into α/β link constants for the `kfac-cluster`
//!   simulator, and locates the halving/doubling↔ring crossover
//!   (`BENCH_allreduce.json`).
//! * `train-cifar` — the canonical 4-process K-FAC CIFAR demo behind
//!   `xp proc-train`: each worker trains the shared [`cifar_demo_config`]
//!   over its `ProcComm`, and rank 0 emits the loss trajectory (exact
//!   round-trip `f64` repr) plus a parameter bit-hash. The
//!   `proc_train` integration test compares this byte-for-byte against
//!   the in-process `ThreadComm` run — the end-to-end witness that both
//!   fabrics compute the same training trajectory.
//! * `train-elastic` — the shrink-world recovery trial behind
//!   `xp elastic`: the victim rank exits cold mid-run, the survivors'
//!   failure detector fences it behind a new membership epoch, and
//!   training resumes from the latest checkpoint on the smaller world
//!   (see [`crate::elastic`]).

use crate::trainer::{train_with_comm, TrainConfig, TrainResult};
use kfac::KfacConfig;
use kfac_collectives::proc::{ProcComm, ProcConfig};
use kfac_collectives::{CommBackend, Communicator, ReduceOp, TrafficClass};
use kfac_data::{synthetic_cifar, SyntheticImages};
use kfac_nn::{resnet::resnet_cifar, Sequential};
use kfac_optim::LrSchedule;
use kfac_tensor::Rng64;
use std::io;
use std::process::{Command, Output, Stdio};
use std::time::Instant;

/// Env var selecting the worker job in spawned ranks.
pub const JOB_ENV: &str = "KFAC_PROC_JOB";
/// Comma-separated message sizes in bytes for `bench-allreduce` workers.
const BENCH_SIZES_ENV: &str = "KFAC_BENCH_BYTES";
/// Iterations per message size for `bench-allreduce` workers.
const BENCH_ITERS_ENV: &str = "KFAC_BENCH_ITERS";

/// Default benchmark message sizes: 1 KiB – 8 MiB, spanning both sides
/// of the latency/bandwidth crossover.
pub const DEFAULT_BENCH_BYTES: &[usize] = &[
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    8 << 20,
];
/// Default timed iterations per (size, algorithm) point.
pub const DEFAULT_BENCH_ITERS: usize = 5;
/// The algorithms the benchmark compares (the auto-policy candidates).
pub const BENCH_ALGOS: &[&str] = &["halving-doubling", "pipelined-ring"];

/// Spawn `world` copies of the current executable as proc ranks running
/// `job`, wait for all of them, and return their outputs (stdout
/// captured, stderr inherited) in rank order.
pub fn spawn_world(
    world: usize,
    job: &str,
    extra_env: &[(String, String)],
) -> io::Result<Vec<Output>> {
    // Pick a free broker port by bind-drop; rank 0 rebinds it. The small
    // race window is acceptable for localhost orchestration — a clash
    // fails the rendezvous loudly within its deadline.
    let root = {
        let l = std::net::TcpListener::bind("127.0.0.1:0")?;
        l.local_addr()?.to_string()
    };
    let exe = std::env::current_exe()?;
    let mut children = Vec::with_capacity(world);
    for rank in 0..world {
        let mut cmd = Command::new(&exe);
        for (k, v) in ProcConfig::env_for_rank(rank, world, &root) {
            cmd.env(k, v);
        }
        cmd.env(JOB_ENV, job);
        for (k, v) in extra_env {
            cmd.env(k, v);
        }
        cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
        children.push(cmd.spawn()?);
    }
    children.into_iter().map(|c| c.wait_with_output()).collect()
}

/// Worker-side entry: join the mesh described by `KFAC_PROC_*` and run
/// the job named by [`JOB_ENV`]. Returns the process exit code.
pub fn worker_main() -> i32 {
    let comm = match ProcComm::from_env() {
        Ok(Some(c)) => c,
        Ok(None) => {
            eprintln!("worker_main called without KFAC_PROC_RANK set");
            return 2;
        }
        Err(e) => {
            eprintln!("{e}");
            return 1;
        }
    };
    let job = std::env::var(JOB_ENV).unwrap_or_default();
    match job.as_str() {
        "bench-allreduce" => bench_worker(&comm),
        "train-cifar" => train_worker(&comm),
        "train-elastic" => crate::elastic::proc_elastic_worker(&comm),
        other => {
            eprintln!(
                "unknown {JOB_ENV}={other:?} (expected bench-allreduce|train-cifar|train-elastic)"
            );
            2
        }
    }
}

// ---------------------------------------------------------------------
// bench-allreduce
// ---------------------------------------------------------------------

/// One measured point: `algo` at `bytes` took a median `seconds` per op.
#[derive(Debug, Clone)]
pub struct BenchPoint {
    pub bytes: usize,
    pub algo: String,
    pub seconds: f64,
}

/// An affine fit `T(n) = a_s + b_s_per_byte · n` for one algorithm.
#[derive(Debug, Clone)]
pub struct BenchFit {
    pub algo: String,
    pub a_s: f64,
    pub b_s_per_byte: f64,
}

/// Time allreduces of each size on `comm`; all ranks drive the identical
/// op sequence (the MPI ordering contract), every rank returns its own
/// medians but only rank 0's are reported.
pub fn measure_allreduce(
    comm: &dyn Communicator,
    sizes_bytes: &[usize],
    iters: usize,
) -> Vec<(usize, f64)> {
    let mut out = Vec::with_capacity(sizes_bytes.len());
    for &bytes in sizes_bytes {
        let elems = (bytes / std::mem::size_of::<f32>()).max(1);
        let mut buf = vec![1.0f32; elems];
        // Warm the path (mailboxes, socket buffers) outside the timing.
        for _ in 0..2 {
            comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Other);
            buf.iter_mut().for_each(|v| *v = 1.0);
        }
        let mut samples = Vec::with_capacity(iters.max(1));
        for _ in 0..iters.max(1) {
            // Barrier-align so the timer starts when the group is ready,
            // not when the slowest rank drains the previous op.
            comm.barrier();
            let t = Instant::now();
            comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Other);
            samples.push(t.elapsed().as_secs_f64());
            buf.iter_mut().for_each(|v| *v = 1.0);
        }
        samples.sort_by(f64::total_cmp);
        out.push((bytes, samples[samples.len() / 2]));
    }
    out
}

/// Worker half of `xp bench-allreduce`: sizes/iters from env, medians on
/// rank 0's stdout as `bytes seconds` lines.
fn bench_worker(comm: &ProcComm) -> i32 {
    let sizes: Vec<usize> = match std::env::var(BENCH_SIZES_ENV) {
        Ok(s) => match s.split(',').map(|p| p.trim().parse()).collect() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("{BENCH_SIZES_ENV}={s:?} invalid; expected comma-separated byte counts");
                return 2;
            }
        },
        Err(_) => DEFAULT_BENCH_BYTES.to_vec(),
    };
    let iters = std::env::var(BENCH_ITERS_ENV)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_BENCH_ITERS);
    let points = measure_allreduce(comm, &sizes, iters);
    if comm.rank() == 0 {
        for (bytes, seconds) in points {
            println!("{bytes} {seconds:e}");
        }
    }
    0
}

/// Ordinary least squares for `y = a + b·x`.
pub fn fit_affine(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        return (points.first().map(|p| p.1).unwrap_or(0.0), 0.0);
    }
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < f64::EPSILON {
        return (sy / n, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

/// Crossover message size below which halving/doubling beats the
/// pipelined ring, from the two fitted lines (`None` when the fits never
/// cross in the positive quadrant — one algorithm dominates).
pub fn fitted_crossover_bytes(hd: &BenchFit, ring: &BenchFit) -> Option<usize> {
    let db = hd.b_s_per_byte - ring.b_s_per_byte;
    if db <= 0.0 {
        return None; // hd never loses on bandwidth → no crossover
    }
    let n = (ring.a_s - hd.a_s) / db;
    (n > 0.0).then_some(n as usize)
}

/// Outcome of a full `xp bench-allreduce` sweep.
pub struct BenchOutcome {
    pub ranks: usize,
    pub iters: usize,
    pub points: Vec<BenchPoint>,
    pub fits: Vec<BenchFit>,
    /// Link constants for `kfac_collectives::LinkSpec`, from the
    /// pipelined-ring fit via the chain model `T = 2(p−1)α + 2nβ`.
    pub alpha_s: f64,
    pub beta_s_per_byte: f64,
    pub crossover_bytes: usize,
}

/// Launcher half of `xp bench-allreduce`: one world per algorithm (the
/// algorithm is forced through the same `KFAC_COMM_ALGO` knob users
/// have), parse rank 0's medians, fit, and derive the policy constants.
pub fn run_bench_allreduce(
    ranks: usize,
    iters: usize,
    sizes: &[usize],
) -> io::Result<BenchOutcome> {
    let csv = sizes
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut points = Vec::new();
    let mut fits = Vec::new();
    for &algo in BENCH_ALGOS {
        eprintln!("bench-allreduce: {algo} across {ranks} processes ({iters} iters/size)");
        let outputs = spawn_world(
            ranks,
            "bench-allreduce",
            &[
                ("KFAC_COMM_ALGO".to_string(), algo.to_string()),
                (BENCH_SIZES_ENV.to_string(), csv.clone()),
                (BENCH_ITERS_ENV.to_string(), iters.to_string()),
            ],
        )?;
        for (rank, out) in outputs.iter().enumerate() {
            if !out.status.success() {
                return Err(io::Error::other(format!(
                    "bench worker rank {rank} ({algo}) exited with {}",
                    out.status
                )));
            }
        }
        let stdout = String::from_utf8_lossy(&outputs[0].stdout).into_owned();
        let mut algo_points = Vec::new();
        for line in stdout.lines().filter(|l| !l.trim().is_empty()) {
            let mut it = line.split_whitespace();
            let (Some(b), Some(s)) = (it.next(), it.next()) else {
                return Err(io::Error::other(format!("malformed bench line {line:?}")));
            };
            let bytes: usize = b
                .parse()
                .map_err(|_| io::Error::other(format!("malformed bench line {line:?}")))?;
            let seconds: f64 = s
                .parse()
                .map_err(|_| io::Error::other(format!("malformed bench line {line:?}")))?;
            algo_points.push((bytes as f64, seconds));
            points.push(BenchPoint {
                bytes,
                algo: algo.to_string(),
                seconds,
            });
        }
        let (a_s, b_s_per_byte) = fit_affine(&algo_points);
        fits.push(BenchFit {
            algo: algo.to_string(),
            a_s,
            b_s_per_byte,
        });
    }
    let hd = fits.iter().find(|f| f.algo == "halving-doubling").unwrap();
    let ring = fits.iter().find(|f| f.algo == "pipelined-ring").unwrap();
    // Chain-pipelined ring moves 2n bytes per rank through 2(p−1) hops of
    // pipeline fill: T ≈ 2(p−1)α + 2nβ, so the affine fit maps back as
    // α = A/(2(p−1)), β = B/2.
    let hops = 2.0 * (ranks.saturating_sub(1)).max(1) as f64;
    let alpha_s = (ring.a_s / hops).max(0.0);
    let beta_s_per_byte = (ring.b_s_per_byte / 2.0).max(0.0);
    let crossover_bytes = fitted_crossover_bytes(hd, ring)
        .unwrap_or(kfac_collectives::AlgoPolicy::default().hd_max_bytes);
    Ok(BenchOutcome {
        ranks,
        iters,
        points,
        fits,
        alpha_s,
        beta_s_per_byte,
        crossover_bytes,
    })
}

impl BenchOutcome {
    /// Render as the committed `BENCH_allreduce.json` document (the
    /// schema `kfac_cluster::calibrate` parses).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"backend\": \"proc\",\n");
        s.push_str(&format!("  \"ranks\": {},\n", self.ranks));
        s.push_str(&format!("  \"iters\": {},\n", self.iters));
        s.push_str("  \"results\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"bytes\": {}, \"algo\": \"{}\", \"seconds\": {:e}}}{}\n",
                p.bytes,
                p.algo,
                p.seconds,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"fits\": [\n");
        for (i, f) in self.fits.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"algo\": \"{}\", \"a_s\": {:e}, \"b_s_per_byte\": {:e}}}{}\n",
                f.algo,
                f.a_s,
                f.b_s_per_byte,
                if i + 1 < self.fits.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"fitted\": {{\"alpha_s\": {:e}, \"beta_s_per_byte\": {:e}}},\n",
            self.alpha_s, self.beta_s_per_byte
        ));
        s.push_str(&format!(
            "  \"crossover_bytes\": {}\n",
            self.crossover_bytes
        ));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut s = String::from("| bytes | algo | seconds |\n|---:|---|---:|\n");
        for p in &self.points {
            s.push_str(&format!(
                "| {} | {} | {:.3e} |\n",
                p.bytes, p.algo, p.seconds
            ));
        }
        s.push_str(&format!(
            "\nfitted link: alpha = {:.3e} s, beta = {:.3e} s/byte; \
             hd→ring crossover ≈ {} bytes\n",
            self.alpha_s, self.beta_s_per_byte, self.crossover_bytes
        ));
        s
    }
}

// ---------------------------------------------------------------------
// train-cifar
// ---------------------------------------------------------------------

/// The canonical demo model: 3-stage depth-1 CIFAR ResNet.
pub fn cifar_demo_model(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

/// The canonical demo datasets (deterministic synthetic CIFAR).
pub fn cifar_demo_data() -> (SyntheticImages, SyntheticImages) {
    synthetic_cifar(8, 96, 32, 11)
}

/// The canonical demo config: 2 epochs of K-FAC training at local batch
/// 8. Shared verbatim by the proc worker, `xp proc-train` and the
/// `proc_train` bitwise integration test, so every party trains the
/// exact same run.
pub fn cifar_demo_config(ranks: usize) -> TrainConfig {
    let mut cfg = TrainConfig::new(ranks, 8, 2, LrSchedule::paper_steps(0.05, vec![4]));
    cfg.lr.warmup_epochs = 1.0;
    cfg.kfac = Some(KfacConfig {
        update_freq: 2,
        ..KfacConfig::default()
    });
    // The reference run is pinned to the thread fabric regardless of the
    // ambient KFAC_COMM_BACKEND; proc workers bring their own comm.
    cfg.backend = CommBackend::Thread;
    cfg
}

/// FNV-style bit-hash of a parameter vector: equal iff every f32 is
/// bit-equal, and cheap enough to print in a summary line.
pub fn params_bit_hash(params: &[f32]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in params {
        h ^= v.to_bits() as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The summary rank 0 prints: per-epoch losses in exact round-trip `f64`
/// repr plus the final-parameter bit-hash.
pub fn train_summary_json(ranks: usize, backend: &str, result: &TrainResult) -> String {
    let losses = result
        .epochs
        .iter()
        .map(|e| format!("{:?}", e.train_loss))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\"ranks\": {}, \"backend\": \"{}\", \"train_loss\": [{}], \
         \"final_val_acc\": {:?}, \"params_hash\": \"{:016x}\"}}",
        ranks,
        backend,
        losses,
        result.final_val_acc,
        params_bit_hash(&result.final_params)
    )
}

/// Worker half of `xp proc-train`: train the shared demo over the
/// process mesh; rank 0 prints the trajectory summary.
fn train_worker(comm: &ProcComm) -> i32 {
    let cfg = cifar_demo_config(comm.size());
    let (train_ds, val_ds) = cifar_demo_data();
    if let Some(result) = train_with_comm(comm, &cifar_demo_model, &train_ds, &val_ds, &cfg) {
        println!("{}", train_summary_json(comm.size(), "proc", &result));
    }
    0
}

/// Launcher half of `xp proc-train`: spawn the world, relay rank 0's
/// summary line to our stdout, propagate failures.
pub fn run_proc_train(ranks: usize) -> io::Result<String> {
    let outputs = spawn_world(ranks, "train-cifar", &[])?;
    for (rank, out) in outputs.iter().enumerate() {
        if !out.status.success() {
            return Err(io::Error::other(format!(
                "proc-train worker rank {rank} exited with {}",
                out.status
            )));
        }
    }
    let summary = String::from_utf8_lossy(&outputs[0].stdout)
        .trim()
        .to_string();
    if summary.is_empty() {
        return Err(io::Error::other("proc-train rank 0 produced no summary"));
    }
    Ok(summary)
}

/// Outcome of a proc-fabric elastic trial: rank 0's summary line plus
/// the restore blob the survivors used (for the reference run).
pub struct ProcElasticOutcome {
    /// The `elastic_summary_json` line the surviving rank 0 printed.
    pub summary: String,
    /// The checkpoint blob the survivors restored from.
    pub checkpoint: Vec<u8>,
}

/// Launcher half of the proc-fabric elastic trial: spawn the world with
/// the scenario in `KFAC_ELASTIC_*`, let the victim die cold, collect
/// the surviving rank 0's summary and the persisted restore blob. The
/// victim's deliberate exit is also status 0, so any failure is real.
pub fn run_proc_elastic(spec: &crate::elastic::ElasticSpec) -> io::Result<ProcElasticOutcome> {
    spec.validate().map_err(io::Error::other)?;
    let ckpt_path =
        std::env::temp_dir().join(format!("kfac-elastic-restore-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&ckpt_path);
    let mut env = spec.to_env();
    env.push((
        "KFAC_ELASTIC_CKPT".to_string(),
        ckpt_path.display().to_string(),
    ));
    let outputs = spawn_world(spec.world, "train-elastic", &env)?;
    for (rank, out) in outputs.iter().enumerate() {
        if !out.status.success() {
            return Err(io::Error::other(format!(
                "train-elastic worker rank {rank} exited with {}",
                out.status
            )));
        }
    }
    let summary = String::from_utf8_lossy(&outputs[0].stdout)
        .trim()
        .to_string();
    if summary.is_empty() {
        return Err(io::Error::other(
            "train-elastic rank 0 produced no summary — did the survivors recover?",
        ));
    }
    let checkpoint = crate::checkpoint::load_from_file(&ckpt_path)?;
    let _ = std::fs::remove_file(&ckpt_path);
    Ok(ProcElasticOutcome {
        summary,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| (i as f64 * 1000.0, 3e-5 + 2e-9 * i as f64 * 1000.0))
            .collect();
        let (a, b) = fit_affine(&pts);
        assert!((a - 3e-5).abs() < 1e-12, "a = {a}");
        assert!((b - 2e-9).abs() < 1e-15, "b = {b}");
    }

    #[test]
    fn crossover_from_fits() {
        // hd: 1e-5 + 4e-9 n; ring: 5e-5 + 1e-9 n → cross at n where
        // 1e-5 + 4e-9 n = 5e-5 + 1e-9 n → n = 4e-5/3e-9 ≈ 13333.
        let hd = BenchFit {
            algo: "halving-doubling".into(),
            a_s: 1e-5,
            b_s_per_byte: 4e-9,
        };
        let ring = BenchFit {
            algo: "pipelined-ring".into(),
            a_s: 5e-5,
            b_s_per_byte: 1e-9,
        };
        let n = fitted_crossover_bytes(&hd, &ring).unwrap();
        assert!((13000..14000).contains(&n), "n = {n}");
        // Ring dominating everywhere → no crossover.
        assert_eq!(fitted_crossover_bytes(&ring, &hd), None);
    }

    #[test]
    fn params_hash_detects_single_bit_flips() {
        let a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        b[1] = f32::from_bits(b[1].to_bits() ^ 1);
        assert_ne!(params_bit_hash(&a), params_bit_hash(&b));
        assert_eq!(params_bit_hash(&a), params_bit_hash(&a.clone()));
    }

    #[test]
    fn bench_json_is_parseable() {
        let outcome = BenchOutcome {
            ranks: 4,
            iters: 5,
            points: vec![BenchPoint {
                bytes: 1024,
                algo: "pipelined-ring".into(),
                seconds: 1.5e-5,
            }],
            fits: vec![BenchFit {
                algo: "pipelined-ring".into(),
                a_s: 1e-5,
                b_s_per_byte: 2e-9,
            }],
            alpha_s: 1.6e-6,
            beta_s_per_byte: 1e-9,
            crossover_bytes: 65536,
        };
        let json = outcome.to_json();
        let doc = kfac_telemetry::json::Json::parse(&json).expect("valid json");
        assert_eq!(doc.get("ranks").and_then(|v| v.as_f64()), Some(4.0));
        assert_eq!(
            doc.get("crossover_bytes").and_then(|v| v.as_f64()),
            Some(65536.0)
        );
    }
}
