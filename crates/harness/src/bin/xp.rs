//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp <experiment> [--scale smoke|quick|full] [--out results/] [--trace-out trace.json]
//!                 [--overlap [workers]] [--serve-metrics [PORT]]
//! xp all [--scale …]        # everything
//! xp list                   # available experiment ids
//! xp prom-lint FILE         # validate a Prometheus exposition snapshot
//! ```
//!
//! With `--overlap`, every training run an experiment drives goes through
//! the task-graph execution engine (`kfac-exec`) instead of the
//! sequential reference loop: per-bucket gradient allreduces and K-FAC
//! factor traffic overlap backprop on a worker pool. Results are
//! bitwise identical either way (see the `overlap` experiment).
//!
//! With `--trace-out`, every run (measured CPU training and simulator
//! projections alike) records spans into one shared telemetry registry;
//! at exit the timeline is written as Chrome trace-event JSON (open in
//! `chrome://tracing` or Perfetto) and a per-stage breakdown table with
//! p50/p95/p99 is printed to stderr.
//!
//! With `--serve-metrics`, the same registry is additionally served live
//! over localhost HTTP while the experiments run: `/metrics` in
//! Prometheus text exposition format (counters, gauges, histograms and
//! per-stage span timings, aggregated across all ranks) and `/health` as
//! the watchdog's JSON verdict (HTTP 503 when critical). A background
//! thread also refreshes the live stage table on stderr every few
//! seconds so long runs stay observable without a scraper.

use kfac_harness::experiments::{self, ALL_EXPERIMENTS};
use kfac_harness::overlap::set_default_exec;
use kfac_harness::presets::Scale;
use kfac_harness::report::append_to_file;
use kfac_harness::ExecStrategy;
use kfac_telemetry::{export, MetricsServer, Registry, Watchdog, WatchdogConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default `--serve-metrics` port when none is given.
const DEFAULT_METRICS_PORT: u16 = 9184;

/// Seconds between live stage-table refreshes while serving metrics.
const STAGE_TABLE_REFRESH_S: u64 = 10;

fn main() {
    // Proc-worker mode: when spawned by `procrun::spawn_world` the
    // rendezvous env is set, and this process is a rank, not a CLI — it
    // joins the TCP mesh and runs the assigned job (before any flag
    // parsing, so a worker never misreads launcher arguments).
    if std::env::var("KFAC_PROC_RANK").is_ok() {
        std::process::exit(kfac_harness::procrun::worker_main());
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let target = args[0].as_str();
    if target == "list" {
        println!("available experiments: {}", ALL_EXPERIMENTS.join(", "));
        return;
    }
    if target == "prom-lint" {
        run_prom_lint(&args[1..]);
        return;
    }
    if target == "bench-kernels" {
        run_bench_kernels(&args[1..]);
        return;
    }
    if target == "bench-eig" {
        run_bench_eig(&args[1..]);
        return;
    }
    if target == "bench-allreduce" {
        run_bench_allreduce(&args[1..]);
        return;
    }
    if target == "proc-train" {
        run_proc_train(&args[1..]);
        return;
    }

    let mut scale = Scale::Quick;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut serve_metrics: Option<u16> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(|s| s.as_str()).unwrap_or(""))
                    .unwrap_or_else(|| flag_error("--scale needs smoke|quick|full"));
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| flag_error("--out needs a directory")),
                ));
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                        flag_error("--trace-out needs a file path")
                    })));
            }
            "--serve-metrics" => {
                // Optional port; defaults to DEFAULT_METRICS_PORT.
                serve_metrics = Some(match args.get(i + 1).and_then(|s| s.parse::<u16>().ok()) {
                    Some(p) => {
                        i += 1;
                        p
                    }
                    None => DEFAULT_METRICS_PORT,
                });
            }
            "--overlap" => {
                // Optional worker count; defaults to 2 compute workers
                // (+ the dedicated communication worker).
                let workers = match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(w) if w >= 1 => {
                        i += 1;
                        w
                    }
                    _ => 2,
                };
                set_default_exec(ExecStrategy::Overlapped {
                    compute_workers: workers,
                });
            }
            other => flag_error(&format!("unknown flag {other}")),
        }
        i += 1;
    }

    // One registry for the whole invocation: installing it on the main
    // thread makes it ambient, so every train() the drivers launch (and
    // every simulator trace) lands on the same timeline — and the same
    // live /metrics endpoint.
    let registry = Registry::new();
    let telemetry_guard = registry.install(0);

    let mut server = None;
    let refresh_stop = Arc::new(AtomicBool::new(false));
    if let Some(port) = serve_metrics {
        let watchdog = Watchdog::new(registry.clone(), WatchdogConfig::default());
        match MetricsServer::start(registry.clone(), port, Some(watchdog)) {
            Ok(s) => {
                eprintln!(
                    "serving metrics on http://{}/metrics (health: /health)",
                    s.addr()
                );
                server = Some(s);
            }
            Err(e) => {
                eprintln!("failed to bind metrics server on port {port}: {e}");
                std::process::exit(1);
            }
        }
        // Live stage-table refresh: long runs print their per-stage
        // breakdown periodically instead of only at exit.
        let registry = registry.clone();
        let stop = Arc::clone(&refresh_stop);
        std::thread::Builder::new()
            .name("kfac-stage-refresh".into())
            .spawn(move || loop {
                for _ in 0..STAGE_TABLE_REFRESH_S * 4 {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(250));
                }
                let events = registry.events();
                if !events.is_empty() {
                    eprintln!("--- live stage table ---\n{}", export::stage_table(&events));
                    if let Some(footer) = export::numerics_footer(&registry) {
                        eprintln!("{footer}");
                    }
                }
            })
            .expect("spawn stage refresh thread");
    }

    let ids: Vec<&str> = if target == "all" {
        // Deduplicate aliases (table2/fig4 and table3/fig6 share drivers).
        vec![
            "table1", "table2", "fig5", "table3", "fig7", "fig8", "fig9", "table4", "table5",
            "table6", "fig10", "overlap",
        ]
    } else {
        vec![target]
    };

    for id in ids {
        eprintln!("=== running {id} (scale: {scale:?}) ===");
        let started = std::time::Instant::now();
        match experiments::run(id, scale) {
            Some(output) => {
                let md = output.to_markdown();
                println!("{md}");
                eprintln!(
                    "=== {id} done in {:.1}s ===\n",
                    started.elapsed().as_secs_f64()
                );
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.md"));
                    if let Err(e) = append_to_file(&path, &md) {
                        eprintln!("failed to write {}: {e}", path.display());
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                usage_and_exit();
            }
        }
    }

    refresh_stop.store(true, Ordering::Relaxed);
    drop(telemetry_guard);
    let events = registry.events();
    if !events.is_empty() {
        eprintln!("{}", export::stage_table(&events));
        if let Some(footer) = export::numerics_footer(&registry) {
            eprintln!("{footer}");
        }
    }
    if let Some(path) = trace_out {
        match std::fs::write(&path, export::chrome_trace(&events)) {
            Ok(()) => eprintln!(
                "wrote {} trace events to {} (open in chrome://tracing or Perfetto)",
                events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
    // Server (if any) shuts down on drop, after the final table so a
    // scraper can read the complete run.
    drop(server);
}

/// `xp prom-lint FILE` — validate a saved `/metrics` snapshot against
/// the Prometheus text exposition rules the exporter promises (HELP/TYPE
/// present, cumulative buckets monotone and capped by `+Inf`, `_count`
/// consistency). Exit 0 on a clean document, 1 with the violation
/// otherwise. CI curls `/metrics` during a smoke run and lints it here.
fn run_prom_lint(args: &[String]) {
    let [path] = args else {
        flag_error("prom-lint takes exactly one FILE argument");
    };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("failed to read {path}: {e}");
        std::process::exit(1);
    });
    match export::lint_prometheus(&text) {
        Ok(()) => {
            eprintln!("{path}: exposition OK ({} lines)", text.lines().count());
        }
        Err(e) => {
            eprintln!("{path}: exposition INVALID: {e}");
            std::process::exit(1);
        }
    }
}

/// `xp bench-kernels [--json [FILE]]` — time the packed GEMM/Gram kernels
/// against the legacy baseline on ResNet-32 and square stress shapes.
/// `--json` writes machine-readable results (default `BENCH_kernels.json`).
fn run_bench_kernels(args: &[String]) {
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_kernels.json".to_string(),
                };
                json_path = Some(PathBuf::from(path));
            }
            other => flag_error(&format!(
                "unknown flag {other} (bench-kernels takes [--json [FILE]])"
            )),
        }
        i += 1;
    }
    eprintln!(
        "=== bench-kernels (pool threads: {}) ===",
        rayon::current_num_threads()
    );
    let started = std::time::Instant::now();
    let cases = kfac_harness::benchkernels::run_all();
    print!("{}", kfac_harness::benchkernels::render_table(&cases));
    eprintln!(
        "=== bench-kernels done in {:.1}s ===",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        let json = kfac_harness::benchkernels::to_json(&cases);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `xp bench-eig [--json [FILE]]` — time the exact eigensolver backends
/// (tridiagonal QL, Jacobi) against the adaptive-rank randomized backend
/// on every ResNet-32 factor dimension plus ≥512 square stress dims.
/// `--json` writes machine-readable results (default `BENCH_eig.json`).
fn run_bench_eig(args: &[String]) {
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_eig.json".to_string(),
                };
                json_path = Some(PathBuf::from(path));
            }
            other => flag_error(&format!(
                "unknown flag {other} (bench-eig takes [--json [FILE]])"
            )),
        }
        i += 1;
    }
    eprintln!(
        "=== bench-eig (pool threads: {}) ===",
        rayon::current_num_threads()
    );
    let started = std::time::Instant::now();
    let cases = kfac_harness::bencheig::run_all();
    print!("{}", kfac_harness::bencheig::render_table(&cases));
    eprintln!(
        "=== bench-eig done in {:.1}s ===",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        let json = kfac_harness::bencheig::to_json(&cases);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `xp bench-allreduce [--ranks N] [--iters K] [--json [FILE]]` —
/// measure ProcComm allreduce latency per algorithm across message sizes
/// on a real multi-process world, fit the α/β link model, and locate the
/// halving/doubling↔pipelined-ring crossover. `--json` writes the
/// machine-readable document (default `BENCH_allreduce.json`) that
/// `kfac-cluster`'s calibration consumes.
fn run_bench_allreduce(args: &[String]) {
    let mut ranks = 4usize;
    let mut iters = kfac_harness::procrun::DEFAULT_BENCH_ITERS;
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ranks" => {
                i += 1;
                ranks = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r >= 1)
                    .unwrap_or_else(|| flag_error("--ranks needs a positive integer"));
            }
            "--iters" => {
                i += 1;
                iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| flag_error("--iters needs a positive integer"));
            }
            "--json" => {
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_allreduce.json".to_string(),
                };
                json_path = Some(PathBuf::from(path));
            }
            other => flag_error(&format!(
                "unknown flag {other} (bench-allreduce takes [--ranks N] [--iters K] [--json [FILE]])"
            )),
        }
        i += 1;
    }
    let started = std::time::Instant::now();
    let outcome = kfac_harness::procrun::run_bench_allreduce(
        ranks,
        iters,
        kfac_harness::procrun::DEFAULT_BENCH_BYTES,
    )
    .unwrap_or_else(|e| {
        eprintln!("bench-allreduce failed: {e}");
        std::process::exit(1);
    });
    print!("{}", outcome.render_table());
    eprintln!(
        "=== bench-allreduce done in {:.1}s ===",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        match std::fs::write(&path, outcome.to_json()) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `xp proc-train [--ranks N]` — the 4-process K-FAC CIFAR demo: spawn N
/// worker processes over the TCP fabric and print rank 0's trajectory
/// summary (bitwise comparable to the in-process ThreadComm run; the
/// `proc_train` integration test pins the equality).
fn run_proc_train(args: &[String]) {
    let mut ranks = 4usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ranks" => {
                i += 1;
                ranks = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r >= 1)
                    .unwrap_or_else(|| flag_error("--ranks needs a positive integer"));
            }
            other => flag_error(&format!(
                "unknown flag {other} (proc-train takes [--ranks N])"
            )),
        }
        i += 1;
    }
    match kfac_harness::procrun::run_proc_train(ranks) {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("proc-train failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Uniform flag-error path: say what was wrong, show usage, exit 2.
fn flag_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    usage_and_exit();
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: xp <experiment|all|list|bench-kernels|bench-eig|bench-allreduce|proc-train|prom-lint FILE> \
         [--scale smoke|quick|full] [--out DIR] [--trace-out FILE] [--overlap [WORKERS]] \
         [--serve-metrics [PORT]] [--json [FILE]] [--ranks N] [--iters K]\n\
         experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}
