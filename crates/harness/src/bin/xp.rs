//! `xp` — regenerate the paper's tables and figures.
//!
//! ```text
//! xp <experiment> [--scale smoke|quick|full] [--out results/] [--trace-out trace.json]
//!                 [--overlap [workers]]
//! xp all [--scale …]        # everything
//! xp list                   # available experiment ids
//! ```
//!
//! With `--overlap`, every training run an experiment drives goes through
//! the task-graph execution engine (`kfac-exec`) instead of the
//! sequential reference loop: per-bucket gradient allreduces and K-FAC
//! factor traffic overlap backprop on a worker pool. Results are
//! bitwise identical either way (see the `overlap` experiment).
//!
//! With `--trace-out`, every run (measured CPU training and simulator
//! projections alike) records spans into one shared telemetry registry;
//! at exit the timeline is written as Chrome trace-event JSON (open in
//! `chrome://tracing` or Perfetto) and a per-stage breakdown table with
//! p50/p95/p99 is printed to stderr.

use kfac_harness::experiments::{self, ALL_EXPERIMENTS};
use kfac_harness::overlap::set_default_exec;
use kfac_harness::presets::Scale;
use kfac_harness::report::append_to_file;
use kfac_harness::ExecStrategy;
use kfac_telemetry::{export, Registry};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let target = args[0].as_str();
    if target == "list" {
        println!("available experiments: {}", ALL_EXPERIMENTS.join(", "));
        return;
    }
    if target == "bench-kernels" {
        run_bench_kernels(&args[1..]);
        return;
    }

    let mut scale = Scale::Quick;
    let mut out_dir: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = Scale::parse(args.get(i).map(|s| s.as_str()).unwrap_or("")).unwrap_or_else(
                    || {
                        eprintln!("invalid --scale (smoke|quick|full)");
                        std::process::exit(2);
                    },
                );
            }
            "--out" => {
                i += 1;
                out_dir = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                })));
            }
            "--trace-out" => {
                i += 1;
                trace_out = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--trace-out needs a file path");
                    std::process::exit(2);
                })));
            }
            "--overlap" => {
                // Optional worker count; defaults to 2 compute workers
                // (+ the dedicated communication worker).
                let workers = match args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    Some(w) if w >= 1 => {
                        i += 1;
                        w
                    }
                    _ => 2,
                };
                set_default_exec(ExecStrategy::Overlapped {
                    compute_workers: workers,
                });
            }
            other => {
                eprintln!("unknown flag {other}");
                usage_and_exit();
            }
        }
        i += 1;
    }

    // One registry for the whole invocation: installing it on the main
    // thread makes it ambient, so every train() the drivers launch (and
    // every simulator trace) lands on the same timeline.
    let registry = Registry::new();
    let telemetry_guard = registry.install(0);

    let ids: Vec<&str> = if target == "all" {
        // Deduplicate aliases (table2/fig4 and table3/fig6 share drivers).
        vec![
            "table1", "table2", "fig5", "table3", "fig7", "fig8", "fig9", "table4", "table5",
            "table6", "fig10", "overlap",
        ]
    } else {
        vec![target]
    };

    for id in ids {
        eprintln!("=== running {id} (scale: {scale:?}) ===");
        let started = std::time::Instant::now();
        match experiments::run(id, scale) {
            Some(output) => {
                let md = output.to_markdown();
                println!("{md}");
                eprintln!(
                    "=== {id} done in {:.1}s ===\n",
                    started.elapsed().as_secs_f64()
                );
                if let Some(dir) = &out_dir {
                    let path = dir.join(format!("{id}.md"));
                    if let Err(e) = append_to_file(&path, &md) {
                        eprintln!("failed to write {}: {e}", path.display());
                    }
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'");
                usage_and_exit();
            }
        }
    }

    drop(telemetry_guard);
    let events = registry.events();
    if !events.is_empty() {
        eprintln!("{}", export::stage_table(&events));
    }
    if let Some(path) = trace_out {
        match std::fs::write(&path, export::chrome_trace(&events)) {
            Ok(()) => eprintln!(
                "wrote {} trace events to {} (open in chrome://tracing or Perfetto)",
                events.len(),
                path.display()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// `xp bench-kernels [--json [FILE]]` — time the packed GEMM/Gram kernels
/// against the legacy baseline on ResNet-32 and square stress shapes.
/// `--json` writes machine-readable results (default `BENCH_kernels.json`).
fn run_bench_kernels(args: &[String]) {
    let mut json_path: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                let path = match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        i += 1;
                        p.clone()
                    }
                    _ => "BENCH_kernels.json".to_string(),
                };
                json_path = Some(PathBuf::from(path));
            }
            other => {
                eprintln!("unknown flag {other} (bench-kernels takes [--json [FILE]])");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    eprintln!(
        "=== bench-kernels (pool threads: {}) ===",
        rayon::current_num_threads()
    );
    let started = std::time::Instant::now();
    let cases = kfac_harness::benchkernels::run_all();
    print!("{}", kfac_harness::benchkernels::render_table(&cases));
    eprintln!(
        "=== bench-kernels done in {:.1}s ===",
        started.elapsed().as_secs_f64()
    );
    if let Some(path) = json_path {
        let json = kfac_harness::benchkernels::to_json(&cases);
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: xp <experiment|all|list|bench-kernels> [--scale smoke|quick|full] [--out DIR] \
         [--trace-out FILE] [--overlap [WORKERS]] [--json [FILE]]\n\
         experiments: {}",
        ALL_EXPERIMENTS.join(", ")
    );
    std::process::exit(2);
}
