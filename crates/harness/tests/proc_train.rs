//! The PR's acceptance criterion, end to end: a 4-process `ProcComm`
//! K-FAC CIFAR run driven through the `xp` binary produces the same loss
//! trajectory — bitwise — as the 4-rank `ThreadComm` run. Also covers
//! the in-process proc backend (`TrainConfig::with_backend`) and the
//! overlapped executor over the TCP fabric.

use kfac_collectives::CommBackend;
use kfac_harness::procrun::{
    cifar_demo_config, cifar_demo_data, cifar_demo_model, params_bit_hash,
};
use kfac_harness::{train, ExecStrategy};
use kfac_telemetry::json::Json;
use std::process::Command;

/// In-process check: the same `train()` call on the thread fabric and on
/// the TCP proc fabric yields bit-identical losses and final weights.
#[test]
fn proc_backend_train_matches_thread_backend_bitwise() {
    let (train_ds, val_ds) = cifar_demo_data();
    let cfg = cifar_demo_config(4);
    let reference = train(cifar_demo_model, &train_ds, &val_ds, &cfg);

    let proc_cfg = cfg.clone().with_backend(CommBackend::Proc);
    let got = train(cifar_demo_model, &train_ds, &val_ds, &proc_cfg);

    assert_eq!(reference.epochs.len(), got.epochs.len());
    for (r, g) in reference.epochs.iter().zip(&got.epochs) {
        assert_eq!(
            r.train_loss.to_bits(),
            g.train_loss.to_bits(),
            "epoch {} loss diverges across fabrics",
            r.epoch
        );
        assert_eq!(r.val_acc.to_bits(), g.val_acc.to_bits());
    }
    assert_eq!(
        reference.final_params, got.final_params,
        "final weights diverge across fabrics"
    );
}

/// The overlapped task-graph executor drives its collectives through a
/// dedicated in-order comm worker; over the proc fabric it must still
/// reproduce the sequential thread-fabric oracle bit for bit.
#[test]
fn overlapped_exec_over_proc_fabric_matches_sequential_oracle() {
    let (train_ds, val_ds) = cifar_demo_data();
    let cfg = cifar_demo_config(2);
    let reference = train(cifar_demo_model, &train_ds, &val_ds, &cfg);

    let overlapped_proc = cfg
        .clone()
        .with_backend(CommBackend::Proc)
        .with_exec(ExecStrategy::Overlapped { compute_workers: 2 });
    let got = train(cifar_demo_model, &train_ds, &val_ds, &overlapped_proc);

    assert_eq!(reference.final_params, got.final_params);
    for (r, g) in reference.epochs.iter().zip(&got.epochs) {
        assert_eq!(r.train_loss.to_bits(), g.train_loss.to_bits());
    }
}

/// True multi-process check: spawn `xp proc-train --ranks 4` (four OS
/// processes, localhost TCP mesh) and compare its reported trajectory
/// against the in-process ThreadComm run of the identical config.
#[test]
fn spawned_proc_train_matches_thread_trajectory_bitwise() {
    let out = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(["proc-train", "--ranks", "4"])
        .output()
        .expect("spawn xp proc-train");
    assert!(
        out.status.success(),
        "xp proc-train failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let summary_line = stdout
        .lines()
        .find(|l| l.trim_start().starts_with('{'))
        .unwrap_or_else(|| panic!("no summary JSON in output: {stdout:?}"));
    let summary = Json::parse(summary_line.trim()).expect("summary parses as JSON");

    let (train_ds, val_ds) = cifar_demo_data();
    let cfg = cifar_demo_config(4);
    let reference = train(cifar_demo_model, &train_ds, &val_ds, &cfg);

    let losses = summary
        .get("train_loss")
        .and_then(|v| v.as_arr())
        .expect("train_loss array");
    assert_eq!(losses.len(), reference.epochs.len());
    for (got, want) in losses.iter().zip(&reference.epochs) {
        // `{:?}` f64 repr round-trips exactly through the JSON parser, so
        // bit equality here means the worker processes computed the very
        // same trajectory over TCP.
        assert_eq!(
            got.as_f64().map(f64::to_bits),
            Some(want.train_loss.to_bits()),
            "epoch {} loss diverges between xp proc-train and ThreadComm",
            want.epoch
        );
    }
    let hash = summary
        .get("params_hash")
        .and_then(|v| v.as_str())
        .expect("params_hash field");
    assert_eq!(
        hash,
        format!("{:016x}", params_bit_hash(&reference.final_params)),
        "final weights diverge between xp proc-train and ThreadComm"
    );
}
