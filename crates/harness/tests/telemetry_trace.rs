//! Integration: a 4-rank CIFAR smoke run must leave a complete, valid
//! telemetry trail — per-rank per-iteration spans with the expected
//! names, byte-tagged collectives, a parseable Chrome trace, and a
//! stage breakdown that accounts for the measured wall time.

use kfac::KfacConfig;
use kfac_data::synthetic_cifar;
use kfac_harness::trainer::{train, TrainConfig};
use kfac_nn::resnet::resnet_cifar;
use kfac_nn::Sequential;
use kfac_optim::LrSchedule;
use kfac_telemetry::{export, AttrValue, Registry};
use kfac_tensor::Rng64;

fn build(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

fn run_4rank_smoke() -> (kfac_harness::trainer::TrainResult, Registry) {
    let (train_ds, val_ds) = synthetic_cifar(8, 256, 64, 17);
    let registry = Registry::new();
    let cfg = TrainConfig {
        telemetry: Some(registry.clone()),
        ..TrainConfig::new(
            4,
            16,
            2,
            LrSchedule {
                warmup_epochs: 1.0,
                ..LrSchedule::paper_steps(0.1, vec![1])
            },
        )
    }
    .with_kfac(KfacConfig {
        update_freq: 4,
        damping: 0.1,
        ..KfacConfig::default()
    });
    let result = train(build, &train_ds, &val_ds, &cfg);
    (result, registry)
}

#[test]
fn four_rank_run_traces_every_stage_on_every_rank() {
    let (result, registry) = run_4rank_smoke();
    let events = registry.events();
    assert!(!events.is_empty(), "training must record spans");

    // 256 samples / (4 ranks × batch 16) = 4 iterations/epoch × 2 epochs.
    let iters_per_rank = 8;
    let expected = [
        "train/iteration",
        "train/forward",
        "train/backward",
        "train/grad_allreduce",
        "train/kfac_step",
        "train/opt_step",
    ];
    for rank in 0..4 {
        for name in expected {
            let n = events
                .iter()
                .filter(|e| e.rank == rank && e.name == name)
                .count();
            assert_eq!(
                n, iters_per_rank,
                "rank {rank} should record {iters_per_rank} `{name}` spans, got {n}"
            );
        }
        // K-FAC stages fired: factor updates every iteration here
        // (update_freq 4 → factor interval 1), eig on iterations 0 and 4.
        assert!(
            events
                .iter()
                .any(|e| e.rank == rank && e.name == "kfac/eig_comp"),
            "rank {rank} missing eigendecomposition spans"
        );
        assert!(
            events
                .iter()
                .any(|e| e.rank == rank && e.name == "kfac/precond"),
            "rank {rank} missing preconditioning spans"
        );
    }

    // Collectives carry non-zero byte tags with a traffic class.
    let allreduces: Vec<_> = events
        .iter()
        .filter(|e| e.name == "comm/allreduce")
        .collect();
    assert!(!allreduces.is_empty());
    for e in &allreduces {
        match e.attr("bytes") {
            Some(&AttrValue::U64(b)) => assert!(b > 0, "allreduce tagged with zero bytes"),
            other => panic!("allreduce missing byte tag: {other:?}"),
        }
        assert!(e.attr("class").is_some(), "allreduce missing traffic class");
    }

    // The preconditioner's stats view agrees with the registry.
    let stats = result.stage_stats.expect("kfac run has stage stats");
    assert_eq!(stats.steps, iters_per_rank as u64);
    let precond_total = registry.span_agg("kfac/precond", Some(0)).total;
    assert_eq!(stats.precond, precond_total);
}

#[test]
fn four_rank_trace_exports_and_accounts_for_wall_time() {
    let (_result, registry) = run_4rank_smoke();
    let events = registry.events();

    // Chrome trace: well-formed JSON with all four rank lanes.
    let trace = export::chrome_trace(&events);
    let parsed = kfac_telemetry::json::Json::parse(&trace).expect("valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(trace_events.len() > events.len(), "X events plus metadata");
    for rank in 0..4u32 {
        assert!(
            trace_events.iter().any(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("tid").and_then(|t| t.as_f64()) == Some(f64::from(rank))
            }),
            "rank {rank} has no lane in the Chrome trace"
        );
    }

    // Stage accounting: summed top-level spans (setup + iterations +
    // eval) must explain each rank's measured wall clock to within 5% —
    // only inter-span instruction gaps are untraced.
    let wall = export::wall_time(&events);
    let iter_agg = registry.span_agg("train/iteration", Some(0));
    assert!(iter_agg.total <= wall, "busy time cannot exceed wall time");
    for rank in 0..4 {
        let lane: Vec<_> = events
            .iter()
            .filter(|e| e.rank == rank && e.depth == 0)
            .collect();
        let busy_us: u64 = lane.iter().map(|e| e.dur_us).sum();
        let start = lane.iter().map(|e| e.start_us).min().unwrap();
        let end = lane.iter().map(|e| e.end_us()).max().unwrap();
        let lane_wall_us = end - start;
        assert!(
            busy_us as f64 >= 0.95 * lane_wall_us as f64,
            "rank {rank}: stage spans cover {busy_us} of {lane_wall_us} µs (<95%)"
        );
    }
}
