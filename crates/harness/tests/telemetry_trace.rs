//! Integration: a 4-rank CIFAR smoke run must leave a complete, valid
//! telemetry trail — per-rank per-iteration spans with the expected
//! names, byte-tagged collectives, a parseable Chrome trace, a stage
//! breakdown that accounts for the measured wall time, and a `/metrics`
//! snapshot that aggregates every rank's counters and histograms.

use kfac::KfacConfig;
use kfac_data::synthetic_cifar;
use kfac_harness::trainer::{train, TrainConfig};
use kfac_nn::resnet::resnet_cifar;
use kfac_nn::Sequential;
use kfac_optim::LrSchedule;
use kfac_telemetry::{export, AttrValue, MetricsServer, Registry, Watchdog, WatchdogConfig};
use kfac_tensor::Rng64;
use std::io::{Read, Write};

fn build(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    resnet_cifar(1, 4, 10, 3, &mut rng)
}

fn run_4rank_smoke() -> (kfac_harness::trainer::TrainResult, Registry) {
    let (train_ds, val_ds) = synthetic_cifar(8, 256, 64, 17);
    let registry = Registry::new();
    let cfg = TrainConfig {
        telemetry: Some(registry.clone()),
        ..TrainConfig::new(
            4,
            16,
            2,
            LrSchedule {
                warmup_epochs: 1.0,
                ..LrSchedule::paper_steps(0.1, vec![1])
            },
        )
    }
    .with_kfac(KfacConfig {
        update_freq: 4,
        damping: 0.1,
        ..KfacConfig::default()
    });
    let result = train(build, &train_ds, &val_ds, &cfg);
    (result, registry)
}

#[test]
fn four_rank_run_traces_every_stage_on_every_rank() {
    let (result, registry) = run_4rank_smoke();
    let events = registry.events();
    assert!(!events.is_empty(), "training must record spans");

    // 256 samples / (4 ranks × batch 16) = 4 iterations/epoch × 2 epochs.
    let iters_per_rank = 8;
    let expected = [
        "train/iteration",
        "train/forward",
        "train/backward",
        "train/grad_allreduce",
        "train/kfac_step",
        "train/opt_step",
    ];
    for rank in 0..4 {
        for name in expected {
            let n = events
                .iter()
                .filter(|e| e.rank == rank && e.name == name)
                .count();
            assert_eq!(
                n, iters_per_rank,
                "rank {rank} should record {iters_per_rank} `{name}` spans, got {n}"
            );
        }
        // K-FAC stages fired: factor updates every iteration here
        // (update_freq 4 → factor interval 1), eig on iterations 0 and 4.
        assert!(
            events
                .iter()
                .any(|e| e.rank == rank && e.name == "kfac/eig_comp"),
            "rank {rank} missing eigendecomposition spans"
        );
        assert!(
            events
                .iter()
                .any(|e| e.rank == rank && e.name == "kfac/precond"),
            "rank {rank} missing preconditioning spans"
        );
    }

    // Collectives carry non-zero byte tags with a traffic class.
    let allreduces: Vec<_> = events
        .iter()
        .filter(|e| e.name == "comm/allreduce")
        .collect();
    assert!(!allreduces.is_empty());
    for e in &allreduces {
        match e.attr("bytes") {
            Some(&AttrValue::U64(b)) => assert!(b > 0, "allreduce tagged with zero bytes"),
            other => panic!("allreduce missing byte tag: {other:?}"),
        }
        assert!(e.attr("class").is_some(), "allreduce missing traffic class");
    }

    // The preconditioner's stats view agrees with the registry.
    let stats = result.stage_stats.expect("kfac run has stage stats");
    assert_eq!(stats.steps, iters_per_rank as u64);
    let precond_total = registry.span_agg("kfac/precond", Some(0)).total;
    assert_eq!(stats.precond, precond_total);
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to metrics server");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let status = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The registry's mirrored traffic counters must equal the merge of all
/// per-rank counters — witnessed by the communicator's own group-wide
/// accumulator — even when payload sizes differ across ranks.
#[test]
fn registry_merge_equals_group_traffic() {
    let registry = Registry::new();
    let comms = kfac_collectives::ThreadComm::create(4);
    let registry_ref = &registry;
    let group = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| {
                s.spawn(move || {
                    use kfac_collectives::{Communicator, ReduceOp, TrafficClass};
                    let _guard = registry_ref.install(rank);
                    // Symmetric gradient traffic, asymmetric eigen
                    // payloads (like the round-robin eig allgather).
                    let mut buf = vec![1.0f32; 64];
                    comm.allreduce_tagged(&mut buf, ReduceOp::Average, TrafficClass::Gradient);
                    let payload = vec![rank as f32; 8 * (rank + 1)];
                    let _ = comm.allgather_tagged(&payload, TrafficClass::Eigen);
                    comm
                })
            })
            .collect();
        let comms: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        comms[0].group_traffic()
    });
    assert!(group.eigen_bytes > 0 && group.gradient_bytes > 0);
    assert_eq!(
        registry.counter("comm/bytes/gradient").get(),
        group.gradient_bytes
    );
    assert_eq!(
        registry.counter("comm/bytes/eigen").get(),
        group.eigen_bytes
    );
    assert_eq!(registry.counter("comm/ops").get(), group.ops);
}

/// Satellite: the shared registry merges every rank's counters and
/// histograms, so the `/metrics` snapshot equals the per-rank sums —
/// and the live HTTP endpoints serve it in lintable exposition format.
#[test]
fn metrics_snapshot_aggregates_all_ranks_and_serves_http() {
    let (result, registry) = run_4rank_smoke();

    // Every rank records symmetric collective traffic (same model, same
    // batch shape, same schedule), and each rank mirrors its own ops
    // into the shared registry — so registry totals must equal
    // 4 × rank 0's per-rank traffic snapshot, i.e. the merge of the
    // per-rank counters.
    let counter = |name: &str| registry.counter(name).get();
    let t = result.traffic;
    assert_eq!(counter("comm/bytes/gradient"), 4 * t.gradient_bytes);
    assert_eq!(counter("comm/bytes/factor"), 4 * t.factor_bytes);
    assert_eq!(counter("comm/ops"), 4 * t.ops);
    // Eigen allgather payloads differ per rank (round-robin eig
    // placement), so the group total is not 4 × rank 0's; it must still
    // be positive and is pinned exactly by `registry_merge_equals_group_traffic`.
    assert!(counter("comm/bytes/eigen") > 0);

    // Iteration-time histogram: one sample per iteration per rank.
    let iters_total = 4 * 8;
    let hist = registry.histogram("train/iter_time_us");
    assert_eq!(hist.count(), iters_total);

    // K-FAC numerics probes landed: per-layer spectrum gauges, the
    // damping/clip trajectory, and staleness.
    let gauges = registry.gauges();
    let has = |name: &str| gauges.iter().any(|(n, v)| n == name && v.is_finite());
    for name in [
        "kfac/damping",
        "kfac/kl_nu",
        "kfac/staleness_age",
        "kfac/precond_ratio",
        "kfac/max_cond",
        "kfac/layer0/a_cond",
        "kfac/layer0/g_lambda_max",
    ] {
        assert!(has(name), "missing probe gauge `{name}`");
    }
    assert!(
        registry.histogram("kfac/cond").count() > 0,
        "condition-number histogram empty"
    );

    // The exposition is valid Prometheus text format…
    let text = export::prometheus(&registry);
    export::lint_prometheus(&text).expect("exposition lints clean");
    assert!(text.contains("kfac_stage_count{stage="));

    // …and the live server returns the same registry over HTTP, with a
    // healthy watchdog verdict (the heartbeat gauge is fresh).
    let watchdog = Watchdog::new(registry.clone(), WatchdogConfig::default());
    let server =
        MetricsServer::start(registry.clone(), 0, Some(watchdog)).expect("bind ephemeral port");
    let (status, body) = http_get(server.addr(), "/metrics");
    assert_eq!(status, 200);
    export::lint_prometheus(&body).expect("served exposition lints clean");
    assert!(body.contains("comm_bytes_gradient"));
    let (status, body) = http_get(server.addr(), "/health");
    assert_eq!(status, 200, "watchdog should be healthy: {body}");
    assert!(
        body.contains("\"status\": \"ok\""),
        "unexpected health: {body}"
    );
}

#[test]
fn four_rank_trace_exports_and_accounts_for_wall_time() {
    let (_result, registry) = run_4rank_smoke();
    let events = registry.events();

    // Chrome trace: well-formed JSON with all four rank lanes.
    let trace = export::chrome_trace(&events);
    let parsed = kfac_telemetry::json::Json::parse(&trace).expect("valid JSON");
    let trace_events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(trace_events.len() > events.len(), "X events plus metadata");
    for rank in 0..4u32 {
        assert!(
            trace_events.iter().any(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("tid").and_then(|t| t.as_f64()) == Some(f64::from(rank))
            }),
            "rank {rank} has no lane in the Chrome trace"
        );
    }

    // Stage accounting: summed top-level spans (setup + iterations +
    // eval) must explain each rank's measured wall clock to within 5% —
    // only inter-span instruction gaps are untraced.
    let wall = export::wall_time(&events);
    let iter_agg = registry.span_agg("train/iteration", Some(0));
    assert!(iter_agg.total <= wall, "busy time cannot exceed wall time");
    for rank in 0..4 {
        let lane: Vec<_> = events
            .iter()
            .filter(|e| e.rank == rank && e.depth == 0)
            .collect();
        let busy_us: u64 = lane.iter().map(|e| e.dur_us).sum();
        let start = lane.iter().map(|e| e.start_us).min().unwrap();
        let end = lane.iter().map(|e| e.end_us()).max().unwrap();
        let lane_wall_us = end - start;
        assert!(
            busy_us as f64 >= 0.95 * lane_wall_us as f64,
            "rank {rank}: stage spans cover {busy_us} of {lane_wall_us} µs (<95%)"
        );
    }
}
