//! Chaos regression over the TCP fabric: the existing timeout and
//! rank-loss `FaultPlan`s, run through `FaultyCommunicator<ProcComm>`,
//! must land on exactly the same degradation-ladder rungs as the same
//! plans over `ThreadComm` — same per-iteration outcomes, same
//! degradation counters, and (because both fabrics reduce in the same
//! pinned order) bitwise-identical parameters.
//!
//! Fault decisions are pure functions of `(seed, op_index)` evaluated in
//! the wrapper *before* the inner communicator is touched, so a clean
//! fabric swap underneath is exactly what the design promises — this
//! test pins that promise.

use kfac::{Kfac, KfacConfig};
use kfac_collectives::proc::ProcComm;
use kfac_collectives::{
    Communicator, FaultPlan, FaultPlanConfig, FaultyCommunicator, RetryPolicy, ThreadComm,
    TrafficClass,
};
use kfac_harness::{FaultTolerance, ResilientTrainer, StepOutcome};
use kfac_nn::{CrossEntropyLoss, Layer, Linear, Sequential};
use kfac_optim::Sgd;
use kfac_tensor::{Rng64, Tensor4};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const WORLD: usize = 4;
const ITERS: usize = 8;

fn model(seed: u64) -> Sequential {
    let mut rng = Rng64::new(seed);
    Sequential::from_layers(vec![
        Box::new(Linear::new("fc1", 6, 5, true, &mut rng)),
        Box::new(Linear::new("fc2", 5, 4, true, &mut rng)),
    ])
}

fn batch(round: usize) -> (Tensor4, Vec<usize>) {
    let mut rng = Rng64::new(7 + round as u64);
    let x = Tensor4::from_vec(4, 6, 1, 1, (0..24).map(|_| rng.normal_f32()).collect());
    (x, vec![0, 1, 2, 3])
}

/// Everything that characterizes where one rank landed on the ladder.
#[derive(Debug, PartialEq)]
struct LadderTrace {
    /// Per-iteration outcome; `lost:<r>` truncates the run.
    outcomes: Vec<String>,
    skipped: u64,
    comm_faults: u64,
    stale_factor_steps: u64,
    /// Final parameter bits at the end (or abort point) of the run.
    param_bits: Vec<u32>,
}

/// Drive `ITERS` resilient iterations on every rank of `comms` under
/// `plan` and record each rank's ladder trace.
fn run_ladder<C: Communicator + Send>(
    comms: Vec<C>,
    plan: &Arc<FaultPlan>,
    ft: FaultTolerance,
) -> Vec<LadderTrace> {
    let ft = &ft;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                s.spawn(move || {
                    let mut m = model(3);
                    let mut opt = Sgd::new(0.9, 1e-4);
                    let mut k = Some(Kfac::new(
                        &mut m,
                        KfacConfig {
                            update_freq: 2,
                            ..KfacConfig::default()
                        },
                    ));
                    let criterion = CrossEntropyLoss::new();
                    let mut tr = ResilientTrainer::new(*ft);
                    let faulty = FaultyCommunicator::new(comm, Arc::clone(plan));
                    let mut outcomes = Vec::with_capacity(ITERS);
                    for round in 0..ITERS {
                        let (x, labels) = batch(round);
                        let (loss, outcome) = tr.step(
                            &mut m, &mut k, &mut opt, &faulty, &x, &labels, &criterion, 0.05,
                        );
                        assert!(loss.is_finite());
                        match outcome {
                            StepOutcome::Stepped => outcomes.push("step".to_string()),
                            StepOutcome::SkippedStep => outcomes.push("skip".to_string()),
                            StepOutcome::RankLost(r) => {
                                outcomes.push(format!("lost:{r}"));
                                break;
                            }
                        }
                    }
                    let stats = k.as_ref().map(|kf| kf.stats()).unwrap_or_default();
                    let mut param_bits = Vec::new();
                    m.visit_params("", &mut |_, w, _| {
                        param_bits.extend(w.iter().map(|v| v.to_bits()))
                    });
                    LadderTrace {
                        outcomes,
                        skipped: tr.skipped_steps,
                        comm_faults: tr.comm_faults,
                        stale_factor_steps: stats.stale_factor_steps,
                        param_bits,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn fast_retry(max_attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    }
}

/// Run one plan over both fabrics and require identical ladder traces.
fn assert_fabrics_agree(cfg: FaultPlanConfig, ft: FaultTolerance) -> Vec<LadderTrace> {
    let plan = Arc::new(FaultPlan::new(cfg, WORLD));
    let thread_traces = run_ladder(ThreadComm::create(WORLD), &plan, ft);
    let proc_traces = run_ladder(ProcComm::create_local(WORLD), &plan, ft);
    assert_eq!(
        thread_traces, proc_traces,
        "the same fault plan landed on different ladder rungs across fabrics"
    );
    // Lockstep degradation: replicas agree within each fabric too.
    for t in &thread_traces[1..] {
        assert_eq!(t.param_bits, thread_traces[0].param_bits);
    }
    thread_traces
}

/// The chaos driver's K-FAC timeout plan (seed 23): long outages on
/// factor/eigen traffic degrade to stale factors on both fabrics, with
/// gradient traffic untouched (no skipped steps, all steps land).
#[test]
fn timeout_plan_degrades_identically_on_both_fabrics() {
    let traces = assert_fabrics_agree(
        FaultPlanConfig {
            seed: 23,
            timeout_prob: 0.3,
            timeout_ops: 30,
            classes: vec![TrafficClass::Factor, TrafficClass::Eigen],
            ..FaultPlanConfig::default()
        },
        FaultTolerance {
            retry: fast_retry(2),
            ..FaultTolerance::default()
        },
    );
    for t in &traces {
        assert!(
            t.comm_faults > 0 || t.stale_factor_steps > 0,
            "plan injected nothing — weak regression"
        );
        assert_eq!(t.skipped, 0, "gradient traffic was untouched");
        assert!(t.outcomes.iter().all(|o| o == "step"));
    }
}

/// The chaos driver's rank-loss plan (seed 25): the permanent loss of
/// rank 2 aborts every rank at the same iteration on both fabrics.
#[test]
fn rank_loss_plan_aborts_identically_on_both_fabrics() {
    let traces = assert_fabrics_agree(
        FaultPlanConfig {
            seed: 25,
            rank_loss_at: Some((3 * ITERS as u64 / 2, 2)),
            ..FaultPlanConfig::default()
        },
        FaultTolerance::default(),
    );
    for t in &traces {
        let last = t.outcomes.last().expect("at least one iteration ran");
        assert_eq!(last, "lost:2", "run must abort on the planned rank loss");
        assert!(
            t.outcomes.len() < ITERS,
            "abort must truncate the iteration budget"
        );
    }
}

/// Retry-healed transients leave zero residue on the proc fabric, same
/// as on threads: the faulty run is bitwise identical to a clean one.
#[test]
fn transient_plan_heals_bitwise_on_proc_fabric() {
    let ft = FaultTolerance {
        retry: fast_retry(10),
        ..FaultTolerance::default()
    };
    let clean_plan = Arc::new(FaultPlan::new(FaultPlanConfig::default(), WORLD));
    let clean = run_ladder(ProcComm::create_local(WORLD), &clean_plan, ft);
    let faulty_plan = Arc::new(FaultPlan::new(
        FaultPlanConfig {
            seed: 22,
            transient_prob: 0.15,
            transient_ops: 2,
            ..FaultPlanConfig::default()
        },
        WORLD,
    ));
    let faulty = run_ladder(ProcComm::create_local(WORLD), &faulty_plan, ft);
    for (c, f) in clean.iter().zip(&faulty) {
        assert_eq!(
            c.param_bits, f.param_bits,
            "retried transients left a residue over TCP"
        );
        assert_eq!(f.skipped, 0);
    }
}
