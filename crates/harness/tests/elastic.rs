//! Regression pin for shrink-world recovery: killing one rank of a
//! 4-way K-FAC CIFAR group mid-run and resuming on the 3 survivors
//! (epoch-fenced view, checkpoint restore, re-derived batch plan and
//! factor assignment) must reproduce — bitwise — a from-scratch 3-rank
//! group restored from the same checkpoint blob.
//!
//! The thread-fabric scenario runs in-process here. The proc-fabric
//! scenario (cold process exit, EOF/heartbeat detection) is driven
//! through the spawned `xp` binary, exactly as CI's
//! `xp elastic --scale smoke` does.

use kfac_harness::elastic::{demo_data, run_reference, run_thread_trial, ElasticSpec};
use std::process::Command;

fn small_spec() -> ElasticSpec {
    ElasticSpec {
        world: 4,
        iters: 6,
        kill_step: 3,
        kill_rank: 2,
        checkpoint_every: 2,
    }
}

/// The acceptance criterion on the thread fabric: survivor trajectory
/// ≡ shrunken-world reference, bit for bit.
#[test]
fn shrink_world_resume_matches_reference_bitwise() {
    let spec = small_spec();
    let train_ds = demo_data();
    let trial = run_thread_trial(&spec, &train_ds, None);

    // The kill at step 3 with checkpoints every 2 restores to step 2.
    assert_eq!(trial.resumed.restore_iteration, 2);
    assert_eq!(trial.epoch, 1, "one shrink fences epoch 1");
    assert_eq!(trial.shrink_resumes, 3, "every survivor records a resume");
    assert_eq!(
        trial.resumed.post_losses.len(),
        spec.iters - trial.resumed.restore_iteration as usize
    );

    let reference = run_reference(&spec, &trial.checkpoint, &train_ds);
    assert!(
        trial.resumed.bitwise_eq(&reference),
        "post-shrink trajectory diverged from the from-scratch shrunken world"
    );
}

/// Losing a different rank (the last one) recovers just as cleanly —
/// the contiguous re-ranking is not specific to interior ranks.
#[test]
fn shrink_world_resume_survives_losing_the_last_rank() {
    let spec = ElasticSpec {
        kill_rank: 3,
        ..small_spec()
    };
    let train_ds = demo_data();
    let trial = run_thread_trial(&spec, &train_ds, None);
    let reference = run_reference(&spec, &trial.checkpoint, &train_ds);
    assert!(trial.resumed.bitwise_eq(&reference));
}

/// Full two-fabric scenario through the real `xp` binary (the proc
/// half spawns worker processes, so it needs `xp`'s dispatch). Ignored
/// by default; CI runs it explicitly.
#[test]
#[ignore = "elastic stress: spawns a process world (CI runs it)"]
fn xp_elastic_both_fabrics() {
    let out = Command::new(env!("CARGO_BIN_EXE_xp"))
        .args(["elastic", "--scale", "smoke"])
        .output()
        .expect("spawn xp elastic");
    assert!(
        out.status.success(),
        "xp elastic failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bitwise = reference"),
        "missing verification table:\n{stdout}"
    );
}
