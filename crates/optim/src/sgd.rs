//! SGD with momentum, weight decay and optional Nesterov acceleration.
//!
//! The paper's baseline optimizer and the rule that consumes K-FAC's
//! preconditioned gradients (Eq. 1 plus momentum 0.9, §VI-C1). The update
//! matches PyTorch's `torch.optim.SGD`:
//!
//! ```text
//! g ← g + wd·w
//! v ← μ·v + g
//! w ← w − lr · (g + μ·v)   (nesterov)
//! w ← w − lr · v            (classic)
//! ```

use crate::optimizer::Optimizer;
use kfac_nn::Layer;
use std::collections::HashMap;

/// Momentum SGD.
pub struct Sgd {
    momentum: f32,
    weight_decay: f32,
    nesterov: bool,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Create with the given momentum and weight decay.
    pub fn new(momentum: f32, weight_decay: f32) -> Self {
        Sgd {
            momentum,
            weight_decay,
            nesterov: false,
            velocity: HashMap::new(),
        }
    }

    /// Enable Nesterov momentum.
    pub fn nesterov(mut self) -> Self {
        self.nesterov = true;
        self
    }

    /// The paper's configuration: momentum 0.9 (§VI-C1), weight decay as
    /// given.
    pub fn paper_default(weight_decay: f32) -> Self {
        Sgd::new(0.9, weight_decay)
    }

    /// Snapshot the momentum buffers as `(param_name, velocity)` pairs,
    /// sorted by name so the encoding is deterministic. Together with
    /// the model parameters this is the optimizer's complete state —
    /// what a training checkpoint must carry to resume bitwise.
    pub fn export_state(&self) -> Vec<(String, Vec<f32>)> {
        let mut out: Vec<(String, Vec<f32>)> = self
            .velocity
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Replace the momentum buffers with a snapshot captured by
    /// [`Sgd::export_state`]. Buffers for parameters not present in the
    /// snapshot start back at zero (exactly as on first use).
    pub fn import_state(&mut self, state: Vec<(String, Vec<f32>)>) {
        self.velocity = state.into_iter().collect();
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let momentum = self.momentum;
        let weight_decay = self.weight_decay;
        let nesterov = self.nesterov;
        let velocity = &mut self.velocity;

        model.visit_params("", &mut |name, w, g| {
            let v = velocity
                .entry(name.to_string())
                .or_insert_with(|| vec![0.0; w.len()]);
            debug_assert_eq!(v.len(), w.len());
            for i in 0..w.len() {
                let grad = g[i] + weight_decay * w[i];
                v[i] = momentum * v[i] + grad;
                let upd = if nesterov {
                    grad + momentum * v[i]
                } else {
                    v[i]
                };
                w[i] -= lr * upd;
            }
        });
    }

    fn name(&self) -> &'static str {
        "SGD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::testutil::Quadratic;

    #[test]
    fn single_step_no_momentum_is_gradient_descent() {
        let mut q = Quadratic::new(1);
        let _ = q.loss_and_grad();
        // Snapshot weights and grads.
        let mut w0 = Vec::new();
        let mut g0 = Vec::new();
        q.model.visit_params("", &mut |_, w, g| {
            w0.extend_from_slice(w);
            g0.extend_from_slice(g);
        });
        let mut opt = Sgd::new(0.0, 0.0);
        opt.step(&mut q.model, 0.1);
        let mut w1 = Vec::new();
        q.model
            .visit_params("", &mut |_, w, _| w1.extend_from_slice(w));
        for ((a, b), g) in w0.iter().zip(&w1).zip(&g0) {
            assert!((b - (a - 0.1 * g)).abs() < 1e-6);
        }
    }

    #[test]
    fn converges_on_quadratic() {
        let mut q = Quadratic::new(2);
        let mut opt = Sgd::new(0.9, 0.0);
        let first = q.loss_and_grad();
        for _ in 0..200 {
            let _ = q.loss_and_grad();
            opt.step(&mut q.model, 0.02);
        }
        let last = q.loss_and_grad();
        assert!(last < 0.01 * first, "loss {first} → {last}");
    }

    #[test]
    fn momentum_accelerates() {
        let run = |momentum: f32| {
            let mut q = Quadratic::new(3);
            let mut opt = Sgd::new(momentum, 0.0);
            for _ in 0..100 {
                let _ = q.loss_and_grad();
                opt.step(&mut q.model, 0.005);
            }
            q.loss_and_grad()
        };
        assert!(run(0.9) < run(0.0), "momentum should speed up convergence");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut q = Quadratic::new(4);
        // Zero gradient contribution: loss_and_grad then zero them.
        q.model.zero_grad();
        let norm_before: f32 = {
            let mut s = 0.0;
            q.model
                .visit_params("", &mut |_, w, _| s += w.iter().map(|x| x * x).sum::<f32>());
            s
        };
        let mut opt = Sgd::new(0.0, 0.1);
        opt.step(&mut q.model, 0.5);
        let norm_after: f32 = {
            let mut s = 0.0;
            q.model
                .visit_params("", &mut |_, w, _| s += w.iter().map(|x| x * x).sum::<f32>());
            s
        };
        assert!(norm_after < norm_before);
    }

    #[test]
    fn nesterov_differs_from_classic() {
        let run = |nesterov: bool| {
            let mut q = Quadratic::new(5);
            let mut opt = if nesterov {
                Sgd::new(0.9, 0.0).nesterov()
            } else {
                Sgd::new(0.9, 0.0)
            };
            for _ in 0..5 {
                let _ = q.loss_and_grad();
                opt.step(&mut q.model, 0.01);
            }
            let mut w = Vec::new();
            q.model
                .visit_params("", &mut |_, v, _| w.extend_from_slice(v));
            w
        };
        assert_ne!(run(true), run(false));
    }
}
