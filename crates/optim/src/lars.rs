//! LARS: layer-wise adaptive rate scaling (You et al., the paper's \[1\]).
//!
//! The large-batch SGD variant the paper's related-work section builds on.
//! Per parameter tensor:
//!
//! ```text
//! local_lr = η · ‖w‖ / (‖g‖ + wd·‖w‖)
//! v ← μ·v + local_lr · (g + wd·w)
//! w ← w − lr · v
//! ```

use crate::optimizer::Optimizer;
use kfac_nn::Layer;
use kfac_tensor::ops::slice::nrm2;
use std::collections::HashMap;

/// LARS optimizer.
pub struct Lars {
    momentum: f32,
    weight_decay: f32,
    /// Trust coefficient η (typically 1e-3…1e-2).
    eta: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Lars {
    /// Create with the given momentum, weight decay and trust coefficient.
    pub fn new(momentum: f32, weight_decay: f32, eta: f32) -> Self {
        Lars {
            momentum,
            weight_decay,
            eta,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Lars {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        let (momentum, wd, eta) = (self.momentum, self.weight_decay, self.eta);
        let velocity = &mut self.velocity;

        model.visit_params("", &mut |name, w, g| {
            let w_norm = nrm2(w);
            let g_norm = nrm2(g);
            // Fall back to plain SGD scaling when norms degenerate
            // (fresh zero-init tensors like BN β).
            let local_lr = if w_norm > 0.0 && g_norm > 0.0 {
                eta * w_norm / (g_norm + wd * w_norm + 1e-12)
            } else {
                1.0
            };
            let v = velocity
                .entry(name.to_string())
                .or_insert_with(|| vec![0.0; w.len()]);
            for i in 0..w.len() {
                let grad = g[i] + wd * w[i];
                v[i] = momentum * v[i] + local_lr * grad;
                w[i] -= lr * v[i];
            }
        });
    }

    fn name(&self) -> &'static str {
        "LARS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::testutil::Quadratic;

    #[test]
    fn converges_on_quadratic() {
        let mut q = Quadratic::new(11);
        let mut opt = Lars::new(0.9, 0.0, 0.02);
        let first = q.loss_and_grad();
        for t in 0..400 {
            let _ = q.loss_and_grad();
            // LARS keeps the step size tied to ‖w‖, so it needs a decaying
            // global rate to settle instead of orbiting the optimum.
            opt.step(&mut q.model, 1.0 / (1.0 + 0.02 * t as f32));
        }
        let last = q.loss_and_grad();
        assert!(last < 0.1 * first, "loss {first} → {last}");
    }

    #[test]
    fn update_scale_tracks_weight_norm() {
        // Two parameter tensors with identical gradients but different
        // weight norms must receive different effective steps.
        use kfac_nn::{Linear, Sequential};
        use kfac_tensor::Rng64;
        let mut rng = Rng64::new(12);
        let mut model =
            Sequential::from_layers(vec![Box::new(Linear::new("fc", 2, 2, false, &mut rng))]);
        // Set weights: row 0 large, uniform gradient.
        model.visit_params("", &mut |_, w, g| {
            w.copy_from_slice(&[10.0, 10.0, 0.1, 0.1]);
            g.copy_from_slice(&[1.0, 1.0, 1.0, 1.0]);
        });
        let mut opt = Lars::new(0.0, 0.0, 0.01);
        opt.step(&mut model, 1.0);
        let mut w = Vec::new();
        model.visit_params("", &mut |_, v, _| w.extend_from_slice(v));
        let step_all = 10.0 - w[0];
        // The whole tensor shares one local_lr ∝ ‖w‖/‖g‖ = 14.14/2.
        assert!((step_all - 0.01 * (10.0f32 * 10.0 * 2.0 + 0.01 * 2.0).sqrt() / 2.0).abs() < 0.01);
    }

    #[test]
    fn zero_weights_fall_back_gracefully() {
        let mut q = Quadratic::new(13);
        q.model.visit_params("", &mut |_, w, _| {
            for v in w.iter_mut() {
                *v = 0.0;
            }
        });
        let _ = q.loss_and_grad();
        let mut opt = Lars::new(0.9, 0.01, 0.001);
        opt.step(&mut q.model, 0.1); // must not NaN
        q.model.visit_params("", &mut |_, w, _| {
            assert!(w.iter().all(|v| v.is_finite()));
        });
    }
}
