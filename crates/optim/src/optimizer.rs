//! The optimizer interface.
//!
//! Optimizers walk the model's parameters through
//! [`Layer::visit_params`](kfac_nn::Layer::visit_params) and keep their
//! per-parameter state (momentum buffers, Adam moments) keyed by the
//! parameter's unique dotted name, so they are agnostic to model
//! structure — exactly how the K-FAC preconditioner composes with them:
//! `precondition(grads)` runs first, then `optimizer.step()` consumes the
//! (possibly preconditioned) gradients unchanged (Listing 1).

use kfac_nn::Layer;

/// A first-order parameter-update rule.
pub trait Optimizer: Send {
    /// Apply one update step with learning rate `lr`, consuming the
    /// gradients currently stored in the model.
    fn step(&mut self, model: &mut dyn Layer, lr: f32);

    /// Human-readable name for experiment reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
pub(crate) mod testutil {
    use kfac_nn::{Layer, Linear, Mode, Sequential};
    use kfac_tensor::{Rng64, Tensor4};

    /// A tiny model + a quadratic-ish objective for optimizer convergence
    /// tests: minimize ‖W x − y*‖² on a fixed batch by gradient steps.
    pub struct Quadratic {
        pub model: Sequential,
        x: Tensor4,
        target: Vec<f32>,
    }

    impl Quadratic {
        pub fn new(seed: u64) -> Self {
            let mut rng = Rng64::new(seed);
            let model =
                Sequential::from_layers(vec![Box::new(Linear::new("fc", 4, 3, true, &mut rng))]);
            let x = Tensor4::from_vec(2, 4, 1, 1, (0..8).map(|_| rng.normal_f32()).collect());
            let target = (0..6).map(|_| rng.normal_f32()).collect();
            Quadratic { model, x, target }
        }

        /// Forward + backward; returns the loss.
        pub fn loss_and_grad(&mut self) -> f32 {
            self.model.zero_grad();
            let out = self.model.forward(&self.x, Mode::Train);
            let mut loss = 0.0f32;
            let mut grad = Tensor4::zeros(2, 3, 1, 1);
            for (i, (&o, &t)) in out.as_slice().iter().zip(&self.target).enumerate() {
                let d = o - t;
                loss += d * d;
                grad.as_mut_slice()[i] = 2.0 * d;
            }
            let _ = self.model.backward(&grad);
            loss
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::Quadratic;
    use kfac_nn::Layer as _;

    #[test]
    fn quadratic_harness_produces_gradients() {
        let mut q = Quadratic::new(1);
        let l = q.loss_and_grad();
        assert!(l > 0.0);
        let mut nonzero = 0usize;
        q.model.visit_params("", &mut |_, _, g| {
            nonzero += g.iter().filter(|&&v| v != 0.0).count();
        });
        assert!(nonzero > 0);
    }
}
