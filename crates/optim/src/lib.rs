//! # kfac-optim
//!
//! First-order optimizers and learning-rate schedules for the `kfac-rs`
//! reproduction of *Convolutional Neural Network Training with Distributed
//! K-FAC* (Pauloski et al., SC 2020).
//!
//! The paper positions K-FAC as a **gradient preconditioner** that can be
//! used "in-place with any standard optimizer, such as Adam, LARS, or SGD"
//! (§IV). This crate supplies those optimizers:
//!
//! * [`Sgd`] — momentum SGD (the paper's baseline and the optimizer its
//!   headline K-FAC results wrap; momentum 0.9, §VI-C1).
//! * [`Adam`] — Adam with bias correction.
//! * [`Lars`] — layer-wise adaptive rate scaling (the large-batch SGD
//!   family of the paper's related work, §III-A).
//! * [`lr::LrSchedule`] — linear warmup + multi-step decay (every paper
//!   run warms up 5 epochs and decays at fixed epochs) plus polynomial
//!   decay, and the `N×` linear scaling rule used at scale.

pub mod adam;
pub mod lars;
pub mod lr;
pub mod optimizer;
pub mod sgd;

pub use adam::Adam;
pub use lars::Lars;
pub use lr::LrSchedule;
pub use optimizer::Optimizer;
pub use sgd::Sgd;
