//! Adam (Kingma & Ba) with bias correction.
//!
//! Included because the paper's design goal is a preconditioner usable
//! "in-place with any standard optimizer, such as Adam, LARS, or SGD"
//! (§IV); the integration tests exercise K-FAC + Adam to verify the claim.

use crate::optimizer::Optimizer;
use kfac_nn::Layer;
use std::collections::HashMap;

/// Adam optimizer.
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: HashMap<String, Vec<f32>>,
    v: HashMap<String, Vec<f32>>,
}

impl Adam {
    /// Create with standard defaults `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(weight_decay: f32) -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Override the betas.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, model: &mut dyn Layer, lr: f32) {
        self.t += 1;
        let (b1, b2, eps, wd, t) = (self.beta1, self.beta2, self.eps, self.weight_decay, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let m_map = &mut self.m;
        let v_map = &mut self.v;

        model.visit_params("", &mut |name, w, g| {
            let m = m_map
                .entry(name.to_string())
                .or_insert_with(|| vec![0.0; w.len()]);
            let v = v_map
                .entry(name.to_string())
                .or_insert_with(|| vec![0.0; w.len()]);
            for i in 0..w.len() {
                let grad = g[i] + wd * w[i];
                m[i] = b1 * m[i] + (1.0 - b1) * grad;
                v[i] = b2 * v[i] + (1.0 - b2) * grad * grad;
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                w[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
        });
    }

    fn name(&self) -> &'static str {
        "Adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::testutil::Quadratic;

    #[test]
    fn converges_on_quadratic() {
        let mut q = Quadratic::new(7);
        let mut opt = Adam::new(0.0);
        let first = q.loss_and_grad();
        for _ in 0..300 {
            let _ = q.loss_and_grad();
            opt.step(&mut q.model, 0.05);
        }
        let last = q.loss_and_grad();
        assert!(last < 0.01 * first, "loss {first} → {last}");
    }

    #[test]
    fn first_step_size_is_about_lr() {
        // With bias correction, |Δw| ≈ lr on the first step for any
        // nonzero gradient.
        let mut q = Quadratic::new(8);
        let _ = q.loss_and_grad();
        let mut w0 = Vec::new();
        let mut g0 = Vec::new();
        q.model.visit_params("", &mut |_, w, g| {
            w0.extend_from_slice(w);
            g0.extend_from_slice(g);
        });
        let mut opt = Adam::new(0.0);
        opt.step(&mut q.model, 0.01);
        let mut w1 = Vec::new();
        q.model
            .visit_params("", &mut |_, w, _| w1.extend_from_slice(w));
        for ((a, b), g) in w0.iter().zip(&w1).zip(&g0) {
            if g.abs() > 1e-4 {
                let step = (a - b).abs();
                assert!((step - 0.01).abs() < 1e-3, "step {step}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let run = || {
            let mut q = Quadratic::new(9);
            let mut opt = Adam::new(0.01);
            for _ in 0..10 {
                let _ = q.loss_and_grad();
                opt.step(&mut q.model, 0.02);
            }
            let mut w = Vec::new();
            q.model
                .visit_params("", &mut |_, v, _| w.extend_from_slice(v));
            w
        };
        assert_eq!(run(), run());
    }
}
