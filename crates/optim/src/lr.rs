//! Learning-rate schedules.
//!
//! Every experiment in the paper uses the same recipe (§VI-C): a base rate
//! scaled linearly with the worker count (`N × 0.1` on CIFAR,
//! `N × 0.0125` on ImageNet), a 5-epoch linear warmup, and step decays by
//! 10× at fixed epochs (different epoch lists for K-FAC and SGD).
//! [`LrSchedule`] encodes exactly that, plus a polynomial variant for
//! ablations.

/// Decay shape after warmup.
#[derive(Debug, Clone, PartialEq)]
pub enum Decay {
    /// Multiply by `factor` at each listed epoch (the paper's scheme).
    Steps {
        /// Epochs at which the rate drops.
        epochs: Vec<usize>,
        /// Multiplicative factor per drop (paper: 0.1).
        factor: f32,
    },
    /// `lr · (1 − progress)^power` over `total_epochs`.
    Polynomial {
        /// Total epochs the decay spans.
        total_epochs: usize,
        /// Exponent (2.0 is common).
        power: f32,
    },
}

/// Warmup + decay schedule queried at fractional epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct LrSchedule {
    /// Post-warmup base rate.
    pub base_lr: f32,
    /// Linear warmup length in epochs (paper: 5).
    pub warmup_epochs: f32,
    /// Decay shape.
    pub decay: Decay,
}

impl LrSchedule {
    /// The paper's step schedule: warmup 5 epochs, 10× decays at `epochs`.
    pub fn paper_steps(base_lr: f32, epochs: Vec<usize>) -> Self {
        LrSchedule {
            base_lr,
            warmup_epochs: 5.0,
            decay: Decay::Steps {
                epochs,
                factor: 0.1,
            },
        }
    }

    /// Linear scaling rule: base rate × worker count (§VI-C1: `N × 0.1`,
    /// §VI-C3: `N × 0.0125`).
    pub fn scale_for_workers(mut self, n_workers: usize) -> Self {
        self.base_lr *= n_workers as f32;
        self
    }

    /// Learning rate at (fractional) `epoch`.
    pub fn lr_at(&self, epoch: f32) -> f32 {
        assert!(epoch >= 0.0);
        if self.warmup_epochs > 0.0 && epoch < self.warmup_epochs {
            // Linear ramp from base/(warmup steps) rather than 0 — matches
            // common warmup implementations and avoids a dead first step.
            let frac = (epoch + 1e-9) / self.warmup_epochs;
            return self.base_lr * frac.min(1.0);
        }
        match &self.decay {
            Decay::Steps { epochs, factor } => {
                let drops = epochs.iter().filter(|&&e| epoch >= e as f32).count();
                self.base_lr * factor.powi(drops as i32)
            }
            Decay::Polynomial {
                total_epochs,
                power,
            } => {
                let p = (epoch / *total_epochs as f32).min(1.0);
                self.base_lr * (1.0 - p).max(0.0).powf(*power)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly() {
        let s = LrSchedule::paper_steps(1.0, vec![30]);
        assert!(s.lr_at(0.0) < 0.01);
        assert!((s.lr_at(2.5) - 0.5).abs() < 1e-5);
        assert!((s.lr_at(5.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn steps_decay_by_factor() {
        let s = LrSchedule::paper_steps(0.8, vec![10, 20, 30]);
        assert!((s.lr_at(9.9) - 0.8).abs() < 1e-6);
        assert!((s.lr_at(10.0) - 0.08).abs() < 1e-6);
        assert!((s.lr_at(25.0) - 0.008).abs() < 1e-6);
        assert!((s.lr_at(35.0) - 0.0008).abs() < 1e-7);
    }

    #[test]
    fn linear_scaling_rule() {
        let s = LrSchedule::paper_steps(0.0125, vec![30]).scale_for_workers(16);
        assert!((s.base_lr - 0.2).abs() < 1e-6, "paper: 0.0125 × 16 = 0.2");
    }

    #[test]
    fn polynomial_reaches_zero() {
        let s = LrSchedule {
            base_lr: 1.0,
            warmup_epochs: 0.0,
            decay: Decay::Polynomial {
                total_epochs: 10,
                power: 2.0,
            },
        };
        assert!((s.lr_at(0.0) - 1.0).abs() < 1e-6);
        assert!((s.lr_at(5.0) - 0.25).abs() < 1e-6);
        assert_eq!(s.lr_at(10.0), 0.0);
        assert_eq!(s.lr_at(12.0), 0.0);
    }

    #[test]
    fn monotone_through_warmup_boundary() {
        let s = LrSchedule::paper_steps(1.0, vec![50]);
        let mut prev = 0.0;
        for i in 0..=50 {
            let lr = s.lr_at(i as f32 / 10.0);
            assert!(lr >= prev - 1e-6, "warmup must be nondecreasing");
            prev = lr;
        }
    }
}
