//! One Criterion benchmark per table/figure of the paper.
//!
//! Each bench exercises the computational core that its table or figure
//! measures; the full row/series reproduction (with accuracies and
//! projections) is produced by the experiment harness:
//! `cargo run --release -p kfac-harness --bin xp -- <id> --scale quick`.
//!
//! | bench group | paper artifact | what is timed |
//! |---|---|---|
//! | `table1`  | Table I   | eigen vs explicit-inverse second-order update + preconditioning |
//! | `table2_fig4` | Table II / Fig. 4 | one full distributed K-FAC training iteration |
//! | `fig5`    | Fig. 5    | forward+backward of the bottleneck ResNet on a batch |
//! | `table3_fig6` | Table III / Fig. 6 | K-FAC step sequences at different update frequencies |
//! | `fig7_8_9_table4` | Figs. 7–9, Table IV | the full 16–256 GPU scaling projection per model |
//! | `table5`  | Table V   | factor/eig stage-time evaluation across scales |
//! | `table6`  | Table VI  | round-robin vs LPT placement over real inventories |
//! | `fig10`   | Fig. 10   | real factor computation across model depths |

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kfac::math::{
    decompose_factor, invert_factor, precondition_eigen, precondition_inverse, EigenPair,
    InversePair,
};
use kfac::{distribution, Kfac, KfacConfig, PlacementPolicy};
use kfac_cluster::{scaling_sweep, ClusterSpec, IterationModel, ModelProfile, TrainingBudget};
use kfac_collectives::LocalComm;
use kfac_data::{batch_of, synthetic_cifar};
use kfac_harness::presets::{ImagenetSetup, Scale};
use kfac_harness::trainer::allreduce_gradients;
use kfac_nn::arch::{resnet101, resnet152, resnet50};
use kfac_nn::{layer::Mode, CrossEntropyLoss, Layer, Sequential};
use kfac_optim::{Optimizer, Sgd};
use kfac_tensor::{Matrix, Rng64};
use std::time::Duration;

fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
    let data = (0..2 * n * n).map(|_| rng.normal_f32()).collect();
    let x = Matrix::from_vec(2 * n, n, data);
    let mut a = x.gram();
    a.scale(1.0 / (2 * n) as f32);
    a
}

/// Table I: the two inversion paths on a ResNet-like factor pair.
fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    let mut rng = Rng64::new(1);
    let a = random_spd(72, &mut rng); // 8-ch 3×3 conv activation factor
    let g = random_spd(32, &mut rng);
    let grad = Matrix::from_vec(32, 72, (0..32 * 72).map(|_| rng.normal_f32()).collect());

    group.bench_function("eigen_update_and_precondition", |b| {
        b.iter(|| {
            let pair = EigenPair {
                a: decompose_factor(&a).expect("eig"),
                g: decompose_factor(&g).expect("eig"),
            };
            std::hint::black_box(precondition_eigen(&pair, &grad, 0.05))
        });
    });
    group.bench_function("inverse_update_and_precondition", |b| {
        b.iter(|| {
            let pair = InversePair {
                a_inv: invert_factor(&a, 0.05).expect("inv"),
                g_inv: invert_factor(&g, 0.05).expect("inv"),
            };
            std::hint::black_box(precondition_inverse(&pair, &grad))
        });
    });
    group.finish();
}

/// Shared smoke-scale CIFAR iteration state.
struct IterState {
    model: Sequential,
    kfac: Kfac,
    opt: Sgd,
}

fn smoke_iteration_state() -> (IterState, kfac_data::SyntheticImages) {
    let (train_ds, _) = synthetic_cifar(8, 256, 64, 5);
    let mut rng = Rng64::new(9);
    let mut model = kfac_nn::resnet::resnet_cifar(1, 4, 10, 3, &mut rng);
    let kfac = Kfac::new(
        &mut model,
        KfacConfig {
            update_freq: 5,
            damping: 0.1,
            ..KfacConfig::default()
        },
    );
    (
        IterState {
            model,
            kfac,
            opt: Sgd::paper_default(5e-4),
        },
        train_ds,
    )
}

/// Table II / Fig. 4: one full K-FAC training iteration.
fn bench_table2_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_fig4");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    let (mut st, ds) = smoke_iteration_state();
    let comm = LocalComm::new();
    let criterion_loss = CrossEntropyLoss::new();
    let indices: Vec<usize> = (0..16).collect();

    group.bench_function("kfac_training_iteration", |b| {
        b.iter(|| {
            let (x, labels) = batch_of(&ds, &indices, 1);
            st.model.zero_grad();
            st.model.set_capture(st.kfac.needs_capture());
            let out = st.model.forward(&x, Mode::Train);
            let (_, grad) = criterion_loss.forward(&out, &labels);
            let _ = st.model.backward(&grad);
            allreduce_gradients(&mut st.model, &comm);
            st.kfac.step(&mut st.model, &comm, 0.1);
            st.opt.step(&mut st.model, 0.1);
        });
    });
    group.finish();
}

/// Fig. 5: forward+backward of the bottleneck ResNet.
fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    let setup = ImagenetSetup::new(Scale::Smoke);
    let mut model = setup.model(50, 3);
    let criterion_loss = CrossEntropyLoss::with_smoothing(0.1);
    let indices: Vec<usize> = (0..8).collect();

    group.bench_function("bottleneck_resnet_fwd_bwd", |b| {
        b.iter(|| {
            let (x, labels) = batch_of(&setup.train, &indices, 1);
            model.zero_grad();
            let out = model.forward(&x, Mode::Train);
            let (_, grad) = criterion_loss.forward(&out, &labels);
            std::hint::black_box(model.backward(&grad));
        });
    });
    group.finish();
}

/// Table III / Fig. 6: K-FAC step sequences at two update frequencies —
/// the amortization the table quantifies.
fn bench_table3_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fig6");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    let criterion_loss = CrossEntropyLoss::new();
    let indices: Vec<usize> = (0..16).collect();

    for freq in [1usize, 10] {
        group.bench_with_input(
            BenchmarkId::new("ten_iterations_update_freq", freq),
            &freq,
            |b, &freq| {
                let (train_ds, _) = synthetic_cifar(8, 256, 64, 5);
                let mut rng = Rng64::new(9);
                let mut model = kfac_nn::resnet::resnet_cifar(1, 4, 10, 3, &mut rng);
                let mut kfac = Kfac::new(
                    &mut model,
                    KfacConfig {
                        update_freq: freq,
                        factor_freq_multiplier: 1,
                        damping: 0.1,
                        ..KfacConfig::default()
                    },
                );
                let comm = LocalComm::new();
                b.iter(|| {
                    for _ in 0..10 {
                        let (x, labels) = batch_of(&train_ds, &indices, 1);
                        model.zero_grad();
                        model.set_capture(kfac.needs_capture());
                        let out = model.forward(&x, Mode::Train);
                        let (_, grad) = criterion_loss.forward(&out, &labels);
                        let _ = model.backward(&grad);
                        kfac.step(&mut model, &comm, 0.1);
                    }
                });
            },
        );
    }
    group.finish();
}

/// Figs. 7–9 / Table IV: the full scaling projection per model.
fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_8_9_table4");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    for (name, arch) in [
        ("fig7_resnet50", resnet50()),
        ("fig8_resnet101", resnet101()),
        ("fig9_resnet152", resnet152()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(scaling_sweep(&arch, TrainingBudget::default())));
        });
    }
    group.finish();
}

/// Table V: stage-time evaluation across the 3×3 grid.
fn bench_table5(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    group.bench_function("stage_profile_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for arch in [resnet50(), resnet101(), resnet152()] {
                let p = ModelProfile::from_arch(&arch);
                for gpus in [16usize, 32, 64] {
                    let m = IterationModel::new(p.clone(), ClusterSpec::frontera(gpus), 32);
                    let (fc, fx) = m.factor_stage_s();
                    let (ec, ex) = m.eig_stage_s(PlacementPolicy::RoundRobin);
                    acc += fc + fx + ec + ex;
                }
            }
            std::hint::black_box(acc)
        });
    });
    group.finish();
}

/// Table VI: placement policies over the real ResNet-152 inventory.
fn bench_table6(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let arch = resnet152();
    let dims: Vec<(usize, usize)> = arch.layers.iter().map(|l| l.factor_dims()).collect();
    let factors = distribution::factor_descs(&dims);
    for (name, policy) in [
        ("round_robin", PlacementPolicy::RoundRobin),
        ("size_balanced_lpt", PlacementPolicy::SizeBalanced),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| std::hint::black_box(distribution::assign_factors(policy, &factors, 64)));
        });
    }
    group.finish();
}

/// Fig. 10: real factor computation across depths.
fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    let setup = ImagenetSetup::new(Scale::Smoke);
    let criterion_loss = CrossEntropyLoss::new();
    for depth in [50usize, 101, 152] {
        group.bench_with_input(
            BenchmarkId::new("compute_factors_resnet", depth),
            &depth,
            |b, &depth| {
                let mut model = setup.model(depth, 7);
                let indices: Vec<usize> = (0..8).collect();
                let (x, labels) = batch_of(&setup.train, &indices, 0);
                model.set_capture(true);
                let out = model.forward(&x, Mode::Train);
                let (_, grad) = criterion_loss.forward(&out, &labels);
                let _ = model.backward(&grad);
                let mut layers = Vec::new();
                model.collect_kfac(&mut layers);
                b.iter(|| {
                    let mut acc = 0.0f32;
                    for layer in &layers {
                        let (a, g) = layer.compute_factors();
                        acc += a.trace() + g.trace();
                    }
                    std::hint::black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2_fig4,
    bench_fig5,
    bench_table3_fig6,
    bench_scaling,
    bench_table5,
    bench_table6,
    bench_fig10
);
criterion_main!(benches);
