//! Kernel microbenchmarks: the primitive operations every experiment is
//! built from (GEMM, symmetric eigendecomposition, explicit inverse,
//! im2col, thread-rank allreduce).
//!
//! These are the numbers `kfac_cluster::calibrate_host` anchors the
//! simulator to; run `cargo bench -p kfac-bench --bench kernels` to see
//! this machine's rates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kfac_collectives::{Communicator, ReduceOp, ThreadComm};
use kfac_harness::benchkernels::{self, Kind};
use kfac_nn::im2col::im2col;
use kfac_tensor::{eigh, invert, Matrix, Rng64, Tensor4};
use std::time::Duration;

fn random_matrix(r: usize, c: usize, rng: &mut Rng64) -> Matrix {
    Matrix::from_vec(r, c, (0..r * c).map(|_| rng.normal_f32()).collect())
}

fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
    let x = random_matrix(2 * n, n, rng);
    let mut a = x.gram();
    a.scale(1.0 / (2 * n) as f32);
    a.add_diag(0.01);
    a
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let mut rng = Rng64::new(1);
    for n in [64usize, 128, 256, 512, 1024] {
        let a = random_matrix(n, n, &mut rng);
        let b = random_matrix(n, n, &mut rng);
        let mut out = Matrix::zeros(0, 0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bench, _| {
            bench.iter(|| {
                a.matmul_into(&b, &mut out);
                std::hint::black_box(&out);
            });
        });
    }
    // The K-FAC factor kernel: tall-skinny Gram, plus the square Grams
    // the packed-engine acceptance criteria are stated over.
    let x = random_matrix(2048, 128, &mut rng);
    group.throughput(Throughput::Elements(2048 * 128 * 128));
    group.bench_function("gram_2048x128", |bench| {
        bench.iter(|| std::hint::black_box(x.gram()));
    });
    for n in [256usize, 512, 1024] {
        let x = random_matrix(n, n, &mut rng);
        let mut out = Matrix::zeros(0, 0);
        group.throughput(Throughput::Elements((n * n * (n + 1)) as u64));
        group.bench_with_input(BenchmarkId::new("gram", n), &n, |bench, _| {
            bench.iter(|| {
                x.gram_into(&mut out);
                std::hint::black_box(&out);
            });
        });
    }
    group.finish();
}

/// Every shape of the `xp bench-kernels` suite (ResNet-32/CIFAR layer
/// products + the square acceptance shapes) on the packed engine, so
/// criterion history tracks the exact shapes `BENCH_kernels.json` reports.
fn bench_resnet32_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed_kernels");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let mut rng = Rng64::new(4);
    for (name, kind, m, k, n) in benchkernels::cases() {
        let (a, b, madds) = match kind {
            Kind::Matmul => (
                random_matrix(m, k, &mut rng),
                random_matrix(k, n, &mut rng),
                m * k * n,
            ),
            Kind::MatmulTn => (
                random_matrix(k, m, &mut rng),
                random_matrix(k, n, &mut rng),
                m * k * n,
            ),
            Kind::MatmulNt => (
                random_matrix(m, k, &mut rng),
                random_matrix(n, k, &mut rng),
                m * k * n,
            ),
            Kind::Gram => (
                random_matrix(k, n, &mut rng),
                Matrix::zeros(0, 0),
                k * n * (n + 1) / 2,
            ),
            Kind::GramNt => (
                random_matrix(m, k, &mut rng),
                Matrix::zeros(0, 0),
                k * m * (m + 1) / 2,
            ),
        };
        let mut out = Matrix::zeros(0, 0);
        group.throughput(Throughput::Elements(2 * madds as u64));
        group.bench_function(name, |bench| {
            bench.iter(|| {
                match kind {
                    Kind::Matmul => a.matmul_into(&b, &mut out),
                    Kind::MatmulTn => a.matmul_tn_into(&b, &mut out),
                    Kind::MatmulNt => a.matmul_nt_into(&b, &mut out),
                    Kind::Gram => a.gram_into(&mut out),
                    Kind::GramNt => a.gram_nt_into(&mut out),
                }
                std::hint::black_box(&out);
            });
        });
    }
    group.finish();
}

fn bench_eig_and_inverse(c: &mut Criterion) {
    let mut group = c.benchmark_group("second_order");
    group
        .measurement_time(Duration::from_secs(4))
        .sample_size(10);
    let mut rng = Rng64::new(2);
    for n in [32usize, 64, 128] {
        let a = random_spd(n, &mut rng);
        group.bench_with_input(BenchmarkId::new("eigh", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(eigh(&a).expect("converges")));
        });
        group.bench_with_input(BenchmarkId::new("invert", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(invert(&a).expect("nonsingular")));
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    let mut rng = Rng64::new(3);
    let x = Tensor4::from_vec(
        16,
        16,
        16,
        16,
        (0..16 * 16 * 16 * 16).map(|_| rng.normal_f32()).collect(),
    );
    group.bench_function("3x3_pad1_b16c16s16", |bench| {
        bench.iter(|| std::hint::black_box(im2col(&x, 3, 1, 1)));
    });
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for ranks in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("thread_comm_64k_floats", ranks),
            &ranks,
            |bench, &ranks| {
                bench.iter(|| {
                    let comms = ThreadComm::create(ranks);
                    std::thread::scope(|s| {
                        for comm in &comms {
                            s.spawn(move || {
                                let mut buf = vec![1.0f32; 65536];
                                comm.allreduce(&mut buf, ReduceOp::Average);
                                std::hint::black_box(buf[0]);
                            });
                        }
                    });
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_resnet32_shapes,
    bench_eig_and_inverse,
    bench_im2col,
    bench_allreduce
);
criterion_main!(benches);
