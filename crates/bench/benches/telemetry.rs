//! Telemetry overhead microbenchmarks.
//!
//! The span API instruments hot paths (every collective, every K-FAC
//! stage), so its costs matter: a disabled span must be near-free, an
//! enabled one must stay far below the ~µs stages it measures. Run
//! `cargo bench -p kfac-bench --bench telemetry`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kfac_telemetry::{export, MetricsSnapshot, Registry, Span};

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("span");
    group.sample_size(20);

    // No recorder installed: enter/drop must be a no-op.
    group.throughput(Throughput::Elements(1));
    group.bench_function("disabled_enter_drop", |bench| {
        bench.iter(|| {
            let _span = std::hint::black_box(Span::enter("bench/disabled"));
        });
    });

    // Installed recorder with attributes, the instrumented-path cost.
    let registry = Registry::new();
    let _guard = registry.install(0);
    group.bench_function("enabled_enter_drop", |bench| {
        bench.iter(|| {
            let _span = std::hint::black_box(
                Span::enter("bench/enabled")
                    .with("iter", 1u64)
                    .with("bytes", 4096u64),
            );
        });
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.histogram");

    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_add", |bench| {
        bench.iter(|| counter.add(std::hint::black_box(7)));
    });
    group.bench_function("histogram_record", |bench| {
        bench.iter(|| histogram.record(std::hint::black_box(1.25e-3)));
    });
    group.finish();
}

/// A registry shaped like a real 4-rank K-FAC smoke run: per-layer
/// spectrum gauges, traffic counters, and timing histograms.
fn populated_registry() -> Registry {
    let registry = Registry::new();
    for li in 0..32 {
        for kind in ["a", "g"] {
            registry
                .gauge(&format!("kfac/layer{li}/{kind}_cond"))
                .set(1.0 + li as f64);
        }
    }
    for name in ["comm/ops", "comm/bytes/gradient", "comm/bytes/factor"] {
        registry.counter(name).add(123_456);
    }
    for name in ["train/iter_time_us", "kfac/cond", "kfac/lambda_max"] {
        let h = registry.histogram(name);
        for i in 0..512 {
            h.record(1.0 + i as f64);
        }
    }
    registry
}

/// Live-observability costs: the flight recorder's periodic snapshot
/// (runs once per training step when attached) and the Prometheus
/// exposition (runs once per `/metrics` scrape).
fn bench_observability(c: &mut Criterion) {
    let mut group = c.benchmark_group("observability");
    group.sample_size(20);
    let registry = populated_registry();

    group.bench_function("metrics_snapshot_capture", |bench| {
        bench.iter(|| std::hint::black_box(MetricsSnapshot::capture(&registry)));
    });
    group.bench_function("prometheus_exposition", |bench| {
        bench.iter(|| std::hint::black_box(export::prometheus(&registry)));
    });
    group.finish();
}

criterion_group!(benches, bench_span, bench_metrics, bench_observability);
criterion_main!(benches);
