//! Telemetry overhead microbenchmarks.
//!
//! The span API instruments hot paths (every collective, every K-FAC
//! stage), so its costs matter: a disabled span must be near-free, an
//! enabled one must stay far below the ~µs stages it measures. Run
//! `cargo bench -p kfac-bench --bench telemetry`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kfac_telemetry::{Registry, Span};

fn bench_span(c: &mut Criterion) {
    let mut group = c.benchmark_group("span");
    group.sample_size(20);

    // No recorder installed: enter/drop must be a no-op.
    group.throughput(Throughput::Elements(1));
    group.bench_function("disabled_enter_drop", |bench| {
        bench.iter(|| {
            let _span = std::hint::black_box(Span::enter("bench/disabled"));
        });
    });

    // Installed recorder with attributes, the instrumented-path cost.
    let registry = Registry::new();
    let _guard = registry.install(0);
    group.bench_function("enabled_enter_drop", |bench| {
        bench.iter(|| {
            let _span = std::hint::black_box(
                Span::enter("bench/enabled")
                    .with("iter", 1u64)
                    .with("bytes", 4096u64),
            );
        });
    });
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics");
    group.sample_size(20);
    let registry = Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.histogram");

    group.throughput(Throughput::Elements(1));
    group.bench_function("counter_add", |bench| {
        bench.iter(|| counter.add(std::hint::black_box(7)));
    });
    group.bench_function("histogram_record", |bench| {
        bench.iter(|| histogram.record(std::hint::black_box(1.25e-3)));
    });
    group.finish();
}

criterion_group!(benches, bench_span, bench_metrics);
criterion_main!(benches);
