//! Flight recorder: a bounded black box of recent metric snapshots plus
//! the tail of the span stream, dumped as JSON when a run aborts or the
//! degradation ladder escalates.
//!
//! The recorder deliberately stores *snapshots* (plain values), not
//! metric handles: a dump taken after a fault must show the state
//! leading up to it, not the state at dump time.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::json::{escape_into, number};
use crate::registry::{AttrValue, Registry, SpanEvent};

/// Point-in-time copy of every counter and gauge, plus histogram
/// summaries, labeled with when it was taken.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Snapshot time, µs since the registry origin.
    pub at_us: u64,
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, f64)>,
    /// `(name, count, p50, p99)` for every histogram.
    pub histograms: Vec<(String, u64, f64, f64)>,
}

impl MetricsSnapshot {
    /// Capture the registry's metrics now.
    pub fn capture(registry: &Registry) -> Self {
        MetricsSnapshot {
            at_us: registry.micros_at(Instant::now()),
            counters: registry.counters(),
            gauges: registry.gauges(),
            histograms: registry
                .histograms()
                .into_iter()
                .map(|(name, h)| (name, h.count(), h.percentile(50.0), h.percentile(99.0)))
                .collect(),
        }
    }

    fn to_json_into(&self, out: &mut String) {
        let _ = write!(out, "{{\"at_us\": {}, \"counters\": {{", self.at_us);
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            escape_into(out, name);
            let _ = write!(out, ": {value}");
        }
        out.push_str("}, \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            escape_into(out, name);
            out.push_str(": ");
            out.push_str(&number(*value));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (name, count, p50, p99)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            escape_into(out, name);
            let _ = write!(out, ": {{\"count\": {count}, \"p50\": ");
            out.push_str(&number(*p50));
            out.push_str(", \"p99\": ");
            out.push_str(&number(*p99));
            out.push('}');
        }
        out.push_str("}}");
    }
}

struct RecorderInner {
    snapshots: VecDeque<MetricsSnapshot>,
    snapshot_cap: usize,
    event_tail: usize,
}

/// Bounded ring buffer of [`MetricsSnapshot`]s. Clone-cheap (`Arc`);
/// the trainer snapshots periodically and the harness dumps on fault.
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("snapshots", &self.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(32, 256)
    }
}

impl FlightRecorder {
    /// Recorder keeping at most `snapshot_cap` metric snapshots and
    /// dumping the last `event_tail` span events.
    pub fn new(snapshot_cap: usize, event_tail: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(Mutex::new(RecorderInner {
                snapshots: VecDeque::with_capacity(snapshot_cap.max(1)),
                snapshot_cap: snapshot_cap.max(1),
                event_tail,
            })),
        }
    }

    /// Number of buffered snapshots.
    pub fn len(&self) -> usize {
        self.lock().snapshots.len()
    }

    /// True when no snapshot has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Capture a metrics snapshot now, evicting the oldest at capacity.
    pub fn snapshot(&self, registry: &Registry) {
        let snap = MetricsSnapshot::capture(registry);
        let mut inner = self.lock();
        if inner.snapshots.len() == inner.snapshot_cap {
            inner.snapshots.pop_front();
        }
        inner.snapshots.push_back(snap);
    }

    /// Serialize the black box: dump reason, every buffered snapshot,
    /// and the last `event_tail` span events from the registry.
    pub fn dump_json(&self, registry: &Registry, reason: &str) -> String {
        crate::flush(); // pull this thread's buffered spans in first
        let (snapshots, tail) = {
            let inner = self.lock();
            (
                inner.snapshots.iter().cloned().collect::<Vec<_>>(),
                inner.event_tail,
            )
        };
        let mut events = registry.events();
        // Tail by end time: the *most recent* activity before the fault.
        events.sort_by_key(|e| (e.end_us(), e.rank, e.seq));
        let skip = events.len().saturating_sub(tail);
        let events = &events[skip..];

        let mut out = String::with_capacity(4096);
        out.push_str("{\"reason\": ");
        escape_into(&mut out, reason);
        let _ = write!(
            &mut out,
            ", \"dumped_at_us\": {}, \"snapshots\": [",
            registry.micros_at(Instant::now())
        );
        for (i, snap) in snapshots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            snap.to_json_into(&mut out);
        }
        out.push_str("], \"events\": [");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            event_json_into(&mut out, ev);
        }
        out.push_str("]}");
        out
    }

    /// Write [`FlightRecorder::dump_json`] to `path` (creating parent
    /// directories).
    pub fn dump_to_file(
        &self,
        registry: &Registry,
        reason: &str,
        path: &Path,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.dump_json(registry, reason))
    }
}

fn event_json_into(out: &mut String, ev: &SpanEvent) {
    out.push_str("{\"name\": ");
    escape_into(out, ev.name);
    let _ = write!(
        out,
        ", \"rank\": {}, \"ts_us\": {}, \"dur_us\": {}",
        ev.rank, ev.start_us, ev.dur_us
    );
    if let Some(lane) = ev.lane {
        out.push_str(", \"lane\": ");
        escape_into(out, lane);
    }
    let mut attrs: Vec<_> = ev.attrs.iter().collect();
    attrs.sort_by_key(|(k, _)| *k);
    for (k, v) in attrs {
        out.push_str(", ");
        escape_into(out, k);
        out.push_str(": ");
        match v {
            AttrValue::U64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::I64(n) => {
                let _ = write!(out, "{n}");
            }
            AttrValue::F64(x) => out.push_str(&number(*x)),
            AttrValue::Str(s) => escape_into(out, s),
        }
    }
    out.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn ring_buffer_evicts_oldest() {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(3, 16);
        let counter = registry.counter("iters");
        for _ in 0..5 {
            counter.inc();
            recorder.snapshot(&registry);
        }
        assert_eq!(recorder.len(), 3);
        let dump = Json::parse(&recorder.dump_json(&registry, "test")).unwrap();
        let snaps = dump.get("snapshots").unwrap().as_arr().unwrap();
        assert_eq!(snaps.len(), 3);
        // Oldest retained snapshot saw counter=3 (snapshots 1 and 2 evicted).
        let first = snaps[0].get("counters").unwrap().get("iters").unwrap();
        assert_eq!(first.as_f64(), Some(3.0));
        let last = snaps[2].get("counters").unwrap().get("iters").unwrap();
        assert_eq!(last.as_f64(), Some(5.0));
    }

    #[test]
    fn dump_contains_event_tail_and_parses() {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(4, 2);
        {
            let _g = registry.install(0);
            for _ in 0..5 {
                let _s = crate::Span::enter("train/iteration").with("loss", 1.25);
            }
        }
        registry.gauge("train/loss").set(1.25);
        recorder.snapshot(&registry);
        let dump = recorder.dump_json(&registry, "ladder: stale factors");
        let parsed = Json::parse(&dump).expect("dump is valid JSON");
        assert_eq!(
            parsed.get("reason").unwrap().as_str(),
            Some("ladder: stale factors")
        );
        // Event tail is bounded at 2 even though 5 spans were recorded.
        let events = parsed.get("events").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").unwrap().as_str(),
            Some("train/iteration")
        );
        assert_eq!(events[0].get("loss").unwrap().as_f64(), Some(1.25));
        let snaps = parsed.get("snapshots").unwrap().as_arr().unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(
            snaps[0]
                .get("gauges")
                .unwrap()
                .get("train/loss")
                .unwrap()
                .as_f64(),
            Some(1.25)
        );
    }

    #[test]
    fn dump_to_file_round_trips() {
        let registry = Registry::new();
        let recorder = FlightRecorder::default();
        recorder.snapshot(&registry);
        let dir = std::env::temp_dir().join("kfac_flight_recorder_test");
        let path = dir.join("dump.json");
        recorder
            .dump_to_file(&registry, "abort", &path)
            .expect("write dump");
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("reason").unwrap().as_str(), Some("abort"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
