//! Unified telemetry for kfac-rs: per-rank span tracing, typed metrics,
//! and exporters.
//!
//! One [`Registry`] serves a whole training run. Each rank thread
//! attaches itself with [`Registry::install`]; from then on,
//! [`Span::enter`] records timed, attributed, correctly-nested spans
//! into a thread-local buffer that is published to the registry
//! lock-free (a Treiber stack of batches), so instrumentation costs the
//! hot path an `Instant::now()` pair and a buffer push — no locks, no
//! cross-thread traffic until flush.
//!
//! ```
//! use kfac_telemetry::{Registry, Span};
//!
//! let registry = Registry::new();
//! {
//!     let _guard = registry.install(0); // this thread records as rank 0
//!     for layer in 0..3 {
//!         let _span = Span::enter("kfac/eigendecomp").with("layer", layer);
//!         // ... work ...
//!     }
//! } // guard drop flushes this thread's buffered spans
//! assert_eq!(registry.span_agg("kfac/eigendecomp", Some(0)).count, 3);
//! println!("{}", kfac_telemetry::export::stage_table(&registry.events()));
//! ```
//!
//! Code that may run with or without telemetry can call [`Span::enter`]
//! unconditionally: on a thread with no installed registry it is a
//! no-op (no timestamps are even taken). [`current`] exposes the
//! ambient registry so long-lived objects (e.g. the K-FAC
//! preconditioner) can capture a handle at construction and later
//! answer stats queries from the same data the trace exporters see.
//!
//! Metrics ([`Counter`], [`Gauge`], [`Histogram`]) are named handles
//! obtained from the registry (or used standalone); histograms are
//! log-scale with bounded-error percentile queries.
//!
//! Exporters live in [`export`]: Chrome trace-event JSON (one timeline
//! thread per rank, loadable in Perfetto), JSONL, Prometheus text
//! exposition, and the per-stage breakdown table printed at the end of
//! `xp` runs.
//!
//! The *live* observability layer builds on the same registry:
//! [`server::MetricsServer`] serves `/metrics` and `/health` over
//! localhost HTTP while a run is in flight, [`watchdog::Watchdog`]
//! evaluates health rules (heartbeat stall, non-finite values, factor
//! staleness, collective retry rate) over the metric names in
//! [`watchdog::names`], and [`recorder::FlightRecorder`] keeps a
//! bounded black box of recent snapshots + span tail for post-fault
//! dumps.

#![warn(missing_docs)]

pub mod export;
pub mod json;
mod metrics;
pub mod recorder;
mod registry;
pub mod server;
pub mod watchdog;

pub use metrics::{Counter, Gauge, Histogram};
pub use recorder::{FlightRecorder, MetricsSnapshot};
pub use registry::{AttrValue, Registry, SpanAgg, SpanEvent};
pub use server::MetricsServer;
pub use watchdog::{HealthReport, Severity, Watchdog, WatchdogConfig};

use std::cell::RefCell;
use std::time::Instant;

/// Spans buffered per thread before a lock-free publish to the registry.
const FLUSH_BATCH: usize = 256;

struct ThreadCtx {
    registry: Registry,
    rank: usize,
    lane: Option<&'static str>,
    depth: u32,
    seq: u64,
    buf: Vec<SpanEvent>,
}

impl ThreadCtx {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            self.registry.publish(std::mem::take(&mut self.buf));
        }
    }
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// RAII guard binding the current thread to a registry as one rank.
/// Dropping it flushes buffered spans and restores whatever recorder
/// (if any) was installed before. Not `Send`: it must drop on the
/// thread that created it.
pub struct InstallGuard {
    prev: Option<ThreadCtx>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Registry {
    /// Attach the current thread to this registry, recording as `rank`.
    /// Spans entered while the returned guard lives are collected here.
    /// Nested installs stack: the previous recorder is restored on drop.
    pub fn install(&self, rank: usize) -> InstallGuard {
        self.install_inner(rank, None)
    }

    /// Like [`Registry::install`], but tags every span recorded on this
    /// thread with a worker `lane` (e.g. `"comm"`, `"w1"`). Lanes give
    /// worker threads of one rank their own timeline rows in the Chrome
    /// trace, so compute/communication overlap is visible in Perfetto.
    pub fn install_lane(&self, rank: usize, lane: &'static str) -> InstallGuard {
        self.install_inner(rank, Some(lane))
    }

    fn install_inner(&self, rank: usize, lane: Option<&'static str>) -> InstallGuard {
        let prev = CTX.with(|c| {
            c.borrow_mut().replace(ThreadCtx {
                registry: self.clone(),
                rank,
                lane,
                depth: 0,
                seq: 0,
                buf: Vec::with_capacity(FLUSH_BATCH),
            })
        });
        InstallGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        CTX.with(|c| {
            let mut slot = c.borrow_mut();
            if let Some(mut ctx) = slot.take() {
                ctx.flush();
            }
            *slot = self.prev.take();
        });
    }
}

/// Flush the current thread's buffered spans to its registry now.
///
/// Spans normally publish in batches (and always on guard drop); call
/// this before reading aggregates mid-run — e.g. a stats snapshot taken
/// while the recorder is still installed.
pub fn flush() {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            ctx.flush();
        }
    });
}

/// The registry installed on the current thread, if any, together with
/// the rank it records as. Lets long-lived objects capture the ambient
/// telemetry at construction time.
pub fn current() -> Option<(Registry, usize)> {
    CTX.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.registry.clone(), ctx.rank))
    })
}

/// An in-progress timed span, recorded on drop.
///
/// Entering costs nothing on threads without an installed registry
/// (`start` stays `None` and drop is a no-op), so library code
/// instruments unconditionally.
#[must_use = "a span measures until dropped; binding it to _ drops immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    depth: u32,
    attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Start a span named `name` (conventionally `area/stage`).
    pub fn enter(name: &'static str) -> Span {
        let active = CTX.with(|c| {
            c.borrow_mut().as_mut().map(|ctx| {
                let depth = ctx.depth;
                ctx.depth += 1;
                depth
            })
        });
        match active {
            Some(depth) => Span {
                name,
                start: Some(Instant::now()),
                depth,
                attrs: Vec::new(),
            },
            None => Span {
                name,
                start: None,
                depth: 0,
                attrs: Vec::new(),
            },
        }
    }

    /// Attach a typed attribute (builder-style).
    pub fn with(mut self, key: &'static str, value: impl Into<AttrValue>) -> Span {
        if self.start.is_some() {
            self.attrs.push((key, value.into()));
        }
        self
    }

    /// Attach a typed attribute to a span already bound to a variable.
    pub fn set(&mut self, key: &'static str, value: impl Into<AttrValue>) {
        if self.start.is_some() {
            self.attrs.push((key, value.into()));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        CTX.with(|c| {
            if let Some(ctx) = c.borrow_mut().as_mut() {
                ctx.depth = ctx.depth.saturating_sub(1);
                let seq = ctx.seq;
                ctx.seq += 1;
                let start_us = ctx.registry.micros_at(start);
                let end_us = ctx.registry.micros_at(end);
                ctx.buf.push(SpanEvent {
                    name: self.name,
                    rank: ctx.rank,
                    lane: ctx.lane,
                    depth: self.depth,
                    seq,
                    start_us,
                    dur_us: end_us.saturating_sub(start_us),
                    attrs: std::mem::take(&mut self.attrs),
                });
                if ctx.buf.len() >= FLUSH_BATCH {
                    ctx.flush();
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn span_without_registry_is_noop() {
        let s = Span::enter("free/standing").with("k", 1u64);
        assert!(s.start.is_none());
        drop(s);
    }

    #[test]
    fn spans_nest_with_depth_and_time_containment() {
        let registry = Registry::new();
        {
            let _g = registry.install(3);
            let _outer = Span::enter("outer").with("iter", 7u64);
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = Span::enter("inner");
                std::thread::sleep(Duration::from_millis(2));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let events = registry.events();
        assert_eq!(events.len(), 2);
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!((outer.rank, outer.depth), (3, 0));
        assert_eq!((inner.rank, inner.depth), (3, 1));
        // Inner completes first, so it gets the earlier sequence number.
        assert!(inner.seq < outer.seq);
        // Time containment: inner lies inside outer.
        assert!(outer.start_us <= inner.start_us);
        assert!(inner.end_us() <= outer.end_us());
        assert_eq!(outer.attr("iter"), Some(&AttrValue::U64(7)));
    }

    #[test]
    fn install_restores_previous_recorder() {
        let a = Registry::new();
        let b = Registry::new();
        let _ga = a.install(0);
        {
            let _gb = b.install(5);
            assert_eq!(current().map(|(_, r)| r), Some(5));
            let _s = Span::enter("in_b");
        }
        assert_eq!(current().map(|(_, r)| r), Some(0));
        let _s = Span::enter("in_a");
        drop(_s);
        assert_eq!(b.span_agg("in_b", None).count, 1);
        assert_eq!(a.span_agg("in_b", None).count, 0);
    }

    #[test]
    fn install_lane_tags_spans_with_the_lane() {
        let registry = Registry::new();
        {
            let _g = registry.install_lane(2, "comm");
            let _s = Span::enter("comm/allreduce");
        }
        {
            let _g = registry.install(2);
            let _s = Span::enter("train/backward");
        }
        let events = registry.events();
        let comm = events.iter().find(|e| e.name == "comm/allreduce").unwrap();
        let bwd = events.iter().find(|e| e.name == "train/backward").unwrap();
        assert_eq!(comm.lane, Some("comm"));
        assert_eq!(comm.rank, 2);
        assert_eq!(bwd.lane, None);
    }

    #[test]
    fn multi_thread_aggregation_is_complete_and_deterministic() {
        let registry = Registry::new();
        let ranks = 8;
        let spans_per_rank = 600; // > FLUSH_BATCH: exercises mid-run flush
        std::thread::scope(|s| {
            for rank in 0..ranks {
                let registry = registry.clone();
                s.spawn(move || {
                    let _g = registry.install(rank);
                    for i in 0..spans_per_rank {
                        let _sp = Span::enter("work/unit").with("i", i as u64);
                    }
                });
            }
        });
        let events = registry.events();
        assert_eq!(events.len(), ranks * spans_per_rank);
        // Sorted by (rank, start, seq); per rank, seq is a permutation-free
        // 0..n sequence — aggregation lost and duplicated nothing.
        for rank in 0..ranks {
            let mut seqs: Vec<u64> = events
                .iter()
                .filter(|e| e.rank == rank)
                .map(|e| e.seq)
                .collect();
            assert_eq!(seqs.len(), spans_per_rank);
            seqs.sort_unstable();
            assert!(seqs.iter().enumerate().all(|(i, &s)| s == i as u64));
        }
        // Two snapshots agree exactly (deterministic ordering).
        let again = registry.events();
        assert_eq!(events.len(), again.len());
        assert!(events
            .iter()
            .zip(&again)
            .all(|(x, y)| (x.rank, x.seq, x.start_us) == (y.rank, y.seq, y.start_us)));
    }

    #[test]
    fn registry_metrics_are_shared_by_name() {
        let registry = Registry::new();
        registry.counter("bytes").add(100);
        registry.counter("bytes").add(28);
        assert_eq!(registry.counter("bytes").get(), 128);
        registry.gauge("loss").set(2.5);
        assert_eq!(registry.gauge("loss").get(), 2.5);
        registry.histogram("lat").record(1.0);
        assert_eq!(registry.histogram("lat").count(), 1);
        assert_eq!(registry.counters(), vec![("bytes".to_string(), 128)]);
    }
}
