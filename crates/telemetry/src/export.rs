//! Exporters over a recorded span set: Chrome trace-event JSON (openable
//! in `chrome://tracing` / Perfetto), a JSONL event log, and a
//! human-readable per-stage breakdown table.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

use crate::json::{escape_into, number};
use crate::registry::{AttrValue, SpanEvent};

fn push_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::F64(x) => out.push_str(&number(*x)),
        AttrValue::Str(s) => escape_into(out, s),
    }
}

/// Category shown in trace viewers: the `area` of an `area/stage` name.
fn category(name: &str) -> &str {
    name.split('/').next().unwrap_or("span")
}

/// Render events as a Chrome trace-event document: one process, one
/// timeline thread per `(rank, lane)` pair, complete (`"ph":"X"`) events
/// in microseconds, plus metadata events naming the process and threads.
///
/// A rank's main thread (lane `None`) comes first and keeps `tid` = its
/// enumeration order; worker lanes (`"comm"`, `"w1"`, ...) get their own
/// rows directly below it, so overlapped communication is visually
/// side-by-side with the compute it hides behind.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.rank, e.lane.is_some(), e.lane, e.start_us, e.seq));
    // `Option<&str>` orders None (main lane) before any named lane, so
    // enumeration order groups each rank's lanes under its main row.
    let lanes: BTreeSet<(usize, Option<&'static str>)> =
        sorted.iter().map(|e| (e.rank, e.lane)).collect();
    let tid_of = |rank: usize, lane: Option<&'static str>| -> usize {
        lanes.iter().position(|&l| l == (rank, lane)).unwrap_or(0)
    };

    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    emit_sep(&mut out, &mut first);
    out.push_str(
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"kfac-rs\"}}",
    );
    for (tid, &(rank, lane)) in lanes.iter().enumerate() {
        let label = match lane {
            Some(lane) => format!("rank {rank} {lane}"),
            None => format!("rank {rank}"),
        };
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{label}\"}}}}"
        );
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"sort_index\": {tid}}}}}"
        );
    }

    for ev in sorted {
        emit_sep(&mut out, &mut first);
        out.push_str("{\"ph\": \"X\", \"name\": ");
        escape_into(&mut out, ev.name);
        out.push_str(", \"cat\": ");
        escape_into(&mut out, category(ev.name));
        let _ = write!(
            out,
            ", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{",
            tid_of(ev.rank, ev.lane),
            ev.start_us,
            ev.dur_us
        );
        let _ = write!(out, "\"depth\": {}", ev.depth);
        for (k, v) in &ev.attrs {
            out.push_str(", ");
            escape_into(&mut out, k);
            out.push_str(": ");
            push_attr_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Render events as JSONL: one flat JSON object per line, in
/// `(rank, start, seq)` order. Grep-friendly counterpart of the trace.
pub fn jsonl(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.rank, e.start_us, e.seq));
    let mut out = String::with_capacity(events.len() * 96);
    for ev in sorted {
        out.push_str("{\"name\": ");
        escape_into(&mut out, ev.name);
        let _ = write!(
            out,
            ", \"rank\": {}, \"depth\": {}, \"ts_us\": {}, \"dur_us\": {}",
            ev.rank, ev.depth, ev.start_us, ev.dur_us
        );
        if let Some(lane) = ev.lane {
            out.push_str(", \"lane\": ");
            escape_into(&mut out, lane);
        }
        for (k, v) in &ev.attrs {
            out.push_str(", ");
            escape_into(&mut out, k);
            out.push_str(": ");
            push_attr_value(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

/// One row of the stage breakdown.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration across ranks.
    pub total: Duration,
    /// Median span duration.
    pub p50: Duration,
    /// 95th-percentile span duration.
    pub p95: Duration,
    /// 99th-percentile span duration.
    pub p99: Duration,
}

/// Exact (sorted, nearest-rank) percentile of a duration sample.
fn pct(sorted_us: &[u64], p: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    Duration::from_micros(sorted_us[rank.min(sorted_us.len()) - 1])
}

/// Aggregate events into per-name rows, sorted by descending total time.
pub fn stage_rows(events: &[SpanEvent]) -> Vec<StageRow> {
    let mut by_name: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for ev in events {
        by_name.entry(ev.name).or_default().push(ev.dur_us);
    }
    let mut rows: Vec<StageRow> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            StageRow {
                name: name.to_string(),
                count: durs.len() as u64,
                total: Duration::from_micros(durs.iter().sum()),
                p50: pct(&durs, 50.0),
                p95: pct(&durs, 95.0),
                p99: pct(&durs, 99.0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(&b.name)));
    rows
}

/// Wall-clock span of the event set: max end minus min start, in one
/// rank's timeline terms (all ranks share the registry clock).
pub fn wall_time(events: &[SpanEvent]) -> Duration {
    let start = events.iter().map(|e| e.start_us).min().unwrap_or(0);
    let end = events.iter().map(|e| e.end_us()).max().unwrap_or(0);
    Duration::from_micros(end.saturating_sub(start))
}

fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1e3)
    }
}

/// Render the human-readable stage breakdown table: per span name, the
/// invocation count, summed time, share of per-rank busy time, and
/// p50/p95/p99 span durations; footed with the wall-clock line.
pub fn stage_table(events: &[SpanEvent]) -> String {
    let rows = stage_rows(events);
    let ranks: BTreeSet<usize> = events.iter().map(|e| e.rank).collect();
    let nranks = ranks.len().max(1);
    let wall = wall_time(events);
    // Top-level spans partition a rank's timeline; nested spans re-count
    // the same wall time, so the share column uses depth-0 spans only.
    let top_total: Duration = events
        .iter()
        .filter(|e| e.depth == 0)
        .map(|e| Duration::from_micros(e.dur_us))
        .sum();
    let per_rank_busy = top_total / nranks as u32;

    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>10}  {:>6}  {:>10}  {:>10}  {:>10}",
        "stage", "count", "total", "share", "p50", "p95", "p99"
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(name_w + 2 + 7 + 2 + 10 + 2 + 6 + 3 * 12)
    );
    for r in &rows {
        let share = if top_total.is_zero() {
            0.0
        } else {
            100.0 * r.total.as_secs_f64() / top_total.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>10}  {:>5.1}%  {:>10}  {:>10}  {:>10}",
            r.name,
            r.count,
            fmt_ms(r.total),
            share,
            fmt_ms(r.p50),
            fmt_ms(r.p95),
            fmt_ms(r.p99),
        );
    }
    let _ = writeln!(
        out,
        "\nwall {} | ranks {} | spans {} | busy/rank {} ({:.1}% of wall)",
        fmt_ms(wall),
        nranks,
        events.len(),
        fmt_ms(per_rank_busy),
        if wall.is_zero() {
            0.0
        } else {
            100.0 * per_rank_busy.as_secs_f64() / wall.as_secs_f64()
        },
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn ev(
        name: &'static str,
        rank: usize,
        depth: u32,
        seq: u64,
        start: u64,
        dur: u64,
    ) -> SpanEvent {
        SpanEvent {
            name,
            rank,
            lane: None,
            depth,
            seq,
            start_us: start,
            dur_us: dur,
            attrs: vec![
                ("bytes", AttrValue::U64(1024)),
                ("class", "Gradient".into()),
            ],
        }
    }

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            ev("train/iteration", 0, 0, 2, 0, 100),
            ev("train/forward", 0, 1, 0, 0, 40),
            ev("comm/allreduce", 0, 1, 1, 40, 60),
            ev("train/iteration", 1, 0, 2, 5, 95),
            ev("train/forward", 1, 1, 0, 5, 45),
            ev("comm/allreduce", 1, 1, 1, 50, 50),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_ordered_ts_per_tid() {
        let doc = chrome_trace(&sample_events());
        let parsed = Json::parse(&doc).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 ranks: 1 process_name + 2*(thread_name + sort) metadata + 6 X events.
        assert_eq!(evs.len(), 1 + 4 + 6);
        let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
        for e in evs {
            if e.get("ph").unwrap().as_str() == Some("X") {
                let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                assert!(*last_ts.get(&tid).unwrap_or(&f64::MIN) <= ts);
                last_ts.insert(tid, ts);
                assert_eq!(
                    e.get("args").unwrap().get("bytes").unwrap().as_f64(),
                    Some(1024.0)
                );
            }
        }
        assert_eq!(last_ts.len(), 2);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let doc = jsonl(&sample_events());
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("name").is_some() && v.get("dur_us").is_some());
        }
    }

    #[test]
    fn stage_rows_aggregate_and_percentiles() {
        let rows = stage_rows(&sample_events());
        assert_eq!(rows[0].name, "train/iteration"); // largest total first
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total, Duration::from_micros(195));
        assert_eq!(rows[0].p50, Duration::from_micros(95));
        assert_eq!(rows[0].p99, Duration::from_micros(100));
        let table = stage_table(&sample_events());
        assert!(table.contains("train/iteration"));
        assert!(table.contains("wall"));
    }

    #[test]
    fn chrome_trace_gives_each_rank_lane_its_own_tid() {
        let mut events = sample_events();
        let mut comm = ev("comm/allreduce", 0, 0, 3, 10, 30);
        comm.lane = Some("comm");
        events.push(comm);
        let doc = chrome_trace(&events);
        let parsed = Json::parse(&doc).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 timeline rows now: rank 0, rank 0 comm, rank 1.
        let names: Vec<String> = evs
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 0 comm", "rank 1"]);
        // The lane event lands on tid 1, between rank 0 (tid 0) and rank 1 (tid 2).
        let lane_tids: Vec<i64> = evs
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("ts").unwrap().as_f64() == Some(10.0)
            })
            .map(|e| e.get("tid").unwrap().as_f64().unwrap() as i64)
            .collect();
        assert_eq!(lane_tids, vec![1]);
    }

    #[test]
    fn wall_time_spans_min_start_to_max_end() {
        assert_eq!(wall_time(&sample_events()), Duration::from_micros(100));
        assert_eq!(wall_time(&[]), Duration::ZERO);
    }
}
