//! Exporters over a recorded span set: Chrome trace-event JSON (openable
//! in `chrome://tracing` / Perfetto), a JSONL event log, and a
//! human-readable per-stage breakdown table.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Duration;

use crate::json::{escape_into, number};
use crate::registry::{AttrValue, Registry, SpanEvent};

fn push_attr_value(out: &mut String, v: &AttrValue) {
    match v {
        AttrValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        AttrValue::F64(x) => out.push_str(&number(*x)),
        AttrValue::Str(s) => escape_into(out, s),
    }
}

/// Attrs in stable (key-sorted) order so exported documents are
/// byte-identical across runs regardless of attachment order.
fn sorted_attrs(ev: &SpanEvent) -> Vec<&(&'static str, AttrValue)> {
    let mut attrs: Vec<_> = ev.attrs.iter().collect();
    attrs.sort_by_key(|(k, _)| *k);
    attrs
}

/// Category shown in trace viewers: the `area` of an `area/stage` name.
fn category(name: &str) -> &str {
    name.split('/').next().unwrap_or("span")
}

/// Render events as a Chrome trace-event document: one process, one
/// timeline thread per `(rank, lane)` pair, complete (`"ph":"X"`) events
/// in microseconds, plus metadata events naming the process and threads.
///
/// A rank's main thread (lane `None`) comes first and keeps `tid` = its
/// enumeration order; worker lanes (`"comm"`, `"w1"`, ...) get their own
/// rows directly below it, so overlapped communication is visually
/// side-by-side with the compute it hides behind.
pub fn chrome_trace(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.rank, e.lane.is_some(), e.lane, e.start_us, e.seq));
    // `Option<&str>` orders None (main lane) before any named lane, so
    // enumeration order groups each rank's lanes under its main row.
    let lanes: BTreeSet<(usize, Option<&'static str>)> =
        sorted.iter().map(|e| (e.rank, e.lane)).collect();
    let tid_of = |rank: usize, lane: Option<&'static str>| -> usize {
        lanes.iter().position(|&l| l == (rank, lane)).unwrap_or(0)
    };

    let mut out = String::with_capacity(events.len() * 128 + 256);
    out.push_str("{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
    let mut first = true;
    let emit_sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    emit_sep(&mut out, &mut first);
    out.push_str(
        "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": 1, \"tid\": 0, \
         \"args\": {\"name\": \"kfac-rs\"}}",
    );
    for (tid, &(rank, lane)) in lanes.iter().enumerate() {
        let label = match lane {
            Some(lane) => format!("rank {rank} {lane}"),
            None => format!("rank {rank}"),
        };
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{label}\"}}}}"
        );
        emit_sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\": \"M\", \"name\": \"thread_sort_index\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"sort_index\": {tid}}}}}"
        );
    }

    for ev in sorted {
        emit_sep(&mut out, &mut first);
        out.push_str("{\"ph\": \"X\", \"name\": ");
        escape_into(&mut out, ev.name);
        out.push_str(", \"cat\": ");
        escape_into(&mut out, category(ev.name));
        let _ = write!(
            out,
            ", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"args\": {{",
            tid_of(ev.rank, ev.lane),
            ev.start_us,
            ev.dur_us
        );
        let _ = write!(out, "\"depth\": {}", ev.depth);
        for (k, v) in sorted_attrs(ev) {
            out.push_str(", ");
            escape_into(&mut out, k);
            out.push_str(": ");
            push_attr_value(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Render events as JSONL: one flat JSON object per line, in
/// `(rank, lane, start, seq)` order (lane breaks cross-thread `seq`
/// ties, keeping the document deterministic). Grep-friendly
/// counterpart of the trace.
pub fn jsonl(events: &[SpanEvent]) -> String {
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.rank, e.lane.is_some(), e.lane, e.start_us, e.seq));
    let mut out = String::with_capacity(events.len() * 96);
    for ev in sorted {
        out.push_str("{\"name\": ");
        escape_into(&mut out, ev.name);
        let _ = write!(
            out,
            ", \"rank\": {}, \"depth\": {}, \"ts_us\": {}, \"dur_us\": {}",
            ev.rank, ev.depth, ev.start_us, ev.dur_us
        );
        if let Some(lane) = ev.lane {
            out.push_str(", \"lane\": ");
            escape_into(&mut out, lane);
        }
        for (k, v) in sorted_attrs(ev) {
            out.push_str(", ");
            escape_into(&mut out, k);
            out.push_str(": ");
            push_attr_value(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

/// One row of the stage breakdown.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// Span name.
    pub name: String,
    /// Number of completed spans.
    pub count: u64,
    /// Summed duration across ranks.
    pub total: Duration,
    /// Median span duration.
    pub p50: Duration,
    /// 95th-percentile span duration.
    pub p95: Duration,
    /// 99th-percentile span duration.
    pub p99: Duration,
}

/// Exact (sorted, nearest-rank) percentile of a duration sample.
fn pct(sorted_us: &[u64], p: f64) -> Duration {
    if sorted_us.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil().max(1.0) as usize;
    Duration::from_micros(sorted_us[rank.min(sorted_us.len()) - 1])
}

/// Aggregate events into per-name rows, sorted by descending total time.
pub fn stage_rows(events: &[SpanEvent]) -> Vec<StageRow> {
    let mut by_name: std::collections::BTreeMap<&str, Vec<u64>> = Default::default();
    for ev in events {
        by_name.entry(ev.name).or_default().push(ev.dur_us);
    }
    let mut rows: Vec<StageRow> = by_name
        .into_iter()
        .map(|(name, mut durs)| {
            durs.sort_unstable();
            StageRow {
                name: name.to_string(),
                count: durs.len() as u64,
                total: Duration::from_micros(durs.iter().sum()),
                p50: pct(&durs, 50.0),
                p95: pct(&durs, 95.0),
                p99: pct(&durs, 99.0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total.cmp(&a.total).then(a.name.cmp(&b.name)));
    rows
}

/// Wall-clock span of the event set: max end minus min start, in one
/// rank's timeline terms (all ranks share the registry clock).
pub fn wall_time(events: &[SpanEvent]) -> Duration {
    let start = events.iter().map(|e| e.start_us).min().unwrap_or(0);
    let end = events.iter().map(|e| e.end_us()).max().unwrap_or(0);
    Duration::from_micros(end.saturating_sub(start))
}

fn fmt_ms(d: Duration) -> String {
    let ms = d.as_secs_f64() * 1e3;
    if ms >= 1000.0 {
        format!("{:.2} s", ms / 1e3)
    } else if ms >= 1.0 {
        format!("{ms:.2} ms")
    } else {
        format!("{:.1} µs", ms * 1e3)
    }
}

/// Render the human-readable stage breakdown table: per span name, the
/// invocation count, summed time, share of per-rank busy time, and
/// p50/p95/p99 span durations; footed with the wall-clock line.
pub fn stage_table(events: &[SpanEvent]) -> String {
    let rows = stage_rows(events);
    let ranks: BTreeSet<usize> = events.iter().map(|e| e.rank).collect();
    let nranks = ranks.len().max(1);
    let wall = wall_time(events);
    // Top-level spans partition a rank's timeline; nested spans re-count
    // the same wall time, so the share column uses depth-0 spans only.
    let top_total: Duration = events
        .iter()
        .filter(|e| e.depth == 0)
        .map(|e| Duration::from_micros(e.dur_us))
        .sum();
    let per_rank_busy = top_total / nranks as u32;

    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(5);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<name_w$}  {:>7}  {:>10}  {:>6}  {:>10}  {:>10}  {:>10}",
        "stage", "count", "total", "share", "p50", "p95", "p99"
    );
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(name_w + 2 + 7 + 2 + 10 + 2 + 6 + 3 * 12)
    );
    for r in &rows {
        let share = if top_total.is_zero() {
            0.0
        } else {
            100.0 * r.total.as_secs_f64() / top_total.as_secs_f64()
        };
        let _ = writeln!(
            out,
            "{:<name_w$}  {:>7}  {:>10}  {:>5.1}%  {:>10}  {:>10}  {:>10}",
            r.name,
            r.count,
            fmt_ms(r.total),
            share,
            fmt_ms(r.p50),
            fmt_ms(r.p95),
            fmt_ms(r.p99),
        );
    }
    let _ = writeln!(
        out,
        "\nwall {} | ranks {} | spans {} | busy/rank {} ({:.1}% of wall)",
        fmt_ms(wall),
        nranks,
        events.len(),
        fmt_ms(per_rank_busy),
        if wall.is_zero() {
            0.0
        } else {
            100.0 * per_rank_busy.as_secs_f64() / wall.as_secs_f64()
        },
    );
    out
}

/// One-line numerics footer for the live stage table: the compensated
/// factor-EMA residual histogram (`train/ema_compensation_mag`), when
/// the run has banked any compensation. Returns `None` on all-f32 runs
/// so the footer never clutters the default configuration's output.
pub fn numerics_footer(registry: &Registry) -> Option<String> {
    let hist = registry
        .histograms()
        .into_iter()
        .find(|(name, _)| name == "train/ema_compensation_mag")
        .map(|(_, h)| h)?;
    if hist.count() == 0 {
        return None;
    }
    Some(format!(
        "ema compensation |resid|: n {} | p50 {:.3e} | p95 {:.3e} | p99 {:.3e} | mean {:.3e}",
        hist.count(),
        hist.percentile(50.0),
        hist.percentile(95.0),
        hist.percentile(99.0),
        hist.mean(),
    ))
}

/// Sanitize a metric name for Prometheus: `[a-zA-Z0-9_:]` pass through,
/// everything else becomes `_`, and a leading digit gets a `_` prefix.
/// `kfac/eig_comp` → `kfac_eig_comp`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Escape a Prometheus label value (`\` → `\\`, `"` → `\"`, newline → `\n`).
fn prom_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` for Prometheus exposition (which, unlike JSON, has
/// spellings for the non-finite values).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn prom_family(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Render the registry's metrics — counters, gauges, histograms (with
/// cumulative buckets, `_sum`/`_count`, and p50/p95/p99 gauge series) and
/// per-stage span aggregates — as a Prometheus text exposition document.
///
/// The registry is shared by every rank of a run, so counter and
/// histogram values are already the cross-rank aggregate; per-stage
/// series carry a `stage` label. Metric names are sanitized with the
/// slash convention mapped to underscores (`kfac/cond` → `kfac_cond`).
pub fn prometheus(registry: &Registry) -> String {
    let mut out = String::with_capacity(4096);

    for (name, value) in registry.counters() {
        let n = prom_name(&name);
        prom_family(&mut out, &n, "counter", "monotonic counter");
        let _ = writeln!(out, "{n} {value}");
    }

    for (name, value) in registry.gauges() {
        let n = prom_name(&name);
        prom_family(&mut out, &n, "gauge", "last-write-wins gauge");
        let _ = writeln!(out, "{n} {}", prom_f64(value));
    }

    for (name, hist) in registry.histograms() {
        let n = prom_name(&name);
        prom_family(&mut out, &n, "histogram", "log-scale histogram");
        let count = hist.count();
        for (bound, cumulative) in hist.cumulative_buckets() {
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cumulative}", prom_f64(bound));
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {count}");
        let _ = writeln!(out, "{n}_sum {}", prom_f64(hist.sum()));
        let _ = writeln!(out, "{n}_count {count}");
        for (suffix, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
            let qn = format!("{n}_{suffix}");
            prom_family(&mut out, &qn, "gauge", "histogram percentile estimate");
            let _ = writeln!(out, "{qn} {}", prom_f64(hist.percentile(p)));
        }
    }

    let events = registry.events();
    if !events.is_empty() {
        let rows = stage_rows(&events);
        type StageSeries = (&'static str, &'static str, fn(&StageRow) -> String);
        let series: [StageSeries; 5] = [
            ("kfac_stage_count", "counter", |r| r.count.to_string()),
            ("kfac_stage_total_seconds", "gauge", |r| {
                prom_f64(r.total.as_secs_f64())
            }),
            ("kfac_stage_p50_seconds", "gauge", |r| {
                prom_f64(r.p50.as_secs_f64())
            }),
            ("kfac_stage_p95_seconds", "gauge", |r| {
                prom_f64(r.p95.as_secs_f64())
            }),
            ("kfac_stage_p99_seconds", "gauge", |r| {
                prom_f64(r.p99.as_secs_f64())
            }),
        ];
        for (name, kind, project) in series {
            prom_family(&mut out, name, kind, "per-stage span aggregate");
            for row in &rows {
                let _ = writeln!(
                    out,
                    "{name}{{stage=\"{}\"}} {}",
                    prom_label(&row.name),
                    project(row)
                );
            }
        }
    }
    out
}

/// Validate a Prometheus text exposition document: every sample series
/// must be introduced by `# HELP` and `# TYPE` lines, histogram bucket
/// counts must be monotone over ascending `le` bounds, and each
/// histogram's `+Inf` bucket must equal its `_count`. Returns the first
/// violation as an error string.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    use std::collections::BTreeMap;
    let mut helped: BTreeSet<String> = BTreeSet::new();
    let mut typed: BTreeMap<String, String> = BTreeMap::new();
    // Histogram state keyed by (family, labels-without-le).
    let mut buckets: BTreeMap<(String, String), Vec<(f64, u64)>> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), u64> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap_or("");
            helped.insert(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap_or("").to_string();
            let kind = it.next().unwrap_or("").to_string();
            if !matches!(kind.as_str(), "counter" | "gauge" | "histogram" | "summary") {
                return Err(format!("line {lineno}: unknown TYPE '{kind}'"));
            }
            typed.insert(name, kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }

        // Sample line: name[{labels}] value
        let (series, value) = match line.rfind(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => return Err(format!("line {lineno}: malformed sample '{line}'")),
        };
        let (name, labels) = match series.find('{') {
            Some(i) => {
                let rest = &series[i..];
                if !rest.ends_with('}') {
                    return Err(format!("line {lineno}: unclosed label set"));
                }
                (&series[..i], &rest[1..rest.len() - 1])
            }
            None => (series, ""),
        };
        if value.parse::<f64>().is_err() && !matches!(value, "NaN" | "+Inf" | "-Inf" | "Inf") {
            return Err(format!("line {lineno}: bad sample value '{value}'"));
        }

        // Resolve the declared family: histogram child series (_bucket,
        // _sum, _count) belong to their base metric's declaration.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (typed.get(base).map(String::as_str) == Some("histogram")).then_some(base)
            })
            .unwrap_or(name)
            .to_string();
        if !typed.contains_key(&family) {
            return Err(format!("line {lineno}: '{name}' has no # TYPE line"));
        }
        if !helped.contains(&family) {
            return Err(format!("line {lineno}: '{name}' has no # HELP line"));
        }

        if typed.get(&family).map(String::as_str) == Some("histogram") {
            let non_le: String = labels
                .split(',')
                .filter(|l| !l.trim_start().starts_with("le="))
                .collect::<Vec<_>>()
                .join(",");
            let key = (family.clone(), non_le);
            if name.ends_with("_bucket") {
                let le = labels
                    .split(',')
                    .find_map(|l| l.trim().strip_prefix("le=\"")?.strip_suffix('"'))
                    .ok_or_else(|| format!("line {lineno}: bucket without le label"))?;
                let bound = match le {
                    "+Inf" => f64::INFINITY,
                    s => s
                        .parse::<f64>()
                        .map_err(|_| format!("line {lineno}: bad le '{s}'"))?,
                };
                let cumulative = value
                    .parse::<u64>()
                    .map_err(|_| format!("line {lineno}: non-integer bucket count"))?;
                let series = buckets.entry(key).or_default();
                if let Some(&(prev_bound, prev_count)) = series.last() {
                    if bound <= prev_bound {
                        return Err(format!("line {lineno}: le bounds not ascending"));
                    }
                    if cumulative < prev_count {
                        return Err(format!("line {lineno}: bucket counts not monotone"));
                    }
                }
                series.push((bound, cumulative));
            } else if name.ends_with("_count") {
                counts.insert(
                    key,
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("line {lineno}: non-integer _count"))?,
                );
            }
        }
    }

    for (key, series) in &buckets {
        let Some(&(last_bound, last_count)) = series.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            return Err(format!("histogram '{}': missing +Inf bucket", key.0));
        }
        if let Some(&count) = counts.get(key) {
            if count != last_count {
                return Err(format!(
                    "histogram '{}': _count {count} != +Inf bucket {last_count}",
                    key.0
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn ev(
        name: &'static str,
        rank: usize,
        depth: u32,
        seq: u64,
        start: u64,
        dur: u64,
    ) -> SpanEvent {
        SpanEvent {
            name,
            rank,
            lane: None,
            depth,
            seq,
            start_us: start,
            dur_us: dur,
            attrs: vec![
                ("bytes", AttrValue::U64(1024)),
                ("class", "Gradient".into()),
            ],
        }
    }

    fn sample_events() -> Vec<SpanEvent> {
        vec![
            ev("train/iteration", 0, 0, 2, 0, 100),
            ev("train/forward", 0, 1, 0, 0, 40),
            ev("comm/allreduce", 0, 1, 1, 40, 60),
            ev("train/iteration", 1, 0, 2, 5, 95),
            ev("train/forward", 1, 1, 0, 5, 45),
            ev("comm/allreduce", 1, 1, 1, 50, 50),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_ordered_ts_per_tid() {
        let doc = chrome_trace(&sample_events());
        let parsed = Json::parse(&doc).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 ranks: 1 process_name + 2*(thread_name + sort) metadata + 6 X events.
        assert_eq!(evs.len(), 1 + 4 + 6);
        let mut last_ts: std::collections::BTreeMap<i64, f64> = Default::default();
        for e in evs {
            if e.get("ph").unwrap().as_str() == Some("X") {
                let tid = e.get("tid").unwrap().as_f64().unwrap() as i64;
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                assert!(*last_ts.get(&tid).unwrap_or(&f64::MIN) <= ts);
                last_ts.insert(tid, ts);
                assert_eq!(
                    e.get("args").unwrap().get("bytes").unwrap().as_f64(),
                    Some(1024.0)
                );
            }
        }
        assert_eq!(last_ts.len(), 2);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let doc = jsonl(&sample_events());
        let lines: Vec<&str> = doc.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            let v = Json::parse(line).expect("valid JSONL line");
            assert!(v.get("name").is_some() && v.get("dur_us").is_some());
        }
    }

    #[test]
    fn stage_rows_aggregate_and_percentiles() {
        let rows = stage_rows(&sample_events());
        assert_eq!(rows[0].name, "train/iteration"); // largest total first
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total, Duration::from_micros(195));
        assert_eq!(rows[0].p50, Duration::from_micros(95));
        assert_eq!(rows[0].p99, Duration::from_micros(100));
        let table = stage_table(&sample_events());
        assert!(table.contains("train/iteration"));
        assert!(table.contains("wall"));
    }

    #[test]
    fn chrome_trace_gives_each_rank_lane_its_own_tid() {
        let mut events = sample_events();
        let mut comm = ev("comm/allreduce", 0, 0, 3, 10, 30);
        comm.lane = Some("comm");
        events.push(comm);
        let doc = chrome_trace(&events);
        let parsed = Json::parse(&doc).expect("valid JSON");
        let evs = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 timeline rows now: rank 0, rank 0 comm, rank 1.
        let names: Vec<String> = evs
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 0 comm", "rank 1"]);
        // The lane event lands on tid 1, between rank 0 (tid 0) and rank 1 (tid 2).
        let lane_tids: Vec<i64> = evs
            .iter()
            .filter(|e| {
                e.get("ph").unwrap().as_str() == Some("X")
                    && e.get("ts").unwrap().as_f64() == Some(10.0)
            })
            .map(|e| e.get("tid").unwrap().as_f64().unwrap() as i64)
            .collect();
        assert_eq!(lane_tids, vec![1]);
    }

    #[test]
    fn wall_time_spans_min_start_to_max_end() {
        assert_eq!(wall_time(&sample_events()), Duration::from_micros(100));
        assert_eq!(wall_time(&[]), Duration::ZERO);
    }

    #[test]
    fn exports_are_deterministic_and_round_trip() {
        // Shuffled input (and attrs attached in different orders) must
        // produce byte-identical documents, and hostile attr strings
        // must survive a parse round-trip.
        let mut a = ev("train/iteration", 1, 0, 9, 200, 95);
        a.attrs = vec![
            ("zeta", AttrValue::Str("a\"b\\c\nd".into())),
            ("alpha", AttrValue::F64(2.5)),
        ];
        let mut b = a.clone();
        b.attrs.reverse();
        let mut events = sample_events();
        events.push(a);
        let mut reversed: Vec<SpanEvent> = events.iter().rev().cloned().collect();
        reversed[0] = b; // same event as `a`, attrs in the other order

        assert_eq!(chrome_trace(&events), chrome_trace(&reversed));
        assert_eq!(jsonl(&events), jsonl(&reversed));

        // Round-trip: every JSONL line parses and the hostile string
        // comes back intact, with attrs in sorted key order.
        let doc = jsonl(&events);
        let hostile = doc
            .lines()
            .map(|l| Json::parse(l).expect("valid line"))
            .find(|v| v.get("zeta").is_some())
            .expect("event with hostile attr present");
        assert_eq!(hostile.get("zeta").unwrap().as_str(), Some("a\"b\\c\nd"));
        assert_eq!(hostile.get("alpha").unwrap().as_f64(), Some(2.5));
        let trace = Json::parse(&chrome_trace(&events)).expect("valid trace");
        let args: Vec<&Json> = trace
            .get("traceEvents")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(|e| e.get("args"))
            .filter(|a| a.get("zeta").is_some())
            .collect();
        assert_eq!(args.len(), 1);
        assert_eq!(args[0].get("zeta").unwrap().as_str(), Some("a\"b\\c\nd"));
    }

    #[test]
    fn prometheus_exposition_is_valid_and_lints_clean() {
        let registry = Registry::new();
        registry.counter("comm/ops").add(17);
        registry.gauge("kfac/damping").set(0.003);
        registry.gauge("train/loss").set(f64::NAN); // non-finite survives
        let h = registry.histogram("train/iter_time_us");
        for v in [10.0, 20.0, 20.0, 4000.0] {
            h.record(v);
        }
        registry.record_raw(ev("train/iteration", 0, 0, 0, 0, 100));

        let doc = prometheus(&registry);
        lint_prometheus(&doc).expect("self-emitted exposition lints clean");
        assert!(doc.contains("# TYPE comm_ops counter"));
        assert!(doc.contains("comm_ops 17"));
        assert!(doc.contains("kfac_damping 0.003"));
        assert!(doc.contains("train_loss NaN"));
        assert!(doc.contains("# TYPE train_iter_time_us histogram"));
        assert!(doc.contains("train_iter_time_us_bucket{le=\"+Inf\"} 4"));
        assert!(doc.contains("train_iter_time_us_count 4"));
        assert!(doc.contains("train_iter_time_us_p50"));
        assert!(doc.contains("kfac_stage_count{stage=\"train/iteration\"} 1"));
    }

    /// The mixed-precision metric families — per-dtype wire-byte
    /// counters, precision-policy gauges, and the compensated-EMA
    /// residual histogram — must survive name sanitization and lint
    /// clean, since CI scrapes them off the live `/metrics` endpoint.
    #[test]
    fn mixed_precision_families_export_and_lint_clean() {
        let registry = Registry::new();
        for (name, bytes) in [
            ("comm/bytes/dtype/f32", 4096u64),
            ("comm/bytes/dtype/bf16", 2052),
            ("comm/bytes/dtype/f16", 0),
        ] {
            registry.counter(name).add(bytes);
        }
        for stage in [
            "capture",
            "factor_gram",
            "factor_ema",
            "eig",
            "precond",
            "grad_wire",
            "factor_wire",
        ] {
            registry
                .gauge(&format!("kfac/precision/{stage}_bits"))
                .set(16.0);
        }
        let h = registry.histogram("train/ema_compensation_mag");
        for mag in [1e-6, 3e-5, 2e-4] {
            h.record(mag);
        }

        let doc = prometheus(&registry);
        lint_prometheus(&doc).expect("mixed-precision families lint clean");
        assert!(doc.contains("# TYPE comm_bytes_dtype_bf16 counter"));
        assert!(doc.contains("comm_bytes_dtype_bf16 2052"));
        assert!(doc.contains("comm_bytes_dtype_f16 0"));
        assert!(doc.contains("kfac_precision_grad_wire_bits 16"));
        assert!(doc.contains("# TYPE train_ema_compensation_mag histogram"));
        assert!(doc.contains("train_ema_compensation_mag_count 3"));

        // The stage-table footer summarizes the same histogram.
        let footer = numerics_footer(&registry).expect("footer present");
        assert!(footer.contains("n 3"), "{footer}");
        // All-f32 runs bank nothing and emit no footer.
        assert!(numerics_footer(&Registry::new()).is_none());
    }

    #[test]
    fn prometheus_lint_rejects_violations() {
        // Sample without TYPE.
        assert!(lint_prometheus("foo 1\n").is_err());
        // TYPE but no HELP.
        assert!(lint_prometheus("# TYPE foo counter\nfoo 1\n").is_err());
        // Non-monotone cumulative buckets.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("monotone"));
        // Missing +Inf bucket.
        let bad = "# HELP h x\n# TYPE h histogram\nh_bucket{le=\"1\"} 5\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("+Inf"));
        // _count disagreeing with the +Inf bucket.
        let bad = "# HELP h x\n# TYPE h histogram\n\
                   h_bucket{le=\"+Inf\"} 5\nh_count 4\n";
        assert!(lint_prometheus(bad).unwrap_err().contains("_count"));
        // A correct document passes.
        let good = "# HELP h x\n# TYPE h histogram\n\
                    h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 5\nh_sum 9.5\nh_count 5\n";
        lint_prometheus(good).expect("good doc");
    }
}
