//! Typed metrics: monotonic counters, gauges, and log-scale histograms
//! with percentile queries. All handles are cheap `Arc` clones and all
//! updates are lock-free atomics, so hot paths (per-collective byte
//! counts, per-iteration timings) can record without contention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter (events, bytes, invocations).
#[derive(Clone, Default, Debug)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64` (loss, learning rate, queue
/// depth). Stored as raw bits in an atomic.
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-scale bucket layout: `SUB` sub-buckets per octave (power of two),
/// covering 2^MIN_EXP .. 2^MAX_EXP. With 16 sub-buckets per octave the
/// worst-case relative error of a percentile estimate is 2^(1/16) - 1
/// ≈ 4.4%, comfortably inside the 5% the acceptance tests allow.
const SUB: f64 = 16.0;
const MIN_EXP: f64 = -30.0; // ~1e-9: below a nanosecond (in seconds)
const MAX_EXP: f64 = 34.0; // ~1.7e10: far above any duration or byte count
const NBUCKETS: usize = ((MAX_EXP - MIN_EXP) * SUB) as usize; // 1024

struct HistInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 sum, CAS-updated
}

/// Lock-free log-scale histogram over positive `f64` samples, with
/// percentile queries. Non-positive samples clamp into the lowest
/// bucket. Percentiles return the geometric midpoint of the selected
/// bucket, so their relative error is bounded by the bucket width
/// (≈4.4%), independent of the sample distribution.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: (0..NBUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            }),
        }
    }
}

fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let idx = ((v.log2() - MIN_EXP) * SUB).floor();
    idx.clamp(0.0, (NBUCKETS - 1) as f64) as usize
}

fn bucket_midpoint(idx: usize) -> f64 {
    // Geometric midpoint of [2^(lo), 2^(lo + 1/SUB)).
    let lo = MIN_EXP + idx as f64 / SUB;
    (lo + 0.5 / SUB).exp2()
}

fn bucket_upper_bound(idx: usize) -> f64 {
    (MIN_EXP + (idx as f64 + 1.0) / SUB).exp2()
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: f64) {
        self.inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() {
            // CAS loop: f64 addition has no native atomic.
            let mut cur = self.inner.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + v).to_bits();
                match self.inner.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.inner.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimate the `p`-th percentile (`p` in 0..=100). Returns 0 for an
    /// empty histogram. `p` is clamped into `[0, 100]` (a NaN `p` behaves
    /// like 0), `p ≤ 0` selects the lowest occupied bucket, `p ≥ 100` the
    /// highest, and a single-sample histogram answers every percentile
    /// with that sample's bucket midpoint.
    pub fn percentile(&self, p: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        // Nearest-rank: the sample at 1-based rank ceil(p/100 * n).
        // `.max(1.0)` also absorbs NaN (f64::max ignores it), so a NaN
        // `p` degrades to the first occupied bucket instead of garbage.
        let target = ((p.clamp(0.0, 100.0) / 100.0) * n as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= target {
                return bucket_midpoint(idx);
            }
        }
        // Reachable when a concurrent `record` bumped `count` between our
        // load and the bucket walk; answer with the top occupied bucket.
        bucket_midpoint(NBUCKETS - 1)
    }

    /// Occupied buckets as `(upper_bound, cumulative_count)` pairs in
    /// ascending bound order — the cumulative-bucket view Prometheus
    /// exposition wants. Counts are monotonically non-decreasing; the
    /// last entry's count equals [`Histogram::count`] at snapshot time
    /// (modulo concurrent recording).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                cumulative += c;
                out.push((bucket_upper_bound(idx), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        let c2 = c.clone();
        c.add(40);
        c2.inc();
        c2.inc();
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }

    #[test]
    fn histogram_percentiles_within_bucket_error() {
        let h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500_500.0).abs() < 1e-6);
        for (p, expect) in [(50.0, 500.0), (95.0, 950.0), (99.0, 990.0)] {
            let got = h.percentile(p);
            let rel = (got - expect).abs() / expect;
            assert!(rel < 0.05, "p{p}: got {got}, want ~{expect} (rel {rel})");
        }
    }

    #[test]
    fn histogram_handles_empty_zero_and_extremes() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0.0);
        h.record(0.0);
        h.record(-3.0);
        h.record(f64::INFINITY);
        h.record(1e300); // clamps into top bucket
        assert_eq!(h.count(), 4);
        assert!(h.percentile(100.0) > 0.0);
    }

    #[test]
    fn percentile_edge_cases_pinned() {
        // Empty: every percentile is exactly 0, including weird p.
        let h = Histogram::new();
        for p in [-10.0, 0.0, 50.0, 100.0, 1e9, f64::NAN] {
            assert_eq!(h.percentile(p), 0.0, "empty hist, p={p}");
        }

        // Single sample: every percentile answers that sample's bucket
        // midpoint — the same value regardless of p.
        let h = Histogram::new();
        h.record(7.0);
        let mid = h.percentile(50.0);
        assert!((mid - 7.0).abs() / 7.0 < 0.05, "midpoint {mid} not ~7");
        for p in [-10.0, 0.0, 0.001, 99.999, 100.0, 250.0, f64::NAN] {
            assert_eq!(h.percentile(p), mid, "single sample, p={p}");
        }

        // Two well-separated samples: p≤0 pins to the low bucket,
        // p≥100 to the high bucket, and p=50 (rank ceil(0.5*2)=1) is
        // the low one under nearest-rank semantics.
        let h = Histogram::new();
        h.record(1.0);
        h.record(1024.0);
        let lo = h.percentile(0.0);
        let hi = h.percentile(100.0);
        assert!((lo - 1.0).abs() < 0.05, "p0 {lo} not ~1");
        assert!((hi - 1024.0).abs() / 1024.0 < 0.05, "p100 {hi} not ~1024");
        assert_eq!(h.percentile(-5.0), lo);
        assert_eq!(h.percentile(150.0), hi);
        assert_eq!(h.percentile(50.0), lo);
        assert_eq!(h.percentile(51.0), hi);
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_complete() {
        let h = Histogram::new();
        for v in [0.5, 1.0, 2.0, 2.0, 1000.0] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_count = 0u64;
        for &(bound, count) in &buckets {
            assert!(bound > prev_bound, "bounds must ascend");
            assert!(count >= prev_count, "cumulative counts must not drop");
            prev_bound = bound;
            prev_count = count;
        }
        assert_eq!(buckets.last().unwrap().1, h.count());
        assert!(h.cumulative_buckets() == buckets, "snapshot is stable");
        assert!(Histogram::new().cumulative_buckets().is_empty());
    }

    #[test]
    fn histogram_concurrent_records_sum_exactly() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        h.record(2.0);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 8000.0).abs() < 1e-9);
    }
}
