//! Watchdog: a small rule engine evaluated over the live [`Registry`].
//!
//! Rules read only well-known metric names (heartbeat gauge, loss and
//! staleness gauges, retry counters), so the watchdog has no coupling to
//! the trainer beyond the metric-name contract. Each evaluation produces
//! a [`HealthReport`] — served as JSON by the metrics server's `/health`
//! endpoint — and the typed [`RuleKind`] on each finding lets the
//! degradation ladder in the harness map watchdog verdicts onto the same
//! fault signals collective errors already raise.

use std::time::Instant;

use crate::json::{escape_into, number};
use crate::registry::Registry;

/// Metric names the watchdog reads. Producers (trainer, preconditioner,
/// collectives) record under these names; keeping them in one place is
/// the whole name contract.
pub mod names {
    /// Gauge: µs-since-registry-origin of the most recent iteration
    /// heartbeat, across any rank.
    pub const HEARTBEAT_US: &str = "train/heartbeat_us";
    /// Gauge: most recent training loss.
    pub const LOSS: &str = "train/loss";
    /// Gauge: iterations since the K-FAC eigenbasis was last refreshed.
    pub const STALENESS_AGE: &str = "kfac/staleness_age";
    /// Counter: collective operations attempted.
    pub const COMM_OPS: &str = "comm/ops";
    /// Counter: collective operations that needed a retry.
    pub const COMM_RETRIES: &str = "comm/retries";
    /// Gauge: current membership epoch (0 = boot group; +1 per
    /// committed shrink).
    pub const MEMBERSHIP_EPOCH: &str = "comm/membership_epoch";
    /// Gauge: peers currently observed dead and not yet fenced out by a
    /// membership shrink. Non-zero means the group is broken and must
    /// reconfigure (or abort).
    pub const DEAD_PEERS: &str = "comm/dead_peers";
}

/// Which rule produced a finding. The harness maps these onto
/// degradation-ladder signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleKind {
    /// No iteration heartbeat within the configured stall window.
    HeartbeatStall,
    /// A monitored gauge went NaN/±Inf (diverging training).
    NonFinite,
    /// K-FAC factor staleness exceeded its ceiling.
    StalenessCeiling,
    /// Collective retry rate above threshold (flaky fabric).
    RetryRate,
    /// A peer rank is observed dead and not yet fenced out by a
    /// membership shrink: the group cannot complete collectives until it
    /// reconfigures.
    PeerDead,
}

impl RuleKind {
    fn as_str(self) -> &'static str {
        match self {
            RuleKind::HeartbeatStall => "heartbeat_stall",
            RuleKind::NonFinite => "non_finite",
            RuleKind::StalenessCeiling => "staleness_ceiling",
            RuleKind::RetryRate => "retry_rate",
            RuleKind::PeerDead => "peer_dead",
        }
    }
}

/// Finding severity. `Critical` findings make the overall report
/// critical and `/health` answer HTTP 503.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational; healthy.
    Ok,
    /// Degraded but progressing.
    Warn,
    /// Stalled or diverging; intervention (or ladder escalation) needed.
    Critical,
}

impl Severity {
    fn as_str(self) -> &'static str {
        match self {
            Severity::Ok => "ok",
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule that fired.
    pub rule: RuleKind,
    /// How bad.
    pub severity: Severity,
    /// Human-readable detail (includes the observed values).
    pub message: String,
}

/// Outcome of one watchdog evaluation.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst severity across findings (`Ok` when no rule fired).
    pub severity: Severity,
    /// Rule violations, worst first.
    pub findings: Vec<Finding>,
    /// Evaluation time, µs since the registry origin.
    pub checked_at_us: u64,
}

impl HealthReport {
    /// Serialize as a JSON document (the `/health` response body).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"status\": ");
        escape_into(&mut out, self.severity.as_str());
        out.push_str(&format!(", \"checked_at_us\": {}", self.checked_at_us));
        out.push_str(", \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"rule\": ");
            escape_into(&mut out, f.rule.as_str());
            out.push_str(", \"severity\": ");
            escape_into(&mut out, f.severity.as_str());
            out.push_str(", \"message\": ");
            escape_into(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Watchdog thresholds. Defaults suit the in-process smoke runs; real
/// deployments would widen the stall window.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// Max µs between iteration heartbeats before `HeartbeatStall`
    /// fires (only once a first heartbeat has been seen).
    pub heartbeat_stall_us: u64,
    /// `StalenessCeiling` warns above this factor age (iterations) and
    /// goes critical at twice it.
    pub staleness_ceiling: f64,
    /// `RetryRate` warns when retries/ops exceeds this fraction and
    /// goes critical at twice it. Evaluated only after `min_comm_ops`.
    pub retry_rate_warn: f64,
    /// Minimum collective-op count before the retry-rate rule engages
    /// (avoids firing on the first retried op of a run).
    pub min_comm_ops: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            heartbeat_stall_us: 30_000_000, // 30 s
            staleness_ceiling: 100.0,
            retry_rate_warn: 0.05,
            min_comm_ops: 20,
        }
    }
}

/// Rule engine over a registry. Cheap to clone; evaluation reads only
/// metric snapshots (no locks held across rules).
#[derive(Debug, Clone)]
pub struct Watchdog {
    registry: Registry,
    config: WatchdogConfig,
}

impl Watchdog {
    /// Watchdog over `registry` with the given thresholds.
    pub fn new(registry: Registry, config: WatchdogConfig) -> Self {
        Watchdog { registry, config }
    }

    /// Run every rule now and report.
    pub fn evaluate(&self) -> HealthReport {
        let now_us = self.registry.micros_at(Instant::now());
        let mut findings = Vec::new();

        // Rule 1: heartbeat stall. The heartbeat gauge holds the µs
        // timestamp of the last completed iteration on any rank; a zero
        // gauge means training has not started (not a stall).
        let heartbeat = self.registry.gauge(names::HEARTBEAT_US).get();
        if heartbeat > 0.0 {
            let age = now_us.saturating_sub(heartbeat as u64);
            if age > self.config.heartbeat_stall_us {
                findings.push(Finding {
                    rule: RuleKind::HeartbeatStall,
                    severity: Severity::Critical,
                    message: format!(
                        "no heartbeat for {age} µs (limit {} µs)",
                        self.config.heartbeat_stall_us
                    ),
                });
            }
        }

        // Rule 2: non-finite values in any gauge. A NaN loss or
        // condition number is the canonical divergence signal.
        for (name, value) in self.registry.gauges() {
            if !value.is_finite() {
                findings.push(Finding {
                    rule: RuleKind::NonFinite,
                    severity: Severity::Critical,
                    message: format!("gauge '{name}' is {}", number_or_nan(value)),
                });
            }
        }

        // Rule 3: factor staleness ceiling.
        let staleness = self.registry.gauge(names::STALENESS_AGE).get();
        if staleness.is_finite() && staleness > self.config.staleness_ceiling {
            let severity = if staleness > 2.0 * self.config.staleness_ceiling {
                Severity::Critical
            } else {
                Severity::Warn
            };
            findings.push(Finding {
                rule: RuleKind::StalenessCeiling,
                severity,
                message: format!(
                    "K-FAC factors {staleness:.0} iterations stale (ceiling {:.0})",
                    self.config.staleness_ceiling
                ),
            });
        }

        // Rule 4: collective retry rate.
        let ops = self.registry.counter(names::COMM_OPS).get();
        let retries = self.registry.counter(names::COMM_RETRIES).get();
        if ops >= self.config.min_comm_ops {
            let rate = retries as f64 / ops as f64;
            if rate > self.config.retry_rate_warn {
                let severity = if rate > 2.0 * self.config.retry_rate_warn {
                    Severity::Critical
                } else {
                    Severity::Warn
                };
                findings.push(Finding {
                    rule: RuleKind::RetryRate,
                    severity,
                    message: format!(
                        "collective retry rate {rate:.3} ({retries}/{ops} ops, warn at {:.3})",
                        self.config.retry_rate_warn
                    ),
                });
            }
        }

        // Rule 5: dead peers. The communicator layer sets this gauge when
        // a rank is observed permanently failed; a successful membership
        // shrink fences the dead ranks and resets it to zero. Non-zero is
        // always critical — no collective can complete.
        let dead_peers = self.registry.gauge(names::DEAD_PEERS).get();
        if dead_peers.is_finite() && dead_peers > 0.0 {
            let epoch = self.registry.gauge(names::MEMBERSHIP_EPOCH).get();
            findings.push(Finding {
                rule: RuleKind::PeerDead,
                severity: Severity::Critical,
                message: format!(
                    "{dead_peers:.0} peer(s) observed dead at membership epoch {epoch:.0}; \
                     group must shrink or abort"
                ),
            });
        }

        findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
        let severity = findings.first().map(|f| f.severity).unwrap_or(Severity::Ok);
        HealthReport {
            severity,
            findings,
            checked_at_us: now_us,
        }
    }
}

fn number_or_nan(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        format!("{}Inf", if v > 0.0 { "+" } else { "-" })
    } else {
        number(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn wd(registry: &Registry) -> Watchdog {
        Watchdog::new(
            registry.clone(),
            WatchdogConfig {
                heartbeat_stall_us: 1_000,
                staleness_ceiling: 10.0,
                retry_rate_warn: 0.1,
                min_comm_ops: 5,
            },
        )
    }

    #[test]
    fn quiet_registry_is_healthy() {
        let registry = Registry::new();
        let report = wd(&registry).evaluate();
        assert_eq!(report.severity, Severity::Ok);
        assert!(report.findings.is_empty());
        let json = Json::parse(&report.to_json()).unwrap();
        assert_eq!(json.get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn stalled_heartbeat_goes_critical() {
        let registry = Registry::new();
        registry.gauge(names::HEARTBEAT_US).set(1.0); // ancient
        std::thread::sleep(std::time::Duration::from_millis(3));
        let report = wd(&registry).evaluate();
        assert_eq!(report.severity, Severity::Critical);
        assert_eq!(report.findings[0].rule, RuleKind::HeartbeatStall);
    }

    #[test]
    fn nonfinite_gauge_goes_critical() {
        let registry = Registry::new();
        registry.gauge(names::LOSS).set(f64::NAN);
        let report = wd(&registry).evaluate();
        assert_eq!(report.severity, Severity::Critical);
        assert!(report
            .findings
            .iter()
            .any(|f| f.rule == RuleKind::NonFinite));
        // The report itself must still be valid JSON.
        Json::parse(&report.to_json()).unwrap();
    }

    #[test]
    fn staleness_warns_then_goes_critical() {
        let registry = Registry::new();
        registry.gauge(names::STALENESS_AGE).set(15.0);
        assert_eq!(wd(&registry).evaluate().severity, Severity::Warn);
        registry.gauge(names::STALENESS_AGE).set(25.0);
        assert_eq!(wd(&registry).evaluate().severity, Severity::Critical);
    }

    #[test]
    fn dead_peer_goes_critical_until_fenced() {
        let registry = Registry::new();
        registry.gauge(names::DEAD_PEERS).set(1.0);
        registry.gauge(names::MEMBERSHIP_EPOCH).set(0.0);
        let report = wd(&registry).evaluate();
        assert_eq!(report.severity, Severity::Critical);
        assert_eq!(report.findings[0].rule, RuleKind::PeerDead);
        // A successful shrink fences the dead rank and bumps the epoch:
        // the rule clears.
        registry.gauge(names::DEAD_PEERS).set(0.0);
        registry.gauge(names::MEMBERSHIP_EPOCH).set(1.0);
        assert_eq!(wd(&registry).evaluate().severity, Severity::Ok);
    }

    #[test]
    fn retry_rate_needs_minimum_volume() {
        let registry = Registry::new();
        registry.counter(names::COMM_OPS).add(2);
        registry.counter(names::COMM_RETRIES).add(2);
        assert_eq!(wd(&registry).evaluate().severity, Severity::Ok);
        registry.counter(names::COMM_OPS).add(8); // now 10 ops, 2 retries
        let report = wd(&registry).evaluate();
        assert_eq!(report.severity, Severity::Warn);
        assert_eq!(report.findings[0].rule, RuleKind::RetryRate);
    }
}
