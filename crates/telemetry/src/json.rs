//! Minimal JSON value model, parser, and string escaping.
//!
//! The exporters need to *emit* JSON and the golden-file tests need to
//! *verify* that emitted traces are well-formed and structurally correct;
//! with no external JSON crate available offline, this module carries
//! both directions. It is a strict recursive-descent parser for the
//! standard JSON grammar (no extensions, no trailing commas).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order is not preserved (sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field access.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Number view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our exporters;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    c => return Err(format!("bad escape '\\{}'", *c as char)),
                }
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let s = &b[*pos..];
                let text = unsafe { std::str::from_utf8_unchecked(s) };
                let ch = text.chars().next().unwrap();
                if (ch as u32) < 0x20 {
                    return Err(format!("unescaped control char at byte {}", *pos));
                }
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad number bytes")?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render an `f64` as a JSON number. JSON has no NaN/Infinity; those
/// render as `null`-safe 0 to keep documents valid.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\" 1}",
            "[1] junk",
            "\"unterminated",
            "{'a': 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = Json::parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn number_rendering_is_valid_json() {
        for (v, want) in [(1.0, "1"), (2.5, "2.5"), (-0.0, "0"), (f64::NAN, "0")] {
            assert_eq!(number(v), want);
        }
        assert_eq!(
            Json::parse(&number(1234567.0)).unwrap().as_f64(),
            Some(1234567.0)
        );
    }
}
