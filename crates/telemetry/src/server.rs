//! Live metrics plane: a dependency-free localhost HTTP server exposing
//! the registry while a run is in flight.
//!
//! One background thread accepts connections on `127.0.0.1` and answers:
//!
//! - `GET /metrics` — Prometheus text exposition
//!   ([`crate::export::prometheus`]) over the live registry;
//! - `GET /health`  — the watchdog's [`crate::watchdog::HealthReport`]
//!   as JSON (HTTP 503 once any finding is critical), or a plain
//!   `{"status": "ok"}` when no watchdog is attached.
//!
//! Scrapes read lock-free snapshots; the training hot path never blocks
//! on a scrape. Binding is loopback-only by design — this is a
//! diagnostics plane, not a public endpoint.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::export;
use crate::registry::Registry;
use crate::watchdog::{Severity, Watchdog};

/// Handle to a running metrics server. Dropping it stops the background
/// thread (the listener is unblocked with a self-connection).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl MetricsServer {
    /// Bind `127.0.0.1:port` (`port` 0 picks an ephemeral port; see
    /// [`MetricsServer::addr`]) and serve `registry` until the handle
    /// is dropped. `watchdog` backs `/health` when present.
    pub fn start(
        registry: Registry,
        port: u16,
        watchdog: Option<Watchdog>,
    ) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("kfac-metrics".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Serve inline: scrapes are rare and tiny, so one
                    // thread is plenty and keeps shutdown trivial.
                    let _ = serve_one(stream, &registry, watchdog.as_ref());
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop so the thread observes the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    watchdog: Option<&Watchdog>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;

    // Read until the end of the request head (or a small cap — we only
    // need the request line).
    let mut buf = [0u8; 2048];
    let mut len = 0usize;
    loop {
        match stream.read(&mut buf[len..]) {
            Ok(0) => break,
            Ok(n) => {
                len += n;
                if buf[..len].windows(4).any(|w| w == b"\r\n\r\n") || len == buf.len() {
                    break;
                }
            }
            Err(_) => break, // timeout or reset: answer what we have
        }
    }
    let head = String::from_utf8_lossy(&buf[..len]);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let path = path.split('?').next().unwrap_or(path);

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                export::prometheus(registry),
            ),
            "/health" => match watchdog {
                Some(wd) => {
                    let report = wd.evaluate();
                    let status = if report.severity == Severity::Critical {
                        "503 Service Unavailable"
                    } else {
                        "200 OK"
                    };
                    (status, "application/json", report.to_json())
                }
                None => (
                    "200 OK",
                    "application/json",
                    "{\"status\": \"ok\", \"findings\": []}".to_string(),
                ),
            },
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics or /health\n".to_string(),
            ),
        }
    };

    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::watchdog::WatchdogConfig;

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_metrics_and_health() {
        let registry = Registry::new();
        registry.counter("comm/ops").add(3);
        registry.histogram("train/iter_time_us").record(1500.0);
        let watchdog = Watchdog::new(registry.clone(), WatchdogConfig::default());
        let server =
            MetricsServer::start(registry.clone(), 0, Some(watchdog)).expect("bind ephemeral");
        let addr = server.addr();

        let (head, body) = http_get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        crate::export::lint_prometheus(&body).expect("served exposition lints clean");
        assert!(body.contains("comm_ops 3"));

        let (head, body) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        let parsed = Json::parse(&body).expect("health is JSON");
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("ok"));

        let (head, _) = http_get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }

    #[test]
    fn health_is_503_when_critical() {
        let registry = Registry::new();
        registry.gauge("train/loss").set(f64::INFINITY);
        let watchdog = Watchdog::new(registry.clone(), WatchdogConfig::default());
        let server = MetricsServer::start(registry, 0, Some(watchdog)).expect("bind");
        let (head, body) = http_get(server.addr(), "/health");
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("status").unwrap().as_str(), Some("critical"));
    }

    #[test]
    fn drop_stops_the_server_and_frees_the_port() {
        let registry = Registry::new();
        let server = MetricsServer::start(registry, 0, None).expect("bind");
        let addr = server.addr();
        let (head, _) = http_get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200"));
        drop(server);
        // The port must be rebindable after drop (thread joined, listener
        // closed).
        let _relisten = TcpListener::bind(addr).expect("port released");
    }
}
