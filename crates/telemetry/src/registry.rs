//! The shared telemetry registry: lock-free span collection plus named
//! metric handles, shared by every rank of a training run.

use std::collections::BTreeMap;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::{Counter, Gauge, Histogram};

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (byte counts, layer indices, iteration numbers).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Short string (traffic class names, strategy labels).
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}

impl From<i32> for AttrValue {
    fn from(v: i32) -> Self {
        AttrValue::I64(v as i64)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<f32> for AttrValue {
    fn from(v: f32) -> Self {
        AttrValue::F64(v as f64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// One completed span, as stored in the registry.
///
/// Times are microseconds since the registry's origin instant, so events
/// from different rank threads share one clock and can be laid out on a
/// common timeline (this is also exactly what the Chrome trace format
/// wants for `ts`/`dur`).
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name, conventionally `area/stage` (e.g. `kfac/eig_comp`).
    pub name: &'static str,
    /// Rank whose thread recorded the span.
    pub rank: usize,
    /// Worker lane within the rank (e.g. `"comm"`, `"w1"`); `None` for
    /// the rank's main thread. Exporters give each `(rank, lane)` pair
    /// its own timeline row so overlap is visible.
    pub lane: Option<&'static str>,
    /// Nesting depth at entry (0 = top level).
    pub depth: u32,
    /// Per-thread completion sequence number; orders same-rank events
    /// even when their timestamps tie.
    pub seq: u64,
    /// Start, µs since the registry origin.
    pub start_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Typed attributes attached via [`crate::Span::with`].
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl SpanEvent {
    /// End time, µs since the registry origin.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Aggregate over all recorded spans with one name (and optionally one
/// rank): invocation count and summed duration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Summed span duration.
    pub total: Duration,
}

/// Lock-free stack of event batches (a Treiber stack). Rank threads push
/// batches concurrently without contending on a lock; readers swap the
/// whole stack out at once.
struct EventStack {
    head: AtomicPtr<StackNode>,
}

struct StackNode {
    batch: Vec<SpanEvent>,
    next: *mut StackNode,
}

// SAFETY: nodes are heap-allocated, reachable only through `head`, and
// transferred wholesale by `swap`; the contained events are Send.
unsafe impl Send for EventStack {}
unsafe impl Sync for EventStack {}

impl EventStack {
    const fn new() -> Self {
        EventStack {
            head: AtomicPtr::new(ptr::null_mut()),
        }
    }

    fn push(&self, batch: Vec<SpanEvent>) {
        if batch.is_empty() {
            return;
        }
        let node = Box::into_raw(Box::new(StackNode {
            batch,
            next: ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            // SAFETY: `node` is uniquely owned until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange(head, node, Ordering::Release, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    fn drain(&self) -> Vec<SpanEvent> {
        let mut node = self.head.swap(ptr::null_mut(), Ordering::AcqRel);
        let mut out = Vec::new();
        while !node.is_null() {
            // SAFETY: the swap made this list exclusively ours.
            let owned = unsafe { Box::from_raw(node) };
            node = owned.next;
            out.extend(owned.batch);
        }
        out
    }
}

impl Drop for EventStack {
    fn drop(&mut self) {
        self.drain();
    }
}

struct Inner {
    origin: Instant,
    pending: EventStack,
    collected: Mutex<Vec<SpanEvent>>,
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// Shared telemetry registry. Cheap to clone (an `Arc` handle); one
/// registry serves all ranks of a run. Rank threads attach themselves
/// with [`Registry::install`]; spans they record flow into the registry
/// through lock-free batch publication.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("events", &self.events().len())
            .finish()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Create an empty registry; its clock origin is "now".
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(Inner {
                origin: Instant::now(),
                pending: EventStack::new(),
                collected: Mutex::new(Vec::new()),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Microseconds from the registry origin to `t` (0 if `t` precedes it).
    pub fn micros_at(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.inner.origin).as_micros() as u64
    }

    /// Publish a batch of completed spans (called by the thread-local
    /// recorder on flush; lock-free).
    pub(crate) fn publish(&self, batch: Vec<SpanEvent>) {
        self.inner.pending.push(batch);
    }

    /// Record a single pre-built event directly. Used by the cluster
    /// simulator to emit synthetic timelines through the same registry
    /// the live trainer uses.
    pub fn record_raw(&self, event: SpanEvent) {
        self.inner
            .collected
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Snapshot of every recorded span, sorted by `(rank, start_us, seq)`.
    ///
    /// Spans still buffered thread-locally by live [`crate::InstallGuard`]s
    /// are not included until those guards flush (drop); call this after
    /// rank threads finish, or accept a slightly stale view.
    pub fn events(&self) -> Vec<SpanEvent> {
        let mut collected = self
            .inner
            .collected
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        collected.extend(self.inner.pending.drain());
        let mut out = collected.clone();
        drop(collected);
        out.sort_by_key(|a| (a.rank, a.start_us, a.seq));
        out
    }

    /// Count + summed duration of spans named `name`, optionally
    /// restricted to one rank.
    pub fn span_agg(&self, name: &str, rank: Option<usize>) -> SpanAgg {
        let mut agg = SpanAgg::default();
        for ev in self.events() {
            if ev.name == name && rank.is_none_or(|r| ev.rank == r) {
                agg.count += 1;
                agg.total += Duration::from_micros(ev.dur_us);
            }
        }
        agg
    }

    /// Get or create the monotonic counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create the log-scale histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Snapshot of all counters as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect()
    }

    /// Snapshot of all gauges as `(name, value)`, sorted by name.
    pub fn gauges(&self) -> Vec<(String, f64)> {
        self.inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect()
    }

    /// Snapshot of all histograms as `(name, handle)`, sorted by name.
    pub fn histograms(&self) -> Vec<(String, Histogram)> {
        self.inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, h)| (k.clone(), h.clone()))
            .collect()
    }
}
