//! Property tests for the dataset substrate: determinism, balance,
//! shard disjointness and coverage across arbitrary configurations.

use kfac_data::sampler::ShardedSampler;
use kfac_data::synthetic::{Dataset, SyntheticConfig, SyntheticImages};
use proptest::prelude::*;
use std::collections::HashSet;

fn config(classes: usize, len: usize, hw: usize, seed: u64, augment: bool) -> SyntheticConfig {
    SyntheticConfig {
        classes,
        len,
        channels: 3,
        height: hw,
        width: hw,
        noise: 0.5,
        class_overlap: 0.5,
        modes: 3,
        max_shift: 1,
        flip: true,
        seed,
        split: 0,
        augment,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling is deterministic and every label is balanced.
    #[test]
    fn deterministic_and_balanced(
        classes in 2usize..8,
        reps in 2usize..6,
        hw in 4usize..10,
        seed in any::<u64>(),
    ) {
        let len = classes * reps;
        let ds = SyntheticImages::new(config(classes, len, hw, seed, true));
        let mut counts = vec![0usize; classes];
        let mut buf1 = vec![0.0f32; 3 * hw * hw];
        let mut buf2 = vec![0.0f32; 3 * hw * hw];
        for i in 0..len {
            let l1 = ds.sample(i, 5, &mut buf1);
            let l2 = ds.sample(i, 5, &mut buf2);
            prop_assert_eq!(l1, l2);
            prop_assert_eq!(&buf1, &buf2);
            counts[l1] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c == reps));
    }

    /// All samples are finite with bounded magnitude.
    #[test]
    fn samples_are_finite(
        seed in any::<u64>(),
        idx_frac in 0.0f64..1.0,
        variant in 0u64..100,
    ) {
        let ds = SyntheticImages::new(config(4, 40, 6, seed, true));
        let idx = ((idx_frac * 39.0) as usize).min(39);
        let mut buf = vec![0.0f32; 108];
        let _ = ds.sample(idx, variant, &mut buf);
        prop_assert!(buf.iter().all(|v| v.is_finite() && v.abs() < 100.0));
    }

    /// Shards are disjoint, equally sized, and reshuffled per epoch while
    /// staying within bounds.
    #[test]
    fn sharding_invariants(
        world in 1usize..9,
        batch in 1usize..6,
        extra in 0usize..20,
        epoch in 0usize..50,
        seed in any::<u64>(),
    ) {
        let len = world * batch + extra;
        prop_assume!(len >= world * batch);
        let samplers: Vec<_> = (0..world)
            .map(|r| ShardedSampler::new(len, world, r, batch, seed))
            .collect();
        let mut seen = HashSet::new();
        let counts: Vec<usize> = samplers
            .iter()
            .map(|s| {
                let batches = s.epoch_batches(epoch);
                for b in &batches {
                    prop_assert_eq!(b.len(), batch);
                    for &i in b {
                        prop_assert!(i < len);
                        prop_assert!(seen.insert(i), "duplicate index {}", i);
                    }
                }
                Ok(batches.len())
            })
            .collect::<Result<_, _>>()?;
        // Every rank runs the same number of iterations.
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]));
    }

    /// Augmented views keep the label and never exceed template+noise
    /// bounds; unaugmented views of the same index are constant across
    /// variants.
    #[test]
    fn augmentation_keeps_identity(
        seed in any::<u64>(),
        variant_a in 0u64..50,
        variant_b in 50u64..100,
    ) {
        let plain = SyntheticImages::new(config(4, 16, 6, seed, false));
        let mut a = vec![0.0f32; 108];
        let mut b = vec![0.0f32; 108];
        let la = plain.sample(3, variant_a, &mut a);
        let lb = plain.sample(3, variant_b, &mut b);
        prop_assert_eq!(la, lb);
        // Non-augmented split: only the (variant-dependent) noise stream
        // differs; identity (label) is stable. With augment=false the
        // geometric view is fixed.
        let aug = SyntheticImages::new(config(4, 16, 6, seed, true));
        let l2 = aug.sample(3, variant_a, &mut a);
        prop_assert_eq!(l2, la);
    }
}
