//! CIFAR-10 stand-in preset.
//!
//! Real CIFAR-10: 10 classes, 50 000 train / 10 000 validation 32×32×3
//! images. This preset keeps the class count and the 3-channel image
//! structure, but scales resolution and sample counts so a full training
//! run finishes in seconds on CPU. The substitution is documented in
//! DESIGN.md §1; experiments report their accuracy against a *measured*
//! SGD baseline on the same task, mirroring how the paper measures against
//! the published CIFAR baseline.

use crate::synthetic::{SyntheticConfig, SyntheticImages};

/// Build the CIFAR-10-like `(train, val)` pair.
///
/// `size` is the square image resolution (paper: 32; experiments default
/// to 12–16 for CPU speed), `train_len`/`val_len` the split sizes.
pub fn synthetic_cifar(
    size: usize,
    train_len: usize,
    val_len: usize,
    seed: u64,
) -> (SyntheticImages, SyntheticImages) {
    let base = SyntheticConfig {
        classes: 10,
        len: train_len,
        channels: 3,
        height: size,
        width: size,
        noise: 0.8,
        class_overlap: 0.85,
        modes: 5,
        max_shift: (size / 8).max(1),
        flip: true,
        seed,
        split: 0,
        augment: true,
    };
    let train = SyntheticImages::new(base.clone());
    let val = SyntheticImages::new(SyntheticConfig {
        len: val_len,
        split: 1,
        augment: false,
        ..base
    });
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Dataset;

    #[test]
    fn preset_shapes() {
        let (train, val) = synthetic_cifar(16, 512, 128, 42);
        assert_eq!(train.num_classes(), 10);
        assert_eq!(train.shape(), (3, 16, 16));
        assert_eq!(train.len(), 512);
        assert_eq!(val.len(), 128);
    }

    #[test]
    fn val_same_class_samples_share_signal() {
        // Validation is unaugmented: two same-class val samples differ only
        // by their noise draws, so a model that learns the class template
        // from (augmented) train data can classify val.
        let (_train, val) = synthetic_cifar(8, 100, 100, 1);
        let mut a = vec![0.0; 192];
        let mut b = vec![0.0; 192];
        assert_eq!(val.sample(0, 0, &mut a), 0);
        assert_eq!(val.sample(10, 0, &mut b), 0);
        let corr: f32 = {
            let dot: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        assert!(corr > 0.5, "same-class val correlation {corr}");
    }
}
