//! Class-conditional synthetic image generator.
//!
//! Each class owns a smooth random template built from a handful of 2-D
//! cosine modes per channel. A sample is its class template warped by a
//! per-sample translation, scaled, flipped (augmentation), and buried in
//! Gaussian pixel noise. The task is learnable by a small CNN but not
//! trivially (noise and translations force genuine feature learning), and
//! train/validation splits come from disjoint index ranges of the same
//! process, so a real generalization gap exists.
//!
//! Everything derives deterministically from `(seed, split, index,
//! variant)`: no storage, identical data on every rank, and the `variant`
//! argument gives fresh augmentation draws each epoch while keeping the
//! underlying sample identity fixed (validation always uses variant 0 and
//! no augmentation).

use kfac_tensor::{Rng64, Tensor4};

/// A deterministic, index-addressable labelled-image source.
pub trait Dataset: Send + Sync {
    /// Number of samples.
    fn len(&self) -> usize;

    /// True when the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of classes.
    fn num_classes(&self) -> usize;

    /// Per-sample shape `(c, h, w)`.
    fn shape(&self) -> (usize, usize, usize);

    /// Write sample `idx` (augmentation draw `variant`) into `out`
    /// (length `c·h·w`) and return its label.
    fn sample(&self, idx: usize, variant: u64, out: &mut [f32]) -> usize;
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of classes.
    pub classes: usize,
    /// Samples in this split.
    pub len: usize,
    /// Channels.
    pub channels: usize,
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Pixel-noise standard deviation (relative to unit-RMS templates).
    pub noise: f32,
    /// Fraction of template energy shared across all classes, in
    /// `[0, 1)`. High overlap shrinks the class-discriminative signal,
    /// bounding the Bayes accuracy below 100% — the knob that gives the
    /// stand-in task a CIFAR-like difficulty instead of saturating.
    pub class_overlap: f32,
    /// Cosine modes per channel in each template.
    pub modes: usize,
    /// Maximum augmentation translation in pixels (train splits).
    pub max_shift: usize,
    /// Enable horizontal-flip augmentation.
    pub flip: bool,
    /// Master seed; templates depend only on `(seed, class)`.
    pub seed: u64,
    /// Split tag (train/val draw disjoint per-sample streams).
    pub split: u64,
    /// Whether augmentation (shift/flip/scale jitter) is applied.
    pub augment: bool,
}

impl SyntheticConfig {
    /// Flattened sample length.
    pub fn sample_len(&self) -> usize {
        self.channels * self.height * self.width
    }
}

/// The synthetic dataset: per-class template *images* precomputed from
/// low-frequency cosine modes, per-sample views rendered procedurally.
pub struct SyntheticImages {
    cfg: SyntheticConfig,
    /// `templates[class]` → unit-RMS pixel block of length `c·h·w`.
    templates: Vec<Vec<f32>>,
}

impl SyntheticImages {
    /// Build the per-class templates from the seed.
    pub fn new(cfg: SyntheticConfig) -> Self {
        assert!(cfg.classes >= 2, "need at least two classes");
        assert!(cfg.sample_len() > 0);
        assert!((0.0..1.0).contains(&cfg.class_overlap), "overlap in [0,1)");
        let root = Rng64::new(cfg.seed);
        let (c, h, w) = (cfg.channels, cfg.height, cfg.width);

        // Render one low-frequency cosine-mode image with the given rng.
        // Low frequencies (≤ 2 periods across the image) keep small
        // circular shifts from decorrelating the signal while still
        // defeating pixel memorization.
        let render_modes = |rng: &mut Rng64| -> Vec<f32> {
            let mut img = vec![0.0f32; cfg.sample_len()];
            for ci in 0..c {
                for _ in 0..cfg.modes {
                    let amp = rng.normal(0.0, 1.0);
                    let fy = rng.uniform_range(0.3, 2.0);
                    let fx = rng.uniform_range(0.3, 2.0);
                    let phase = rng.uniform_range(0.0, std::f32::consts::TAU);
                    for y in 0..h {
                        for x in 0..w {
                            img[(ci * h + y) * w + x] += amp
                                * (std::f32::consts::TAU
                                    * (fy * y as f32 / h as f32 + fx * x as f32 / w as f32)
                                    + phase)
                                    .cos();
                        }
                    }
                }
            }
            let rms = (img.iter().map(|&v| (v * v) as f64).sum::<f64>() / img.len() as f64)
                .sqrt()
                .max(1e-6) as f32;
            for v in &mut img {
                *v /= rms;
            }
            img
        };

        // Shared base carries `class_overlap` of the energy; the
        // class-specific delta carries the rest.
        let base = render_modes(&mut root.split(999));
        let w_base = cfg.class_overlap.sqrt();
        let w_delta = (1.0 - cfg.class_overlap).sqrt();

        let mut templates = Vec::with_capacity(cfg.classes);
        for class in 0..cfg.classes {
            let delta = render_modes(&mut root.split(1000 + class as u64));
            let img: Vec<f32> = base
                .iter()
                .zip(&delta)
                .map(|(&b, &d)| w_base * b + w_delta * d)
                .collect();
            templates.push(img);
        }
        SyntheticImages { cfg, templates }
    }

    /// Render the template for `class` circularly shifted by integer
    /// `(dy, dx)`, optionally flipped, scaled, into `out`.
    fn render(&self, class: usize, dy: isize, dx: isize, flip: bool, scale: f32, out: &mut [f32]) {
        let (c, h, w) = (self.cfg.channels, self.cfg.height, self.cfg.width);
        let t = &self.templates[class];
        for ci in 0..c {
            for y in 0..h {
                let sy = (y as isize + dy).rem_euclid(h as isize) as usize;
                for x in 0..w {
                    let xe = if flip { w - 1 - x } else { x };
                    let sx = (xe as isize + dx).rem_euclid(w as isize) as usize;
                    out[(ci * h + y) * w + x] = scale * t[(ci * h + sy) * w + sx];
                }
            }
        }
    }
}

impl Dataset for SyntheticImages {
    fn len(&self) -> usize {
        self.cfg.len
    }

    fn num_classes(&self) -> usize {
        self.cfg.classes
    }

    fn shape(&self) -> (usize, usize, usize) {
        (self.cfg.channels, self.cfg.height, self.cfg.width)
    }

    fn sample(&self, idx: usize, variant: u64, out: &mut [f32]) -> usize {
        assert!(idx < self.cfg.len, "index {idx} out of range");
        assert_eq!(out.len(), self.cfg.sample_len());
        let label = idx % self.cfg.classes; // balanced classes

        // Per-sample stream: split on (split, idx); augmentation stream
        // additionally on variant so each epoch re-draws jitter.
        let root = Rng64::new(self.cfg.seed);
        let mut sample_rng = root
            .split(2_000_000 + self.cfg.split)
            .split(idx as u64)
            .split(variant);

        let (dy, dx, flip, scale) = if self.cfg.augment {
            let s = self.cfg.max_shift as isize;
            (
                sample_rng.next_below(2 * s as usize + 1) as isize - s,
                sample_rng.next_below(2 * s as usize + 1) as isize - s,
                self.cfg.flip && sample_rng.bernoulli(0.5),
                sample_rng.uniform_range(0.85, 1.15),
            )
        } else {
            // Identity view: the per-sample noise below still gives the
            // split intra-class variance.
            (0, 0, false, 1.0)
        };

        self.render(label, dy, dx, flip, scale, out);

        if self.cfg.noise > 0.0 {
            for v in out.iter_mut() {
                *v += sample_rng.normal(0.0, self.cfg.noise);
            }
        }
        label
    }
}

/// Assemble a batch tensor + label vector from dataset indices.
pub fn batch_of(ds: &dyn Dataset, indices: &[usize], variant: u64) -> (Tensor4, Vec<usize>) {
    let (c, h, w) = ds.shape();
    let n = indices.len();
    let mut t = Tensor4::zeros(n, c, h, w);
    let mut labels = Vec::with_capacity(n);
    for (i, &idx) in indices.iter().enumerate() {
        let label = ds.sample(idx, variant, t.sample_mut(i));
        labels.push(label);
    }
    (t, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SyntheticConfig {
        SyntheticConfig {
            classes: 4,
            len: 64,
            channels: 3,
            height: 8,
            width: 8,
            noise: 0.2,
            class_overlap: 0.0,
            modes: 4,
            max_shift: 2,
            flip: true,
            seed: 7,
            split: 0,
            augment: true,
        }
    }

    #[test]
    fn deterministic_given_identity() {
        let ds = SyntheticImages::new(cfg());
        let mut a = vec![0.0; 192];
        let mut b = vec![0.0; 192];
        let la = ds.sample(5, 3, &mut a);
        let lb = ds.sample(5, 3, &mut b);
        assert_eq!(la, lb);
        assert_eq!(a, b);
    }

    #[test]
    fn variants_differ_but_share_label() {
        let ds = SyntheticImages::new(cfg());
        let mut a = vec![0.0; 192];
        let mut b = vec![0.0; 192];
        let la = ds.sample(5, 0, &mut a);
        let lb = ds.sample(5, 1, &mut b);
        assert_eq!(la, lb);
        assert_ne!(a, b, "augmentation should change the pixels");
    }

    #[test]
    fn labels_are_balanced() {
        let ds = SyntheticImages::new(cfg());
        let mut counts = [0usize; 4];
        let mut buf = vec![0.0; 192];
        for i in 0..ds.len() {
            counts[ds.sample(i, 0, &mut buf)] += 1;
        }
        assert_eq!(counts, [16, 16, 16, 16]);
    }

    #[test]
    fn same_class_samples_are_correlated_across_classes_not() {
        let ds = SyntheticImages::new(SyntheticConfig {
            noise: 0.05,
            augment: false,
            ..cfg()
        });
        let mut x0 = vec![0.0; 192];
        let mut x4 = vec![0.0; 192];
        let mut x1 = vec![0.0; 192];
        assert_eq!(ds.sample(0, 0, &mut x0), 0);
        assert_eq!(ds.sample(4, 0, &mut x4), 0); // same class (4 % 4)
        assert_eq!(ds.sample(1, 0, &mut x1), 1);

        let corr = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb)
        };
        let same = corr(&x0, &x4);
        let diff = corr(&x0, &x1).abs();
        assert!(
            same > diff + 0.2,
            "intra-class correlation {same} should beat inter-class {diff}"
        );
    }

    #[test]
    fn val_split_differs_from_train() {
        let train = SyntheticImages::new(cfg());
        let val = SyntheticImages::new(SyntheticConfig {
            split: 1,
            augment: false,
            ..cfg()
        });
        let mut a = vec![0.0; 192];
        let mut b = vec![0.0; 192];
        train.sample(0, 0, &mut a);
        val.sample(0, 0, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn batch_assembly() {
        let ds = SyntheticImages::new(cfg());
        let (t, labels) = batch_of(&ds, &[0, 1, 2], 0);
        assert_eq!(t.shape(), (3, 3, 8, 8));
        assert_eq!(labels, vec![0, 1, 2]);
        // First sample in the batch matches direct sampling.
        let mut direct = vec![0.0; 192];
        ds.sample(0, 0, &mut direct);
        assert_eq!(t.sample(0), &direct[..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_index_panics() {
        let ds = SyntheticImages::new(cfg());
        let mut buf = vec![0.0; 192];
        let _ = ds.sample(64, 0, &mut buf);
    }
}
