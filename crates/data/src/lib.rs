//! # kfac-data
//!
//! Synthetic dataset substrate for the `kfac-rs` reproduction of
//! *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! The paper trains on CIFAR-10 and ImageNet-1k. Neither is available in
//! this environment, so — per the documented substitution policy in
//! DESIGN.md — this crate generates **class-conditional synthetic image
//! tasks** that exercise the same code paths and the same optimization
//! dynamics: multiple classes, intra-class variance, augmentation, a
//! held-out validation split with a real generalization gap, and data
//! sharding across ranks.
//!
//! * [`synthetic`] — the generator: per-class low-frequency templates plus
//!   per-sample jitter, noise, shifts and flips. Everything is computed
//!   procedurally from `(seed, index, variant)`, so datasets cost no
//!   memory and every rank regenerates identical samples.
//! * [`cifar`] / [`imagenet`] — presets standing in for CIFAR-10 and
//!   ImageNet-1k at CPU-tractable sizes.
//! * [`sampler`] — the distributed, per-epoch-shuffled batch sampler that
//!   implements the data-parallel distribution of §II-A.

pub mod cifar;
pub mod imagenet;
pub mod sampler;
pub mod synthetic;

pub use cifar::synthetic_cifar;
pub use imagenet::synthetic_imagenet;
pub use sampler::ShardedSampler;
pub use synthetic::{batch_of, Dataset, SyntheticConfig, SyntheticImages};
