//! ImageNet-1k stand-in preset.
//!
//! Real ImageNet-1k: 1000 classes, ~1.28 M train / 50 000 validation
//! 224×224×3 images. The stand-in keeps what distinguishes the paper's
//! ImageNet experiments from its CIFAR ones — many more classes, higher
//! intra-class variance, longer epoch budgets — at CPU scale: 100 classes
//! by default, noisier samples, larger shift augmentation.

use crate::synthetic::{SyntheticConfig, SyntheticImages};

/// Build the ImageNet-like `(train, val)` pair.
///
/// `classes` defaults to 100 in the experiment presets (1000 is allowed
/// but slow); `size` is the square resolution.
pub fn synthetic_imagenet(
    classes: usize,
    size: usize,
    train_len: usize,
    val_len: usize,
    seed: u64,
) -> (SyntheticImages, SyntheticImages) {
    let base = SyntheticConfig {
        classes,
        len: train_len,
        channels: 3,
        height: size,
        width: size,
        noise: 0.8,
        class_overlap: 0.85,
        modes: 6,
        max_shift: (size / 6).max(1),
        flip: true,
        seed,
        split: 0,
        augment: true,
    };
    let train = SyntheticImages::new(base.clone());
    let val = SyntheticImages::new(SyntheticConfig {
        len: val_len,
        split: 1,
        augment: false,
        ..base
    });
    (train, val)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Dataset;

    #[test]
    fn preset_shapes() {
        let (train, val) = synthetic_imagenet(100, 16, 2000, 400, 3);
        assert_eq!(train.num_classes(), 100);
        assert_eq!(val.num_classes(), 100);
        assert_eq!(train.shape(), (3, 16, 16));
        assert_eq!(train.len(), 2000);
        assert_eq!(val.len(), 400);
    }

    #[test]
    fn harder_than_cifar_preset() {
        // More classes and more noise than the CIFAR preset — the relative
        // difficulty ordering the paper's two benchmarks have.
        let (inet, _) = synthetic_imagenet(100, 8, 100, 10, 1);
        let (cifar, _) = crate::cifar::synthetic_cifar(8, 100, 10, 1);
        assert!(inet.num_classes() > cifar.num_classes());
    }
}
