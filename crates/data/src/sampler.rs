//! Distributed batch sampler.
//!
//! Implements the paper's data-parallel distribution (§II-A): each epoch,
//! the global index set is shuffled with an epoch-dependent seed (same
//! permutation on every rank — no communication needed), split into
//! equal contiguous shards per rank, and chunked into fixed-size local
//! batches. Trailing samples that don't fill a complete batch on every
//! rank are dropped, so all ranks always execute the same number of
//! iterations — the property synchronous SGD requires to avoid deadlock.

use kfac_tensor::Rng64;

/// Per-rank batch index generator.
#[derive(Debug, Clone)]
pub struct ShardedSampler {
    dataset_len: usize,
    world_size: usize,
    rank: usize,
    local_batch: usize,
    seed: u64,
}

impl ShardedSampler {
    /// Create a sampler for `rank` of `world_size` ranks with a per-rank
    /// batch of `local_batch` samples.
    pub fn new(
        dataset_len: usize,
        world_size: usize,
        rank: usize,
        local_batch: usize,
        seed: u64,
    ) -> Self {
        assert!(world_size > 0 && rank < world_size);
        assert!(local_batch > 0);
        assert!(
            dataset_len >= world_size * local_batch,
            "dataset ({dataset_len}) smaller than one global batch ({})",
            world_size * local_batch
        );
        ShardedSampler {
            dataset_len,
            world_size,
            rank,
            local_batch,
            seed,
        }
    }

    /// Batches per epoch (identical on every rank).
    pub fn batches_per_epoch(&self) -> usize {
        (self.dataset_len / self.world_size) / self.local_batch
    }

    /// Global batch size (`world_size × local_batch`).
    pub fn global_batch(&self) -> usize {
        self.world_size * self.local_batch
    }

    /// This rank's batches for `epoch`, in iteration order.
    pub fn epoch_batches(&self, epoch: usize) -> Vec<Vec<usize>> {
        // Same permutation on every rank: seeded by (seed, epoch) only.
        let mut perm: Vec<usize> = (0..self.dataset_len).collect();
        let mut rng = Rng64::new(self.seed).split(epoch as u64);
        rng.shuffle(&mut perm);

        let shard_len = self.dataset_len / self.world_size;
        let start = self.rank * shard_len;
        let shard = &perm[start..start + shard_len];

        shard
            .chunks_exact(self.local_batch)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shards_are_disjoint_and_cover() {
        let world = 4;
        let samplers: Vec<_> = (0..world)
            .map(|r| ShardedSampler::new(64, world, r, 4, 9))
            .collect();
        let mut seen = HashSet::new();
        for s in &samplers {
            for batch in s.epoch_batches(0) {
                assert_eq!(batch.len(), 4);
                for idx in batch {
                    assert!(seen.insert(idx), "index {idx} appears twice");
                }
            }
        }
        assert_eq!(seen.len(), 64, "all indices covered (none dropped here)");
    }

    #[test]
    fn equal_iteration_counts_across_ranks() {
        // 70 samples, 3 ranks, batch 4: shard 23 → 5 batches each; the
        // ragged tail is dropped identically on every rank.
        let counts: Vec<usize> = (0..3)
            .map(|r| ShardedSampler::new(70, 3, r, 4, 1).epoch_batches(0).len())
            .collect();
        assert_eq!(counts, vec![5, 5, 5]);
        assert_eq!(ShardedSampler::new(70, 3, 0, 4, 1).batches_per_epoch(), 5);
    }

    #[test]
    fn epochs_reshuffle() {
        let s = ShardedSampler::new(64, 2, 0, 8, 5);
        let e0 = s.epoch_batches(0);
        let e1 = s.epoch_batches(1);
        assert_ne!(e0, e1, "different epochs must draw different orders");
        // But the same epoch is reproducible.
        assert_eq!(e0, s.epoch_batches(0));
    }

    #[test]
    fn single_rank_sees_everything() {
        let s = ShardedSampler::new(32, 1, 0, 8, 2);
        let all: HashSet<usize> = s.epoch_batches(3).into_iter().flatten().collect();
        assert_eq!(all.len(), 32);
    }

    #[test]
    fn global_batch_math() {
        let s = ShardedSampler::new(256, 8, 3, 4, 0);
        assert_eq!(s.global_batch(), 32);
        assert_eq!(s.batches_per_epoch(), 8);
    }

    #[test]
    #[should_panic(expected = "smaller than one global batch")]
    fn too_small_dataset_panics() {
        let _ = ShardedSampler::new(10, 4, 0, 4, 0);
    }
}
