//! # kfac-collectives
//!
//! Horovod-like collective-communication substrate for the `kfac-rs`
//! reproduction of *Convolutional Neural Network Training with Distributed
//! K-FAC* (Pauloski et al., SC 2020).
//!
//! The paper's distributed K-FAC (Algorithm 1) is expressed entirely in
//! terms of the three primitives Horovod exposes — `allreduce()`,
//! `allgather()` and `broadcast()` (§II-D) — plus the implicit barrier of
//! synchronous training. This crate provides:
//!
//! * [`Communicator`] — the primitive set as a trait, with MPI-style
//!   `rank`/`size` identity.
//! * [`ThreadComm`] — N ranks as threads within one process, synchronized
//!   by generation-counted rendezvous (no spinning). This substitutes for
//!   Horovod+NCCL: it preserves the *synchronization structure* of the
//!   algorithm (who contributes what, when everyone blocks), which is what
//!   the correctness experiments need.
//! * [`LocalComm`] — the trivial single-rank communicator.
//! * [`fusion::FusionBuffer`] — Horovod's fusion buffer (§II-D): small
//!   tensors are coalesced and reduced in one operation once a byte
//!   threshold is reached.
//! * [`handle`] — deferred-completion handles mirroring Horovod's
//!   asynchronous op registration (§V-A): ops are enqueued during the
//!   backward pass and completed at `synchronize()`, polled with
//!   `test()`, or driven incrementally with `progress_one()`.
//! * [`progress`] — the background progress engine: submit from any
//!   thread, poll/wait on handles, one dedicated thread per rank drives
//!   the actual collectives (Horovod's progress-thread architecture).
//! * [`cost`] — the α/β analytic cost model for ring allreduce /
//!   allgather / tree broadcast (Patarasuk & Yuan, the paper's [35]),
//!   consumed by the `kfac-cluster` scaling simulator.
//! * [`traffic`] — per-class byte accounting so experiments can report
//!   communication volumes (gradients vs factors vs eigendecompositions).

//! * [`faults`] — deterministic fault injection: a seeded [`FaultPlan`]
//!   consulted by a [`FaultyCommunicator`] wrapper to inject stragglers,
//!   transient/long outages, corruption, and rank loss — reproducibly,
//!   from one seed — plus [`RetryPolicy`], the bounded
//!   exponential-backoff retry loop the hardened paths use.

//! * [`algo`] — the collective *algorithm* layer: chunk-pipelined ring
//!   and recursive halving/doubling allreduce (plus ring allgather and
//!   binomial broadcast) over any point-to-point [`Transport`], with
//!   size-based auto-selection behind a [`CollectiveAlgo`] policy and a
//!   bitwise-pinned rank-order reduction.
//! * [`proc`] — the multi-process backend: [`ProcComm`] ranks as OS
//!   processes over localhost TCP (length-prefixed frames, broker
//!   rendezvous, per-peer reader threads), running the same algorithm
//!   layer for bit-identical results to [`ThreadComm`].
//! * [`hier`] — [`HierComm`], the two-level (intra-node × inter-node)
//!   composition of any two backends.
//! * [`membership`] — elastic group membership: failure detection
//!   (heartbeats on the proc fabric, injectable [`ThreadComm::mark_dead`]
//!   on the thread fabric), a min-rank–coordinated agreement round, and
//!   epoch-fenced [`ShrunkComm`] communicators so survivors of a
//!   permanent rank loss reconfigure and continue instead of aborting.
//! * [`backend`] — [`CommBackend`], the one switch (`KFAC_COMM_BACKEND`)
//!   that picks the fabric everywhere.
//! * [`wire`] — half-width wire payloads: bf16/f16 encode/decode for
//!   gradient fusion and factor/eigen exchange, halving measured bytes
//!   on both fabrics with non-finite rejection on decode and per-dtype
//!   byte accounting.

pub mod algo;
pub mod backend;
pub mod communicator;
pub mod cost;
pub mod faults;
pub mod fusion;
pub mod handle;
pub mod hier;
pub mod local;
pub mod membership;
pub mod proc;
pub mod progress;
pub mod retry;
pub mod thread;
pub mod traffic;
pub mod transport;
pub mod wire;

pub use algo::{AlgoComm, AlgoPolicy, CollectiveAlgo};
pub use backend::CommBackend;
pub use communicator::{Communicator, ReduceOp};
pub use cost::LinkSpec;
pub use faults::{ActiveFault, FaultKind, FaultPlan, FaultPlanConfig, FaultyCommunicator};
pub use fusion::FusionBuffer;
pub use handle::{CollectiveError, OpHandle, OpQueue, OpResult};
pub use hier::HierComm;
pub use local::LocalComm;
pub use membership::{Elastic, GroupView, Membership, ShrunkComm, ViewTransport};
pub use proc::{HeartbeatConfig, ProcComm, ProcConfig};
pub use progress::ProgressEngine;
pub use retry::RetryPolicy;
pub use thread::ThreadComm;
pub use traffic::{Traffic, TrafficClass};
pub use transport::Transport;
pub use wire::{try_allgather_half, try_allreduce_half};
