//! Point-to-point transport under the collective algorithm layer.
//!
//! The algorithm layer ([`crate::algo`]) expresses ring, halving/doubling
//! and tree collectives purely in terms of tagged point-to-point messages
//! between ranks. Anything that can move a tagged `f32` payload from one
//! rank to another can host every algorithm: the in-process
//! [`crate::ThreadComm`] mailbox mesh and the multi-process TCP
//! [`crate::proc::ProcComm`] both implement this trait, which is what lets
//! one algorithm implementation be *bitwise identical* across backends.
//!
//! Semantics:
//!
//! * `try_send` is **non-blocking and buffered**: it enqueues (or writes to
//!   a kernel socket buffer drained by a peer reader thread) and returns.
//!   Messages between a `(sender, receiver)` pair are delivered in send
//!   order.
//! * `try_recv` blocks until a message with the exact `(from, tag)` key is
//!   available, up to the transport's configured deadline, then fails with
//!   [`CollectiveError::Timeout`]. A permanently gone peer surfaces as
//!   [`CollectiveError::RankFailed`].
//! * Tags disambiguate messages of different operations/phases/chunks that
//!   may be in flight concurrently (the pipelined algorithms keep many
//!   chunks outstanding). See [`make_tag`].

use crate::handle::CollectiveError;

/// A rank's endpoint in a fully-connected point-to-point mesh.
pub trait Transport: Send + Sync {
    /// This endpoint's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the mesh.
    fn size(&self) -> usize;

    /// Buffered, ordered send of `payload` to rank `to` under `tag`.
    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError>;

    /// Blocking receive of the next message from rank `from` with exactly
    /// this `tag`, bounded by the transport deadline.
    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError>;
}

/// Bits of the tag reserved for the chunk/step index.
const IDX_BITS: u32 = 20;
/// Bits of the tag reserved for the algorithm phase.
const PHASE_BITS: u32 = 4;

/// Bits of the tag carrying collective payload (`op_seq`/phase/idx). The
/// top ten bits are reserved for the membership plane: 8 epoch bits and
/// the control-frame namespace.
pub const PAYLOAD_BITS: u32 = 54;
/// Mask selecting the payload portion of a tag.
pub const PAYLOAD_MASK: u64 = (1 << PAYLOAD_BITS) - 1;
/// Bit offset of the membership epoch within a data tag.
pub const EPOCH_SHIFT: u32 = PAYLOAD_BITS;
/// Width of the epoch field; epochs fence modulo 256, far beyond any
/// realistic number of shrink events in one run.
pub const EPOCH_BITS: u32 = 8;
/// Control-plane namespace flag (heartbeats, membership agreement).
/// Control frames never collide with data tags of any epoch.
pub const CTRL_BIT: u64 = 1 << 63;

/// Pack `(op_seq, phase, idx)` into one wire tag.
///
/// `op_seq` is a per-endpoint collective sequence number (every rank issues
/// the same collective sequence, so sequence numbers agree group-wide),
/// `phase` separates stages within one collective (reduce vs broadcast legs
/// of the ring), and `idx` is the chunk or round index within a phase.
/// 2^20 chunks × 2^4 phases leaves 2^30 collectives inside the 54-bit
/// payload field before wraparound.
pub fn make_tag(op_seq: u64, phase: u8, idx: u32) -> u64 {
    debug_assert!(idx < (1 << IDX_BITS));
    debug_assert!((phase as u32) < (1 << PHASE_BITS));
    ((op_seq << (IDX_BITS + PHASE_BITS)) | ((phase as u64) << IDX_BITS) | idx as u64) & PAYLOAD_MASK
}

/// Stamp a data tag with a membership epoch.
///
/// Epoch 0 (the boot group) maps every tag to itself, so a run that never
/// shrinks is bitwise identical on the wire to a build without fencing.
/// After a shrink, survivors stamp the new epoch into every frame and
/// receivers key their mailboxes on the stamped tag — a straggler's
/// old-epoch frame can never match a new-epoch receive.
pub fn fence_tag(epoch: u64, tag: u64) -> u64 {
    ((epoch & ((1 << EPOCH_BITS) - 1)) << EPOCH_SHIFT) | (tag & PAYLOAD_MASK)
}

/// Extract the epoch stamp from a data tag.
pub fn tag_epoch(tag: u64) -> u64 {
    (tag >> EPOCH_SHIFT) & ((1 << EPOCH_BITS) - 1)
}

/// Control tag: periodic liveness heartbeat (payload ignored).
pub const TAG_HEARTBEAT: u64 = CTRL_BIT | (3 << 40);

/// Control tag: membership-agreement PROPOSE carrying a dead-rank mask
/// for the round that forms `epoch`.
pub fn propose_tag(epoch: u64) -> u64 {
    CTRL_BIT | (1 << 40) | (epoch & 0xffff_ffff)
}

/// Control tag: membership-agreement COMMIT carrying the final dead-rank
/// mask for the round that forms `epoch`.
pub fn commit_tag(epoch: u64) -> u64 {
    CTRL_BIT | (2 << 40) | (epoch & 0xffff_ffff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_across_fields() {
        let mut seen = std::collections::HashSet::new();
        for seq in 0..4u64 {
            for phase in 0..4u8 {
                for idx in 0..8u32 {
                    assert!(seen.insert(make_tag(seq, phase, idx)));
                }
            }
        }
    }

    #[test]
    fn epoch_zero_fencing_is_identity() {
        for seq in 0..16u64 {
            for phase in 0..4u8 {
                let t = make_tag(seq, phase, 7);
                assert_eq!(fence_tag(0, t), t);
                assert_eq!(tag_epoch(fence_tag(0, t)), 0);
            }
        }
    }

    #[test]
    fn fenced_tags_differ_across_epochs_and_round_trip() {
        let t = make_tag(9, 2, 3);
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..8u64 {
            let f = fence_tag(epoch, t);
            assert!(seen.insert(f));
            assert_eq!(tag_epoch(f), epoch);
            assert_eq!(f & PAYLOAD_MASK, t);
        }
    }

    #[test]
    fn control_tags_never_collide_with_fenced_data_tags() {
        let data = fence_tag(255, make_tag(u64::MAX >> 34, 15, (1 << 20) - 1));
        assert_eq!(data & CTRL_BIT, 0);
        for ctrl in [TAG_HEARTBEAT, propose_tag(7), commit_tag(7)] {
            assert_ne!(ctrl & CTRL_BIT, 0);
        }
        assert_ne!(propose_tag(3), commit_tag(3));
        assert_ne!(propose_tag(3), propose_tag(4));
    }
}
