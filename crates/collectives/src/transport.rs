//! Point-to-point transport under the collective algorithm layer.
//!
//! The algorithm layer ([`crate::algo`]) expresses ring, halving/doubling
//! and tree collectives purely in terms of tagged point-to-point messages
//! between ranks. Anything that can move a tagged `f32` payload from one
//! rank to another can host every algorithm: the in-process
//! [`crate::ThreadComm`] mailbox mesh and the multi-process TCP
//! [`crate::proc::ProcComm`] both implement this trait, which is what lets
//! one algorithm implementation be *bitwise identical* across backends.
//!
//! Semantics:
//!
//! * `try_send` is **non-blocking and buffered**: it enqueues (or writes to
//!   a kernel socket buffer drained by a peer reader thread) and returns.
//!   Messages between a `(sender, receiver)` pair are delivered in send
//!   order.
//! * `try_recv` blocks until a message with the exact `(from, tag)` key is
//!   available, up to the transport's configured deadline, then fails with
//!   [`CollectiveError::Timeout`]. A permanently gone peer surfaces as
//!   [`CollectiveError::RankFailed`].
//! * Tags disambiguate messages of different operations/phases/chunks that
//!   may be in flight concurrently (the pipelined algorithms keep many
//!   chunks outstanding). See [`make_tag`].

use crate::handle::CollectiveError;

/// A rank's endpoint in a fully-connected point-to-point mesh.
pub trait Transport: Send + Sync {
    /// This endpoint's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the mesh.
    fn size(&self) -> usize;

    /// Buffered, ordered send of `payload` to rank `to` under `tag`.
    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError>;

    /// Blocking receive of the next message from rank `from` with exactly
    /// this `tag`, bounded by the transport deadline.
    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError>;
}

/// Bits of the tag reserved for the chunk/step index.
const IDX_BITS: u32 = 20;
/// Bits of the tag reserved for the algorithm phase.
const PHASE_BITS: u32 = 4;

/// Pack `(op_seq, phase, idx)` into one wire tag.
///
/// `op_seq` is a per-endpoint collective sequence number (every rank issues
/// the same collective sequence, so sequence numbers agree group-wide),
/// `phase` separates stages within one collective (reduce vs broadcast legs
/// of the ring), and `idx` is the chunk or round index within a phase.
/// 2^20 chunks × 2^4 phases leaves 2^40 collectives before wraparound.
pub fn make_tag(op_seq: u64, phase: u8, idx: u32) -> u64 {
    debug_assert!(idx < (1 << IDX_BITS));
    debug_assert!((phase as u32) < (1 << PHASE_BITS));
    (op_seq << (IDX_BITS + PHASE_BITS)) | ((phase as u64) << IDX_BITS) | idx as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_unique_across_fields() {
        let mut seen = std::collections::HashSet::new();
        for seq in 0..4u64 {
            for phase in 0..4u8 {
                for idx in 0..8u32 {
                    assert!(seen.insert(make_tag(seq, phase, idx)));
                }
            }
        }
    }
}
