//! Elastic group membership: epoch-fenced views over a point-to-point
//! transport, a min-rank–coordinated agreement protocol, and shrunken
//! communicators that continue on the survivors of a permanent rank loss.
//!
//! The paper's K-FAC-opt placement is recomputable: every rank derives the
//! same factor→rank assignment from `(factors, world_size)` with no
//! communication (Algorithm 1), so after a rank dies the survivors can
//! re-derive a consistent work distribution for the smaller world. This
//! module supplies the communication half of that story:
//!
//! * [`GroupView`] — an immutable `(epoch, rank, members)` snapshot of the
//!   group. Member ids are *original* (epoch-0) ranks, sorted ascending;
//!   a survivor's new rank is its index in that list, so views are
//!   contiguous and identical on every survivor by construction.
//! * [`ViewTransport`] — adapts a base [`Transport`] to a view: ranks are
//!   translated through `members[]` and every data tag is stamped with the
//!   view's epoch ([`fence_tag`]). Epoch 0 is the identity mapping, so a
//!   run that never shrinks is bitwise identical on the wire to a build
//!   without fencing. Frames stamped with an old epoch key different
//!   mailbox entries and are additionally purged/dropped by the backends —
//!   stragglers from a dead epoch cannot corrupt the new group.
//! * [`Membership`] — the backend surface the agreement protocol needs on
//!   top of `Transport`: failure observations (`observed_dead`), failure
//!   injection (`mark_dead`, which keeps chaos tests deterministic on the
//!   thread fabric), epoch fencing (`fence`), and a deadline-bounded
//!   point-to-point receive that fails only for the *addressed* peer
//!   (`recv_deadline`) so agreement can keep polling while other peers
//!   are dead.
//! * [`agree_on_survivors`] — the reconfiguration round. The minimum
//!   believed-live original rank acts as coordinator; survivors resend
//!   PROPOSE(dead-mask) and short-poll for COMMIT until the coordinator
//!   observes a stable union and commits it. Because dead sets only grow
//!   and a failed receive names its culprit, every party converges on the
//!   same coordinator and the same survivor set, or the round times out
//!   and the caller falls back to the abort rung of the degradation
//!   ladder.
//! * [`ShrunkComm`] — an [`AlgoComm`] over a [`ViewTransport`], i.e. a
//!   full [`Communicator`] for the survivors, itself re-shrinkable via
//!   [`Elastic`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::algo::{AlgoComm, AlgoPolicy};
use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::{Traffic, TrafficClass};
use crate::transport::{commit_tag, fence_tag, propose_tag, Transport};
use kfac_telemetry::Span;

/// Default wall-clock budget for one membership-agreement round.
pub const AGREEMENT_DEADLINE: Duration = Duration::from_secs(10);

/// Poll interval for agreement receives: short enough that a coordinator
/// change is noticed quickly, long enough not to spin.
const AGREE_POLL: Duration = Duration::from_millis(150);

/// An immutable snapshot of group membership at one epoch.
///
/// `members` holds the *original* (epoch-0) rank ids of the live group,
/// sorted ascending. A member's rank in this view is its index, so the
/// view is contiguous (`0..world`) and every survivor derives the same
/// view from the same member set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupView {
    /// Membership epoch: 0 at boot, +1 per committed shrink.
    pub epoch: u64,
    /// This endpoint's rank within `members` (its index).
    pub rank: usize,
    /// Original rank ids of the live group, sorted ascending.
    pub members: Vec<usize>,
}

impl GroupView {
    /// The boot view: epoch 0, identity membership over `world` ranks.
    pub fn boot(rank: usize, world: usize) -> Self {
        assert!(rank < world, "rank {rank} outside world {world}");
        GroupView {
            epoch: 0,
            rank,
            members: (0..world).collect(),
        }
    }

    /// Number of live ranks in this view.
    pub fn world(&self) -> usize {
        self.members.len()
    }

    /// This endpoint's original (epoch-0) rank id.
    pub fn original_rank(&self) -> usize {
        self.members[self.rank]
    }

    /// Translate a view rank to its original rank id.
    pub fn to_original(&self, view_rank: usize) -> usize {
        self.members[view_rank]
    }

    /// Translate an original rank id to its view rank, if a member.
    pub fn from_original(&self, original: usize) -> Option<usize> {
        self.members.binary_search(&original).ok()
    }
}

/// Backend surface the membership plane needs beyond [`Transport`].
///
/// All rank arguments are *original* (epoch-0) ids: membership operates
/// beneath the view translation.
pub trait Membership: Transport {
    /// Original ranks currently observed dead and not yet fenced out of
    /// the group (EOF/torn frame on the proc fabric, [`Membership::mark_dead`] on
    /// the thread fabric, missed heartbeats on either).
    fn observed_dead(&self) -> Vec<usize>;

    /// Inject a failure observation for `original` (used by the victim or
    /// by chaos tests; also called on survivors when agreement learns of
    /// a death second-hand). Wakes any blocked receivers.
    fn mark_dead(&self, original: usize);

    /// Acknowledge `dead` as removed from the group as of `new_epoch`:
    /// stop reporting them from in-flight receives, purge their pending
    /// messages plus any data frame stamped with an epoch `< new_epoch`,
    /// and reject stale-epoch data frames from now on.
    fn fence(&self, dead: &[usize], new_epoch: u64);

    /// Deadline-bounded receive that fails with
    /// [`CollectiveError::RankFailed`] only if `from` itself is dead —
    /// unlike [`Transport::try_recv`], which fails promptly when *any*
    /// unfenced peer is dead. Agreement uses this to keep polling the
    /// coordinator while unrelated peers are down.
    fn recv_deadline(
        &self,
        from: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<f32>, CollectiveError>;
}

/// A [`Transport`] restricted to a [`GroupView`]: ranks are translated
/// through the member list and data tags are stamped with the view epoch.
pub struct ViewTransport<T: Transport> {
    base: Arc<T>,
    view: GroupView,
}

impl<T: Transport> ViewTransport<T> {
    /// Wrap `base` in `view`. The view's members must all be valid base
    /// ranks.
    pub fn new(base: Arc<T>, view: GroupView) -> Self {
        debug_assert!(view.members.iter().all(|&m| m < base.size()));
        ViewTransport { base, view }
    }

    /// The underlying full-world transport.
    pub fn base(&self) -> &Arc<T> {
        &self.base
    }

    /// The membership view this transport is fenced to.
    pub fn view(&self) -> &GroupView {
        &self.view
    }

    /// Map a base-transport error naming an original rank into view-rank
    /// space where possible, so callers above the view see culprits in
    /// their own coordinates.
    fn map_err(&self, e: CollectiveError) -> CollectiveError {
        match e {
            CollectiveError::RankFailed(orig) => match self.view.from_original(orig) {
                Some(v) => CollectiveError::RankFailed(v),
                None => CollectiveError::RankFailed(orig),
            },
            other => other,
        }
    }
}

impl<T: Transport> Transport for ViewTransport<T> {
    fn rank(&self) -> usize {
        self.view.rank
    }

    fn size(&self) -> usize {
        self.view.world()
    }

    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError> {
        self.base
            .try_send(
                self.view.to_original(to),
                fence_tag(self.view.epoch, tag),
                payload,
            )
            .map_err(|e| self.map_err(e))
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError> {
        self.base
            .try_recv(self.view.to_original(from), fence_tag(self.view.epoch, tag))
            .map_err(|e| self.map_err(e))
    }
}

/// Run one epoch-fenced membership-agreement round and return the
/// committed next view.
///
/// Every survivor calls this with its current `view` plus a `dead_hint`
/// of original ranks it already believes dead (typically the culprit from
/// the failed collective). The protocol:
///
/// 1. Each party maintains a cumulative non-member mask over original
///    ranks: everyone outside `view.members`, plus observed/hinted/learned
///    deaths. Dead sets only grow.
/// 2. The coordinator is the minimum believed-live original rank.
///    Non-coordinators resend `PROPOSE(mask)` and short-poll for
///    `COMMIT`; a coordinator short-polls `PROPOSE` from every believed
///    survivor (overwrite-dedup per sender) and commits the union once it
///    is stable across all of them.
/// 3. A receive failing with `RankFailed(r)` teaches the caller that `r`
///    is dead; masks merge on receipt. Both mechanisms only grow the dead
///    set, so all parties converge on the same coordinator and the same
///    final mask, or the round exceeds `deadline` and returns
///    [`CollectiveError::Timeout`] (callers then fall to the abort rung).
///
/// On commit the caller's backend is fenced (`mark_dead` + `fence`) and
/// the new contiguous view (epoch + 1, survivors sorted by original id)
/// is returned. If the committed mask excludes the caller itself —
/// possible under false suspicion — the round fails with
/// `RankFailed(self)` rather than continuing in a split group.
pub fn agree_on_survivors<T: Membership + ?Sized>(
    base: &T,
    view: &GroupView,
    dead_hint: &[usize],
    deadline: Duration,
) -> Result<GroupView, CollectiveError> {
    let me = view.original_rank();
    let world = base.size();
    let next_epoch = view.epoch + 1;
    let overall = Instant::now() + deadline;

    // Cumulative non-member mask over original ranks. Start from
    // everything already outside this view, then the caller's own
    // observations and hints.
    let mut dead = vec![false; world];
    for (r, d) in dead.iter_mut().enumerate() {
        if view.from_original(r).is_none() {
            *d = true;
        }
    }
    for &r in dead_hint {
        if r < world {
            dead[r] = true;
        }
    }
    let mut committed: Option<Vec<bool>> = None;

    'round: while committed.is_none() {
        if Instant::now() >= overall {
            return Err(CollectiveError::Timeout {
                waited_ms: deadline.as_millis() as u64,
            });
        }
        for r in base.observed_dead() {
            if r < world {
                dead[r] = true;
            }
        }
        if dead[me] {
            // Someone committed us out of the group: do not continue in a
            // split view.
            return Err(CollectiveError::RankFailed(me));
        }
        let survivors: Vec<usize> = (0..world).filter(|&r| !dead[r]).collect();
        let coordinator = survivors[0];

        if me == coordinator {
            // Collect a PROPOSE from every other believed survivor;
            // restart whenever the union grows so the survivor set is
            // stable at commit time.
            let mut have: Vec<bool> = vec![false; world];
            have[me] = true;
            for &peer in survivors.iter().skip(1) {
                let poll = Instant::now() + AGREE_POLL;
                match base.recv_deadline(peer, propose_tag(next_epoch), poll.min(overall)) {
                    Ok(mask) => {
                        let grew = merge_mask(&mut dead, &mask);
                        have[peer] = true;
                        if grew {
                            continue 'round;
                        }
                    }
                    Err(CollectiveError::RankFailed(_)) => {
                        dead[peer] = true;
                        continue 'round;
                    }
                    Err(_) => continue 'round, // timeout: re-derive and re-poll
                }
            }
            if survivors.iter().all(|&s| have[s]) {
                let mask: Vec<f32> = dead.iter().map(|&d| if d { 1.0 } else { 0.0 }).collect();
                for &peer in survivors.iter().skip(1) {
                    // A failed commit send marks the peer dead at the
                    // transport level; the next round (its re-PROPOSE
                    // timing out against a vanished coordinator on its
                    // side, or our own re-commit) sorts it out. We adopt
                    // regardless: commits only ever carry grown masks.
                    let _ = base.try_send(peer, commit_tag(next_epoch), &mask);
                }
                committed = Some(dead.clone());
            }
        } else {
            let mask: Vec<f32> = dead.iter().map(|&d| if d { 1.0 } else { 0.0 }).collect();
            if let Err(CollectiveError::RankFailed(_)) =
                base.try_send(coordinator, propose_tag(next_epoch), &mask)
            {
                dead[coordinator] = true;
                continue 'round;
            }
            let poll = Instant::now() + AGREE_POLL;
            match base.recv_deadline(coordinator, commit_tag(next_epoch), poll.min(overall)) {
                Ok(mask) => {
                    // Adopt the committed mask *exactly* — every survivor
                    // must end up with the identical view. If we know of
                    // a death the commit missed, the first collective on
                    // the new group fails promptly and triggers the next
                    // shrink round.
                    committed = Some(mask.iter().map(|&m| m != 0.0).collect());
                }
                Err(CollectiveError::RankFailed(_)) => {
                    dead[coordinator] = true;
                }
                Err(_) => {} // timeout: resend the proposal
            }
        }
    }

    let final_dead = committed.expect("loop exits only on commit");
    if final_dead[me] {
        return Err(CollectiveError::RankFailed(me));
    }
    let members: Vec<usize> = (0..world).filter(|&r| !final_dead[r]).collect();
    let newly_dead: Vec<usize> = view
        .members
        .iter()
        .copied()
        .filter(|&r| final_dead[r])
        .collect();
    for &r in &newly_dead {
        base.mark_dead(r);
    }
    base.fence(&newly_dead, next_epoch);
    let rank = members
        .iter()
        .position(|&r| r == me)
        .expect("self is a survivor");
    let _span = Span::enter("comm/membership_shrink")
        .with("epoch", next_epoch)
        .with("dead", newly_dead.len() as u64)
        .with("world", members.len() as u64);
    Ok(GroupView {
        epoch: next_epoch,
        rank,
        members,
    })
}

/// OR a received f32 dead-mask into `dead`; true if anything new appeared.
fn merge_mask(dead: &mut [bool], mask: &[f32]) -> bool {
    let mut grew = false;
    for (d, &m) in dead.iter_mut().zip(mask) {
        if m != 0.0 && !*d {
            *d = true;
            grew = true;
        }
    }
    grew
}

/// A communicator that can reconfigure to its survivors after a
/// permanent rank loss.
pub trait Elastic: Communicator {
    /// The communicator type produced by a shrink.
    type Shrunk: Elastic;

    /// Run membership agreement with the other survivors, fence the dead
    /// ranks behind a new epoch, and return a communicator for the
    /// shrunken contiguous group. `dead_hint` is in *this* communicator's
    /// rank space (typically the culprit of the failed collective).
    fn shrink(&self, dead_hint: &[usize]) -> Result<Self::Shrunk, CollectiveError>;

    /// Current membership epoch (0 = boot group).
    fn epoch(&self) -> u64;
}

/// A full [`Communicator`] over the survivors of one or more shrinks:
/// the algorithm layer running on an epoch-fenced [`ViewTransport`].
pub struct ShrunkComm<T: Membership> {
    inner: AlgoComm<ViewTransport<T>>,
}

impl<T: Membership + 'static> ShrunkComm<T> {
    /// Build the survivor communicator for `view` over `base`.
    pub fn new(base: Arc<T>, view: GroupView, policy: AlgoPolicy) -> Self {
        ShrunkComm {
            inner: AlgoComm::new(ViewTransport::new(base, view), policy),
        }
    }

    /// The membership view this communicator runs in.
    pub fn view(&self) -> &GroupView {
        self.inner.transport().view()
    }

    /// The algorithm policy in force.
    pub fn policy(&self) -> AlgoPolicy {
        self.inner.policy()
    }
}

impl<T: Membership + 'static> Communicator for ShrunkComm<T> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.inner.allreduce_tagged(buf, op, class);
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.inner.allgather_tagged(payload, class)
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.inner.broadcast_tagged(buf, root, class);
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_allreduce_tagged(buf, op, class)
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        self.inner.try_allgather_tagged(payload, class)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_broadcast_tagged(buf, root, class)
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn traffic(&self) -> Traffic {
        self.inner.traffic()
    }
}

impl<T: Membership + 'static> Elastic for ShrunkComm<T> {
    type Shrunk = ShrunkComm<T>;

    fn shrink(&self, dead_hint: &[usize]) -> Result<ShrunkComm<T>, CollectiveError> {
        let vt = self.inner.transport();
        let view = vt.view();
        let hint: Vec<usize> = dead_hint
            .iter()
            .filter(|&&r| r < view.world())
            .map(|&r| view.to_original(r))
            .collect();
        let next = agree_on_survivors(vt.base().as_ref(), view, &hint, AGREEMENT_DEADLINE)?;
        Ok(ShrunkComm::new(
            Arc::clone(vt.base()),
            next,
            self.inner.policy(),
        ))
    }

    fn epoch(&self) -> u64 {
        self.view().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boot_view_is_identity() {
        let v = GroupView::boot(2, 4);
        assert_eq!(v.epoch, 0);
        assert_eq!(v.world(), 4);
        assert_eq!(v.original_rank(), 2);
        for r in 0..4 {
            assert_eq!(v.to_original(r), r);
            assert_eq!(v.from_original(r), Some(r));
        }
    }

    #[test]
    fn shrunken_view_is_contiguous_and_translates() {
        let v = GroupView {
            epoch: 1,
            rank: 1,
            members: vec![0, 2, 3],
        };
        assert_eq!(v.world(), 3);
        assert_eq!(v.original_rank(), 2);
        assert_eq!(v.to_original(2), 3);
        assert_eq!(v.from_original(3), Some(2));
        assert_eq!(v.from_original(1), None);
    }

    #[test]
    fn merge_mask_only_grows() {
        let mut dead = vec![false, true, false];
        assert!(merge_mask(&mut dead, &[1.0, 0.0, 0.0]));
        assert_eq!(dead, vec![true, true, false]);
        // A zero in the mask never resurrects a dead rank.
        assert!(!merge_mask(&mut dead, &[0.0, 0.0, 0.0]));
        assert_eq!(dead, vec![true, true, false]);
    }
}
