//! Hierarchical two-level communicator.
//!
//! Real clusters are not flat: GPUs within a node talk over NVLink/shared
//! memory, nodes talk over the interconnect. Horovod exploits this with
//! hierarchical allreduce (local reduce → inter-node exchange among node
//! leaders → local broadcast), and the paper's 64–256 GPU runs live or die
//! on it. [`HierComm`] composes two [`Communicator`]s the same way: an
//! *intra* group (e.g. [`crate::ThreadComm`] threads standing in for the
//! GPUs of one node) and an *inter* group held only by each node's leader
//! (local rank 0 — e.g. [`crate::proc::ProcComm`] across processes
//! standing in for nodes).
//!
//! Rank layout is uniform: global rank `= node * intra_size + local
//! rank`. The composition works for any two backends, which is the point:
//! thread-over-thread for unit tests, thread-over-proc for the real
//! two-level fabric.
//!
//! ## Determinism
//!
//! Hierarchical reduction is *deterministic* (fixed grouping, fixed
//! order: rank-ordered within each node, then node-ordered across
//! leaders) but **not bitwise-identical to the flat rank-order
//! reduction** — the association differs: `((x₀+x₁)+(x₂+x₃))` vs
//! `(((x₀+x₁)+x₂)+x₃)`. That is the same trade Horovod's hierarchical
//! mode makes. Runs are bit-reproducible *given the hierarchy shape*;
//! cross-shape comparisons agree only to floating-point tolerance. Tests
//! pin both properties.

use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::thread::ThreadComm;
use crate::traffic::{Traffic, TrafficClass};

/// Two-level communicator: `intra` within a node, `inter` across node
/// leaders (held only where `intra.rank() == 0`).
pub struct HierComm<A: Communicator, B: Communicator> {
    intra: A,
    inter: Option<B>,
    node: usize,
    nodes: usize,
}

impl<A: Communicator, B: Communicator> HierComm<A, B> {
    /// Compose `intra` (this node's group) with `inter` (the leader
    /// group; `Some` exactly on local rank 0).
    ///
    /// # Panics
    /// Panics if the leader/inter invariants are violated — that is a
    /// wiring bug, not a runtime fault.
    pub fn new(intra: A, inter: Option<B>, node: usize, nodes: usize) -> Self {
        assert!(node < nodes, "node index out of range");
        assert_eq!(
            intra.rank() == 0,
            inter.is_some(),
            "inter communicator must be held by local rank 0 exactly"
        );
        if let Some(inter) = &inter {
            assert_eq!(
                inter.size(),
                nodes,
                "inter group size must equal node count"
            );
            assert_eq!(inter.rank(), node, "inter rank must equal node index");
        }
        HierComm {
            intra,
            inter,
            node,
            nodes,
        }
    }

    /// Node-local rank.
    pub fn local_rank(&self) -> usize {
        self.intra.rank()
    }

    /// This rank's node index.
    pub fn node(&self) -> usize {
        self.node
    }
}

impl HierComm<ThreadComm, ThreadComm> {
    /// Build a full two-level fabric entirely out of thread groups:
    /// `nodes × per_node` communicators indexed by global rank. Used by
    /// tests and single-process experiments to model hierarchy shape.
    pub fn create_thread_hierarchy(
        nodes: usize,
        per_node: usize,
    ) -> Vec<HierComm<ThreadComm, ThreadComm>> {
        assert!(nodes > 0 && per_node > 0);
        let mut leaders: Vec<Option<ThreadComm>> =
            ThreadComm::create(nodes).into_iter().map(Some).collect();
        let mut out = Vec::with_capacity(nodes * per_node);
        for (node, leader) in leaders.iter_mut().enumerate() {
            let intra = ThreadComm::create(per_node);
            for (local, intra) in intra.into_iter().enumerate() {
                let inter = if local == 0 { leader.take() } else { None };
                out.push(HierComm::new(intra, inter, node, nodes));
            }
        }
        out
    }
}

impl<A: Communicator, B: Communicator> Communicator for HierComm<A, B> {
    fn rank(&self) -> usize {
        self.node * self.intra.size() + self.intra.rank()
    }

    fn size(&self) -> usize {
        self.nodes * self.intra.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.try_allreduce_tagged(buf, op, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.try_allgather_tagged(payload, class)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.try_broadcast_tagged(buf, root, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        // Average must divide by the *global* size exactly once, so both
        // levels run the undivided combine and the mean is applied last.
        let level_op = match op {
            ReduceOp::Average => ReduceOp::Sum,
            other => other,
        };
        self.intra.try_allreduce_tagged(buf, level_op, class)?;
        if let Some(inter) = &self.inter {
            inter.try_allreduce_tagged(buf, level_op, class)?;
        }
        self.intra.try_broadcast_tagged(buf, 0, class)?;
        if op == ReduceOp::Average {
            let inv = 1.0 / self.size() as f32;
            for v in buf.iter_mut() {
                *v *= inv;
            }
        }
        Ok(())
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        let per_node = self.intra.size();
        let global = self.size();
        // Gather within the node, then leaders exchange packed node
        // blocks: [local lengths][concatenated data]. Lengths ride as
        // f32s — exact up to 2^24 elements, far beyond any payload here.
        let local = self.intra.try_allgather_tagged(payload, class)?;
        let mut result: Vec<Vec<f32>> = vec![Vec::new(); global];
        if let Some(inter) = &self.inter {
            let mut packed: Vec<f32> =
                Vec::with_capacity(per_node + local.iter().map(|p| p.len()).sum::<usize>());
            for p in &local {
                debug_assert!(p.len() < (1 << 24));
                packed.push(p.len() as f32);
            }
            for p in &local {
                packed.extend_from_slice(p);
            }
            let node_blocks = inter.try_allgather_tagged(&packed, class)?;
            for (node, block) in node_blocks.iter().enumerate() {
                if block.len() < per_node {
                    return Err(CollectiveError::Mismatch(
                        "hierarchical allgather node block malformed",
                    ));
                }
                let mut offset = per_node;
                for local_rank in 0..per_node {
                    let len = block[local_rank] as usize;
                    if offset + len > block.len() {
                        return Err(CollectiveError::Mismatch(
                            "hierarchical allgather node block malformed",
                        ));
                    }
                    result[node * per_node + local_rank] = block[offset..offset + len].to_vec();
                    offset += len;
                }
            }
        }
        // Leader fans the global result out locally: fixed-size length
        // header first, then the flattened payloads.
        let mut lens: Vec<f32> = if self.inter.is_some() {
            result.iter().map(|p| p.len() as f32).collect()
        } else {
            vec![0.0; global]
        };
        self.intra.try_broadcast_tagged(&mut lens, 0, class)?;
        let total: usize = lens.iter().map(|&l| l as usize).sum();
        let mut flat: Vec<f32> = if self.inter.is_some() {
            result.iter().flat_map(|p| p.iter().copied()).collect()
        } else {
            vec![0.0; total]
        };
        self.intra.try_broadcast_tagged(&mut flat, 0, class)?;
        if self.inter.is_some() {
            return Ok(result);
        }
        let mut offset = 0;
        for (slot, &len) in result.iter_mut().zip(&lens) {
            let len = len as usize;
            *slot = flat[offset..offset + len].to_vec();
            offset += len;
        }
        Ok(result)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let per_node = self.intra.size();
        if root >= self.size() {
            return Err(CollectiveError::Mismatch("broadcast root out of range"));
        }
        let root_node = root / per_node;
        let root_local = root % per_node;
        // Hoist to the owner node's leader, cross the inter level, then
        // fan out locally everywhere.
        if self.node == root_node {
            self.intra.try_broadcast_tagged(buf, root_local, class)?;
        }
        if let Some(inter) = &self.inter {
            inter.try_broadcast_tagged(buf, root_node, class)?;
        }
        self.intra.try_broadcast_tagged(buf, 0, class)
    }

    fn barrier(&self) {
        // Entry barrier within the node, leaders synchronize across
        // nodes, then a release barrier so non-leaders wait for the
        // inter level.
        self.intra.barrier();
        if let Some(inter) = &self.inter {
            inter.barrier();
        }
        self.intra.barrier();
    }

    fn traffic(&self) -> Traffic {
        let a = self.intra.traffic();
        let b = self.inter.as_ref().map(|i| i.traffic()).unwrap_or_default();
        Traffic {
            gradient_bytes: a.gradient_bytes + b.gradient_bytes,
            factor_bytes: a.factor_bytes + b.factor_bytes,
            eigen_bytes: a.eigen_bytes + b.eigen_bytes,
            precond_bytes: a.precond_bytes + b.precond_bytes,
            other_bytes: a.other_bytes + b.other_bytes,
            ops: a.ops + b.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn run_hier<R: Send>(
        nodes: usize,
        per_node: usize,
        f: impl Fn(usize, &HierComm<ThreadComm, ThreadComm>) -> R + Sync,
    ) -> Vec<R> {
        let comms = HierComm::create_thread_hierarchy(nodes, per_node);
        let f = &f;
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .map(|comm| s.spawn(move || f(comm.rank(), comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn global_ranks_are_uniform_layout() {
        let ranks = run_hier(2, 3, |rank, comm| {
            assert_eq!(comm.size(), 6);
            (rank, comm.node(), comm.local_rank())
        });
        let mut seen: Vec<_> = ranks.iter().map(|&(r, _, _)| r).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
        for (r, node, local) in ranks {
            assert_eq!(r, node * 3 + local);
        }
    }

    #[test]
    fn hier_allreduce_sum_and_average() {
        for (nodes, per_node) in [(2, 2), (2, 3), (3, 2), (1, 4), (4, 1)] {
            let global = nodes * per_node;
            let results = run_hier(nodes, per_node, |rank, comm| {
                let mut buf = vec![rank as f32, 1.0];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                let mut avg = vec![rank as f32];
                comm.allreduce(&mut avg, ReduceOp::Average);
                (buf, avg)
            });
            let sum: f32 = (0..global).map(|r| r as f32).sum();
            for (buf, avg) in results {
                assert_eq!(buf, vec![sum, global as f32], "{nodes}x{per_node}");
                assert_eq!(avg, vec![sum / global as f32], "{nodes}x{per_node}");
            }
        }
    }

    #[test]
    fn hier_allreduce_is_deterministic_across_runs() {
        let run = || {
            run_hier(2, 2, |rank, comm| {
                // Values chosen so association order changes the bits.
                let mut buf = vec![0.1f32 + rank as f32 * 1e-7, -3.3e5 * rank as f32];
                comm.allreduce(&mut buf, ReduceOp::Average);
                buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn hier_allreduce_matches_f64_reference_to_tolerance() {
        let global = 6;
        let inputs: Vec<f32> = (0..global).map(|r| 0.37 + r as f32 * 1.13).collect();
        let expect: f64 = inputs.iter().map(|&v| v as f64).sum::<f64>() / global as f64;
        let results = run_hier(2, 3, |rank, comm| {
            let mut buf = vec![0.37 + rank as f32 * 1.13];
            comm.allreduce(&mut buf, ReduceOp::Average);
            buf[0]
        });
        for r in results {
            assert!((r as f64 - expect).abs() < 1e-5);
        }
    }

    #[test]
    fn hier_allgather_variable_lengths() {
        let results = run_hier(2, 2, |rank, comm| {
            let payload: Vec<f32> = (0..=rank).map(|i| (rank * 10 + i) as f32).collect();
            comm.allgather(&payload)
        });
        for gathered in results {
            assert_eq!(gathered.len(), 4);
            for (r, block) in gathered.iter().enumerate() {
                let expect: Vec<f32> = (0..=r).map(|i| (r * 10 + i) as f32).collect();
                assert_eq!(*block, expect);
            }
        }
    }

    #[test]
    fn hier_broadcast_from_every_root() {
        for root in 0..4 {
            let results = run_hier(2, 2, move |rank, comm| {
                let mut buf = if rank == root {
                    vec![42.0, -1.5]
                } else {
                    vec![0.0, 0.0]
                };
                comm.broadcast(&mut buf, root);
                buf
            });
            for r in results {
                assert_eq!(r, vec![42.0, -1.5], "root {root}");
            }
        }
    }

    #[test]
    fn hier_max_reduction() {
        let results = run_hier(3, 2, |rank, comm| {
            let mut buf = vec![-(rank as f32), rank as f32];
            comm.allreduce(&mut buf, ReduceOp::Max);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0, 5.0]);
        }
    }

    #[test]
    fn hier_barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run_hier(2, 3, |_rank, comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            assert_eq!(before.load(Ordering::SeqCst), 6);
        });
    }
}
