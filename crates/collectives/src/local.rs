//! Trivial single-rank communicator.
//!
//! Lets the same training code run undistributed (the paper's 1-GPU
//! baseline columns in Table II) without special-casing: every collective
//! is the identity.

use crate::communicator::{finalize, Communicator, ReduceOp};
use crate::traffic::{Traffic, TrafficClass, TrafficCounter};
use kfac_telemetry::Span;
use std::sync::Arc;

/// A communicator group of size one.
pub struct LocalComm {
    traffic: Arc<TrafficCounter>,
}

impl LocalComm {
    /// Create a single-rank communicator.
    pub fn new() -> Self {
        LocalComm {
            traffic: TrafficCounter::new(),
        }
    }
}

impl Default for LocalComm {
    fn default() -> Self {
        Self::new()
    }
}

impl Communicator for LocalComm {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        let _span = Span::enter("comm/allreduce")
            .with("class", class.name())
            .with("bytes", (buf.len() * 4) as u64);
        self.traffic.record(class, (buf.len() * 4) as u64);
        // Average over one rank is the identity; Sum/Max likewise.
        finalize(buf, op, 1);
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        let _span = Span::enter("comm/allgather")
            .with("class", class.name())
            .with("bytes", (payload.len() * 4) as u64);
        self.traffic.record(class, (payload.len() * 4) as u64);
        vec![payload.to_vec()]
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        assert_eq!(root, 0, "broadcast root out of range for size-1 group");
        let _span = Span::enter("comm/broadcast")
            .with("class", class.name())
            .with("bytes", (buf.len() * 4) as u64)
            .with("root", root);
        self.traffic.record(class, (buf.len() * 4) as u64);
    }

    fn barrier(&self) {}

    fn traffic(&self) -> Traffic {
        self.traffic.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collectives_are_identity() {
        let comm = LocalComm::new();
        assert_eq!(comm.rank(), 0);
        assert_eq!(comm.size(), 1);

        let mut buf = vec![1.0, 2.0];
        comm.allreduce(&mut buf, ReduceOp::Average);
        assert_eq!(buf, vec![1.0, 2.0]);

        let g = comm.allgather(&buf);
        assert_eq!(g, vec![vec![1.0, 2.0]]);

        comm.broadcast(&mut buf, 0);
        assert_eq!(buf, vec![1.0, 2.0]);
        comm.barrier();
        assert_eq!(comm.traffic().ops, 3);
    }

    #[test]
    #[should_panic(expected = "broadcast root out of range")]
    fn bad_root_panics() {
        let comm = LocalComm::new();
        comm.broadcast(&mut [0.0], 1);
    }
}
