//! Horovod-style fusion buffer.
//!
//! Horovod coalesces many small allreduces into one large one by filling a
//! fusion buffer (16–32 MB in the paper, §II-D) so each collective is
//! bandwidth-dominated rather than latency-dominated. The K-FAC factor
//! exchange benefits most: a ResNet has hundreds of small factors whose
//! individual allreduces would each pay the latency term.
//!
//! [`FusionBuffer`] queues named tensors; once the byte threshold is
//! crossed (or [`FusionBuffer::flush`] is called) the queued tensors are
//! packed into one contiguous buffer, reduced with a single collective,
//! and unpacked back to their owners.

use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::TrafficClass;
use crate::wire;
use kfac_tensor::half::Dtype;

/// Horovod's default fusion threshold (§II-D cites 16–32 MB).
pub const DEFAULT_FUSION_BYTES: usize = 16 << 20;

/// Configured thresholds are clamped to at least this. Below ~a page of
/// floats, fusion degenerates into one collective per tensor and the
/// latency term the buffer exists to amortize comes back.
pub const MIN_FUSION_BYTES: usize = 4 << 10;

/// Configured thresholds are clamped to at most this; a fused message
/// must stay under the wire frame ceiling with room to spare.
pub const MAX_FUSION_BYTES: usize = 512 << 20;

/// Resolve the effective flush threshold: the `KFAC_FUSION_MB` env
/// override wins, then the caller's configured value (e.g. from
/// `TrainConfig`), then [`DEFAULT_FUSION_BYTES`] — clamped to
/// `[MIN_FUSION_BYTES, MAX_FUSION_BYTES]` either way, so no setting can
/// stall flushing or overflow a single wire frame. A tensor larger than
/// the threshold still goes out in one message: `push` flushes the whole
/// pending queue, oversized tail included, as soon as the threshold is
/// crossed.
///
/// # Panics
/// Panics with a clear message if `KFAC_FUSION_MB` is set but not an
/// integer MiB count. Fallible callers use [`try_resolve_threshold`].
pub fn resolve_threshold(configured: Option<usize>) -> usize {
    try_resolve_threshold(configured).unwrap_or_else(|e| panic!("{e}"))
}

/// [`resolve_threshold`] returning a typed error instead of panicking on
/// an unparseable `KFAC_FUSION_MB`.
pub fn try_resolve_threshold(configured: Option<usize>) -> Result<usize, String> {
    let env =
        match std::env::var("KFAC_FUSION_MB") {
            Ok(s) => Some(s.parse::<usize>().map(|mb| mb << 20).map_err(|_| {
                format!("KFAC_FUSION_MB={s:?} invalid; expected an integer MiB count")
            })?),
            Err(_) => None,
        };
    Ok(env
        .or(configured)
        .unwrap_or(DEFAULT_FUSION_BYTES)
        .clamp(MIN_FUSION_BYTES, MAX_FUSION_BYTES))
}

/// One queued tensor awaiting fusion.
struct Pending {
    /// Caller-side identifier, returned on completion.
    id: usize,
    data: Vec<f32>,
}

/// Coalesces small allreduces into threshold-sized collectives.
pub struct FusionBuffer {
    threshold_bytes: usize,
    op: ReduceOp,
    class: TrafficClass,
    /// Wire width of the fused collective. Threshold accounting uses
    /// this dtype's element size — a bf16 buffer holds twice the
    /// elements per flush, it does not flush at half the configured
    /// bytes. Defaults to [`Dtype::F32`] (bitwise-identical behavior).
    dtype: Dtype,
    pending: Vec<Pending>,
    pending_bytes: usize,
    done: Vec<(usize, Vec<f32>)>,
}

impl FusionBuffer {
    /// Create a buffer that flushes automatically once `threshold_bytes`
    /// of tensor data are queued. Horovod's default is 16 MiB.
    pub fn new(threshold_bytes: usize, op: ReduceOp, class: TrafficClass) -> Self {
        FusionBuffer {
            threshold_bytes,
            op,
            class,
            dtype: Dtype::F32,
            pending: Vec::new(),
            pending_bytes: 0,
            done: Vec::new(),
        }
    }

    /// Set the wire dtype (builder-style). Half dtypes route the fused
    /// collective through [`wire::try_allreduce_half`], halving wire
    /// bytes; [`Dtype::F32`] keeps the plain allreduce path bit for bit.
    pub fn with_dtype(mut self, dtype: Dtype) -> Self {
        assert!(
            self.pending.is_empty(),
            "wire dtype must be set before tensors are queued"
        );
        self.dtype = dtype;
        self
    }

    /// The wire dtype fused collectives are sent at.
    pub fn dtype(&self) -> Dtype {
        self.dtype
    }

    /// Buffer with the threshold resolved by [`resolve_threshold`]:
    /// `KFAC_FUSION_MB` env override, then `configured`, then the
    /// Horovod default — clamped either way. This is the constructor the
    /// training stack uses; [`FusionBuffer::new`] keeps the raw threshold
    /// for tests that pin exact flush points.
    pub fn with_configured(configured: Option<usize>, op: ReduceOp, class: TrafficClass) -> Self {
        FusionBuffer::new(resolve_threshold(configured), op, class)
    }

    /// The effective flush threshold in bytes.
    pub fn threshold_bytes(&self) -> usize {
        self.threshold_bytes
    }

    /// Queue tensor `id` for reduction. Flushes if the threshold is hit.
    ///
    /// NOTE: like Horovod, all ranks must queue the same tensors in the
    /// same order with the same sizes, so automatic flushes fire at the
    /// same point on every rank.
    pub fn push(&mut self, id: usize, data: Vec<f32>, comm: &dyn Communicator) {
        // Threshold accounting at the *wire* width: the historical math
        // hard-coded 4-byte elements, making bf16 payloads flush at 2×
        // the configured threshold. All byte accounting now routes
        // through `Dtype::size_of`.
        self.pending_bytes += data.len() * self.dtype.size_of();
        self.pending.push(Pending { id, data });
        if self.pending_bytes >= self.threshold_bytes {
            self.flush(comm);
        }
    }

    /// Number of tensors queued but not yet reduced.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Reduce everything queued in one collective.
    ///
    /// # Panics
    /// Panics on a collective fault; use [`FusionBuffer::try_flush`]
    /// under fault injection.
    pub fn flush(&mut self, comm: &dyn Communicator) {
        self.try_flush(comm)
            .unwrap_or_else(|e| panic!("fusion flush failed: {e}"));
    }

    /// Reduce everything queued in one collective, surfacing transport
    /// faults.
    ///
    /// Retry-safe by construction: the fused send buffer is packed from
    /// the pending tensors without consuming them, and pending state is
    /// drained only after the collective succeeds. On `Err` the queued
    /// tensors are all still pending, so a later `try_flush` re-packs
    /// the identical buffer (idempotent re-pack).
    pub fn try_flush(&mut self, comm: &dyn Communicator) -> Result<(), CollectiveError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        // Pack (pending tensors are borrowed, not consumed).
        let total: usize = self.pending.iter().map(|p| p.data.len()).sum();
        let mut fused = Vec::with_capacity(total);
        for p in &self.pending {
            fused.extend_from_slice(&p.data);
        }
        // One bandwidth-bound collective instead of many latency-bound
        // ones. On failure, return before touching pending state.
        // `try_allreduce_half` with `Dtype::F32` is exactly the plain
        // tagged allreduce; half dtypes send packed half-width words.
        wire::try_allreduce_half(comm, &mut fused, self.op, self.class, self.dtype)?;
        // Unpack: only now is the pending queue consumed.
        let mut offset = 0;
        for p in self.pending.drain(..) {
            let n = p.data.len();
            self.done.push((p.id, fused[offset..offset + n].to_vec()));
            offset += n;
        }
        self.pending_bytes = 0;
        Ok(())
    }

    /// Drain completed tensors `(id, reduced_data)` in completion order.
    pub fn take_completed(&mut self) -> Vec<(usize, Vec<f32>)> {
        std::mem::take(&mut self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalComm;
    use crate::thread::ThreadComm;
    use std::thread;

    #[test]
    fn flush_packs_and_unpacks() {
        let comm = LocalComm::new();
        let mut fb = FusionBuffer::new(usize::MAX, ReduceOp::Sum, TrafficClass::Factor);
        fb.push(7, vec![1.0, 2.0], &comm);
        fb.push(9, vec![3.0], &comm);
        assert_eq!(fb.pending_len(), 2);
        assert!(fb.take_completed().is_empty());
        fb.flush(&comm);
        let done = fb.take_completed();
        assert_eq!(done, vec![(7, vec![1.0, 2.0]), (9, vec![3.0])]);
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn auto_flush_at_threshold() {
        let comm = LocalComm::new();
        // Threshold of 12 bytes = 3 f32s.
        let mut fb = FusionBuffer::new(12, ReduceOp::Sum, TrafficClass::Factor);
        fb.push(0, vec![1.0], &comm);
        assert_eq!(fb.pending_len(), 1);
        fb.push(1, vec![2.0, 3.0], &comm); // 12 bytes reached → flush
        assert_eq!(fb.pending_len(), 0);
        assert_eq!(fb.take_completed().len(), 2);
    }

    #[test]
    fn bf16_threshold_accounts_wire_width() {
        let comm = LocalComm::new();
        // Threshold of 12 bytes = 6 bf16 elements on the wire. The old
        // 4-byte-element math would have flushed at 3 elements.
        let mut fb =
            FusionBuffer::new(12, ReduceOp::Sum, TrafficClass::Factor).with_dtype(Dtype::Bf16);
        fb.push(0, vec![1.0; 3], &comm);
        assert_eq!(fb.pending_len(), 1, "3 bf16 elements = 6 bytes < 12");
        fb.push(1, vec![2.0; 3], &comm); // 12 wire bytes reached → flush
        assert_eq!(fb.pending_len(), 0);
        assert_eq!(fb.take_completed().len(), 2);
    }

    #[test]
    fn bf16_fused_reduce_matches_f32_within_tolerance() {
        let comms = ThreadComm::create(4);
        let f = |rank: usize, comm: &ThreadComm| {
            let mut fb = FusionBuffer::new(usize::MAX, ReduceOp::Average, TrafficClass::Gradient)
                .with_dtype(Dtype::Bf16);
            let data: Vec<f32> = (0..64)
                .map(|i| (rank + 1) as f32 * 0.125 * i as f32)
                .collect();
            fb.push(0, data, comm);
            fb.flush(comm);
            (fb.take_completed(), comm.traffic().gradient_bytes)
        };
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let reference = results[0].0[0].1.clone();
        for (done, bytes) in &results {
            // All ranks agree bitwise (pinned rank-order fold).
            assert_eq!(done[0].1, reference);
            // Half-width payload: ceil(64/2)+1 length word, 4 bytes each.
            assert_eq!(*bytes, (64 / 2 + 1) * 4);
        }
        // mean over ranks of (r+1)*0.125*i = 2.5*0.125*i; inputs are
        // bf16-representable but the averaged value needn't be, so allow
        // one bf16 ulp of slack.
        for (i, v) in reference.iter().enumerate() {
            let expect = 2.5 * 0.125 * i as f32;
            assert!(
                (v - expect).abs() <= expect.abs() / 128.0 + 1e-3,
                "i={i} v={v} expect={expect}"
            );
        }
    }

    #[test]
    fn fused_reduce_matches_individual() {
        let comms = ThreadComm::create(3);
        let f = |rank: usize, comm: &ThreadComm| {
            let mut fb = FusionBuffer::new(usize::MAX, ReduceOp::Average, TrafficClass::Factor);
            fb.push(0, vec![rank as f32; 4], comm);
            fb.push(1, vec![(rank * 10) as f32; 2], comm);
            fb.flush(comm);
            fb.take_completed()
        };
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for done in results {
            // mean(0,1,2) = 1; mean(0,10,20) = 10.
            assert_eq!(done[0].1, vec![1.0; 4]);
            assert_eq!(done[1].1, vec![10.0; 2]);
        }
    }

    #[test]
    fn single_collective_for_many_tensors() {
        let comm = LocalComm::new();
        let mut fb = FusionBuffer::new(usize::MAX, ReduceOp::Sum, TrafficClass::Factor);
        for id in 0..50 {
            fb.push(id, vec![1.0; 10], &comm);
        }
        fb.flush(&comm);
        // 50 tensors, exactly one collective op.
        assert_eq!(comm.traffic().ops, 1);
        assert_eq!(comm.traffic().factor_bytes, 50 * 10 * 4);
    }

    #[test]
    fn failed_flush_keeps_pending_and_repacks_identically() {
        use crate::faults::{FaultPlan, FaultPlanConfig, FaultyCommunicator};
        use std::sync::Arc;

        // First index starts a 1-op transient window: the first flush
        // fails, the retry succeeds.
        let mut seed = 0;
        let plan = loop {
            let p = FaultPlan::new(
                FaultPlanConfig {
                    seed,
                    transient_prob: 0.3,
                    transient_ops: 1,
                    ..FaultPlanConfig::default()
                },
                1,
            );
            if p.fault_at(0, TrafficClass::Factor).is_some()
                && p.fault_at(1, TrafficClass::Factor).is_none()
            {
                break p;
            }
            seed += 1;
        };
        let comm = FaultyCommunicator::new(LocalComm::new(), Arc::new(plan));
        let mut fb = FusionBuffer::new(usize::MAX, ReduceOp::Sum, TrafficClass::Factor);
        fb.push(3, vec![1.5, 2.5], comm.inner());
        fb.push(4, vec![-1.0], comm.inner());
        let first = fb.try_flush(&comm);
        assert!(first.is_err(), "{first:?}");
        // Nothing was consumed or completed by the failed attempt.
        assert_eq!(fb.pending_len(), 2);
        assert!(fb.take_completed().is_empty());
        // The retry re-packs the same tensors and succeeds.
        fb.try_flush(&comm).unwrap();
        assert_eq!(
            fb.take_completed(),
            vec![(3, vec![1.5, 2.5]), (4, vec![-1.0])]
        );
        assert_eq!(fb.pending_len(), 0);
    }

    #[test]
    fn oversized_single_tensor_flushes_in_one_message() {
        let comm = LocalComm::new();
        // Threshold of 8 bytes; one 100-element tensor (400 bytes) must
        // still go out as exactly one collective, not panic or stall.
        let mut fb = FusionBuffer::new(8, ReduceOp::Sum, TrafficClass::Gradient);
        fb.push(0, vec![2.0; 100], &comm);
        assert_eq!(fb.pending_len(), 0);
        assert_eq!(comm.traffic().ops, 1);
        assert_eq!(comm.traffic().gradient_bytes, 400);
        assert_eq!(fb.take_completed(), vec![(0, vec![2.0; 100])]);
    }

    #[test]
    fn resolve_threshold_clamps_and_defaults() {
        // Note: env-free process assumption — CI never sets KFAC_FUSION_MB
        // for unit tests.
        assert_eq!(resolve_threshold(None), DEFAULT_FUSION_BYTES);
        assert_eq!(resolve_threshold(Some(0)), MIN_FUSION_BYTES);
        assert_eq!(resolve_threshold(Some(usize::MAX)), MAX_FUSION_BYTES);
        assert_eq!(resolve_threshold(Some(1 << 20)), 1 << 20);
    }

    #[test]
    fn configured_constructor_applies_clamp() {
        let fb = FusionBuffer::with_configured(Some(1), ReduceOp::Sum, TrafficClass::Factor);
        assert_eq!(fb.threshold_bytes(), MIN_FUSION_BYTES);
    }

    #[test]
    fn empty_flush_is_noop() {
        let comm = LocalComm::new();
        let mut fb = FusionBuffer::new(16, ReduceOp::Sum, TrafficClass::Factor);
        fb.flush(&comm);
        assert_eq!(comm.traffic().ops, 0);
    }
}
