//! Collective algorithms over a point-to-point [`Transport`].
//!
//! Horovod/NCCL pick among several allreduce algorithms by message size and
//! rank count (§II-D of the paper): latency-bound small messages go through
//! recursive halving/doubling, bandwidth-bound large messages through a
//! chunk-pipelined ring. This module reproduces that selection behind
//! [`CollectiveAlgo`] / [`AlgoPolicy`] — on *any* transport, in-process
//! thread mailboxes or multi-process TCP alike.
//!
//! ## The determinism contract
//!
//! The whole repo pins one canonical reduction order: **left-associated
//! rank order** `((x₀ + x₁) + x₂) + …`, exactly what [`crate::ThreadComm`]
//! computes at its rendezvous. Floating-point addition is not associative,
//! so the textbook versions of both fast algorithms would break
//! bit-reproducibility (a scatter-reduce ring accumulates each chunk in a
//! rotated rank order; halving/doubling combines pairwise like a tree).
//! Instead:
//!
//! * **Pipelined ring** here is a chunked *chain*: chunks flow rank
//!   0 → 1 → … → p−1, each rank folding its own contribution into the
//!   running partial with [`combine_into`] (which *is* left-associated rank
//!   order), then the finalized chunks flow back down p−1 → … → 0.
//!   Chunking keeps many chunks in flight, so the chain is pipelined: the
//!   per-rank data volume is 2n (vs the scatter-reduce ring's 2n(p−1)/p) —
//!   a deliberate bandwidth premium paid for bitwise determinism.
//! * **Halving/doubling** is recursive-doubling *allgather of the raw
//!   contributions* (log₂ p rounds, non-power-of-two ranks folded in and
//!   out) followed by a local rank-order reduce. Bandwidth-heavier than
//!   true reduce-scatter halving/doubling, but it runs in the log-round
//!   latency envelope — and it is only ever selected for small messages
//!   where the α term dominates anyway.
//! * **Flat** is a plain ring allgather + local rank-order reduce, the
//!   reference the property tests compare everything against.
//!
//! All three produce bit-identical results to each other and to
//! `ThreadComm`'s rendezvous reduction, pinned by proptests in
//! `tests/properties.rs`.

use crate::communicator::{combine_into, finalize, Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::{Traffic, TrafficClass, TrafficCounter};
use crate::transport::{make_tag, Transport};
use kfac_telemetry::Span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Tag phases: one namespace per algorithm stage so chunks of concurrent
/// stages never collide.
const PHASE_RING_REDUCE: u8 = 0;
const PHASE_RING_BCAST: u8 = 1;
const PHASE_GATHER: u8 = 2;
const PHASE_TREE: u8 = 3;
const PHASE_BARRIER: u8 = 4;
const PHASE_HD: u8 = 5;

/// Which allreduce algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Ring allgather of raw contributions + local rank-order reduce.
    /// The reference algorithm; O(p·n) bytes per rank.
    Flat,
    /// Chunk-pipelined chain reduce + chain broadcast. Bandwidth-bound
    /// workhorse for large messages.
    PipelinedRing,
    /// Recursive-doubling allgather + local rank-order reduce. Log-round
    /// latency; selected for small messages.
    HalvingDoubling,
    /// Pick by message size via [`AlgoPolicy::select`].
    Auto,
}

impl CollectiveAlgo {
    /// Stable name used in telemetry tags and env configuration.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgo::Flat => "flat",
            CollectiveAlgo::PipelinedRing => "pipelined-ring",
            CollectiveAlgo::HalvingDoubling => "halving-doubling",
            CollectiveAlgo::Auto => "auto",
        }
    }

    /// Parse the `KFAC_COMM_ALGO` spelling (aliases accepted).
    pub fn parse(s: &str) -> Option<CollectiveAlgo> {
        match s.trim().to_ascii_lowercase().as_str() {
            "flat" => Some(CollectiveAlgo::Flat),
            "ring" | "pipelined-ring" | "pipelined_ring" => Some(CollectiveAlgo::PipelinedRing),
            "hd" | "halving-doubling" | "halving_doubling" => Some(CollectiveAlgo::HalvingDoubling),
            "auto" => Some(CollectiveAlgo::Auto),
            _ => None,
        }
    }
}

/// Size-based algorithm selection policy, the `CollectiveAlgo` dial plus
/// its thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AlgoPolicy {
    /// Forced algorithm, or [`CollectiveAlgo::Auto`] for size-based choice.
    pub algo: CollectiveAlgo,
    /// Pipelined-ring chunk size in elements (f32s).
    pub chunk_elems: usize,
    /// `Auto`: messages of at most this many bytes use halving/doubling.
    /// The default comes from the measured crossover in
    /// `BENCH_allreduce.json` (see `xp bench-allreduce`).
    pub hd_max_bytes: usize,
}

impl Default for AlgoPolicy {
    fn default() -> Self {
        AlgoPolicy {
            algo: CollectiveAlgo::Auto,
            // 64 KiB chunks: large enough to amortize per-message framing,
            // small enough that 4-rank chains keep several chunks in
            // flight for megabyte gradients.
            chunk_elems: 16 * 1024,
            // Measured pipelined-ring vs halving/doubling crossover on the
            // 4-process localhost TCP backend: the α/β fits in
            // BENCH_allreduce.json put it at 94,414 bytes (~94 KiB), so
            // messages up to 94 KiB take the latency-optimal
            // halving/doubling path.
            hd_max_bytes: 94 * 1024,
        }
    }
}

impl AlgoPolicy {
    /// Default policy with `KFAC_COMM_ALGO`, `KFAC_COMM_CHUNK_KB` and
    /// `KFAC_COMM_HD_MAX_KB` env overrides applied.
    ///
    /// # Panics
    /// Panics with a clear message on an unparseable override — a typo in
    /// an env knob should fail loudly, not silently select a default.
    /// Fallible callers (worker bootstrap, recovery paths) use
    /// [`AlgoPolicy::try_from_env`] instead.
    pub fn from_env() -> AlgoPolicy {
        Self::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`AlgoPolicy::from_env`] returning a typed error instead of
    /// panicking on an unparseable override.
    pub fn try_from_env() -> Result<AlgoPolicy, String> {
        Self::from_env_spec(
            std::env::var("KFAC_COMM_ALGO").ok().as_deref(),
            std::env::var("KFAC_COMM_CHUNK_KB").ok().as_deref(),
            std::env::var("KFAC_COMM_HD_MAX_KB").ok().as_deref(),
        )
    }

    /// Pure parse of the three env overrides (testable without touching
    /// the process environment).
    pub fn from_env_spec(
        algo: Option<&str>,
        chunk_kb: Option<&str>,
        hd_max_kb: Option<&str>,
    ) -> Result<AlgoPolicy, String> {
        let mut p = AlgoPolicy::default();
        if let Some(s) = algo {
            p.algo = CollectiveAlgo::parse(s).ok_or_else(|| {
                format!("KFAC_COMM_ALGO={s:?} invalid; expected flat|ring|hd|auto")
            })?;
        }
        if let Some(s) = chunk_kb {
            let kb: usize = s.parse().map_err(|_| {
                format!("KFAC_COMM_CHUNK_KB={s:?} invalid; expected an integer KiB count")
            })?;
            p.chunk_elems = (kb.max(1) * 1024) / std::mem::size_of::<f32>();
        }
        if let Some(s) = hd_max_kb {
            let kb: usize = s.parse().map_err(|_| {
                format!("KFAC_COMM_HD_MAX_KB={s:?} invalid; expected an integer KiB count")
            })?;
            p.hd_max_bytes = kb * 1024;
        }
        Ok(p)
    }

    /// Resolve the algorithm for a message of `bytes` across `size` ranks.
    pub fn select(&self, bytes: usize, size: usize) -> CollectiveAlgo {
        match self.algo {
            CollectiveAlgo::Auto => {
                if size <= 1 {
                    CollectiveAlgo::Flat
                } else if bytes <= self.hd_max_bytes {
                    CollectiveAlgo::HalvingDoubling
                } else {
                    CollectiveAlgo::PipelinedRing
                }
            }
            forced => forced,
        }
    }
}

/// Chunk-pipelined chain allreduce (see module docs for why a chain and
/// not a scatter-reduce ring).
pub fn pipelined_ring_allreduce(
    t: &dyn Transport,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
    chunk_elems: usize,
) -> Result<(), CollectiveError> {
    let p = t.size();
    if p == 1 {
        return Ok(());
    }
    let rank = t.rank();
    let chunk = chunk_elems.max(1);
    // An empty buffer still runs one (empty) chunk through the chain so
    // the collective keeps its group-synchronizing behavior.
    let len = buf.len();
    let nchunks = len.div_ceil(chunk).max(1);
    let range = move |c: usize| c * chunk..len.min((c + 1) * chunk);

    if rank == 0 {
        // Head: stream every chunk into the chain, then collect the
        // finalized chunks coming back.
        for c in 0..nchunks {
            t.try_send(
                1,
                make_tag(seq, PHASE_RING_REDUCE, c as u32),
                &buf[range(c)],
            )?;
        }
        for c in 0..nchunks {
            let done = t.try_recv(1, make_tag(seq, PHASE_RING_BCAST, c as u32))?;
            let r = range(c);
            if done.len() != r.len() {
                return Err(CollectiveError::Mismatch(
                    "allreduce length mismatch across ranks",
                ));
            }
            buf[r].copy_from_slice(&done);
        }
        return Ok(());
    }

    // Middle and tail ranks: fold own contribution into the running
    // partial, forward; the tail finalizes and reverses the flow.
    for c in 0..nchunks {
        let r = range(c);
        let mut acc = t.try_recv(rank - 1, make_tag(seq, PHASE_RING_REDUCE, c as u32))?;
        if acc.len() != r.len() {
            return Err(CollectiveError::Mismatch(
                "allreduce length mismatch across ranks",
            ));
        }
        combine_into(&mut acc, &buf[r.clone()], op);
        if rank < p - 1 {
            t.try_send(rank + 1, make_tag(seq, PHASE_RING_REDUCE, c as u32), &acc)?;
        } else {
            finalize(&mut acc, op, p);
            buf[r].copy_from_slice(&acc);
            t.try_send(rank - 1, make_tag(seq, PHASE_RING_BCAST, c as u32), &acc)?;
        }
    }
    if rank < p - 1 {
        for c in 0..nchunks {
            let done = t.try_recv(rank + 1, make_tag(seq, PHASE_RING_BCAST, c as u32))?;
            let r = range(c);
            if done.len() != r.len() {
                return Err(CollectiveError::Mismatch(
                    "allreduce length mismatch across ranks",
                ));
            }
            buf[r].copy_from_slice(&done);
            if rank > 0 {
                t.try_send(rank - 1, make_tag(seq, PHASE_RING_BCAST, c as u32), &done)?;
            }
        }
    }
    Ok(())
}

/// The origin ranks whose raw contributions `core` holds once its
/// recursive-doubling group has grown to `group` members, given `q` core
/// ranks and `extra` folded-in ranks (`extra = p - q`).
fn hd_origins(core: usize, group: usize, q: usize, extra: usize) -> Vec<usize> {
    let base = core & !(group - 1);
    let mut v = Vec::with_capacity(group * 2);
    for c in base..base + group {
        v.push(c);
        if c < extra {
            v.push(c + q);
        }
    }
    v.sort_unstable();
    v
}

/// Recursive halving/doubling allreduce: allgather the raw contributions
/// in log₂ p rounds, then reduce locally in rank order (see module docs).
pub fn halving_doubling_allreduce(
    t: &dyn Transport,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
) -> Result<(), CollectiveError> {
    let p = t.size();
    if p == 1 {
        return Ok(());
    }
    let rank = t.rank();
    let n = buf.len();
    let q = {
        // Largest power of two ≤ p.
        let mut q = 1usize;
        while q * 2 <= p {
            q *= 2;
        }
        q
    };
    let extra = p - q;
    let mut blocks: Vec<Option<Vec<f32>>> = (0..p).map(|_| None).collect();
    blocks[rank] = Some(buf.to_vec());

    // Fold-in: ranks ≥ q hand their contribution to rank − q and sit out
    // the doubling rounds.
    if rank >= q {
        t.try_send(rank - q, make_tag(seq, PHASE_HD, 0), buf)?;
    } else if rank < extra {
        let b = t.try_recv(rank + q, make_tag(seq, PHASE_HD, 0))?;
        if b.len() != n {
            return Err(CollectiveError::Mismatch(
                "allreduce length mismatch across ranks",
            ));
        }
        blocks[rank + q] = Some(b);
    }

    let rounds = q.trailing_zeros();
    if rank < q {
        let mut group = 1usize;
        for round in 1..=rounds {
            let partner = rank ^ group;
            let mine = hd_origins(rank, group, q, extra);
            let theirs = hd_origins(partner, group, q, extra);
            let mut payload = Vec::with_capacity(mine.len() * n);
            for &o in &mine {
                payload.extend_from_slice(blocks[o].as_ref().expect("own block present"));
            }
            t.try_send(partner, make_tag(seq, PHASE_HD, round), &payload)?;
            let got = t.try_recv(partner, make_tag(seq, PHASE_HD, round))?;
            if got.len() != theirs.len() * n {
                return Err(CollectiveError::Mismatch(
                    "allreduce length mismatch across ranks",
                ));
            }
            for (k, &o) in theirs.iter().enumerate() {
                blocks[o] = Some(got[k * n..(k + 1) * n].to_vec());
            }
            group *= 2;
        }
    }

    // Fold-out: the gathered set goes back to the ranks that sat out.
    let final_round = rounds + 1;
    if rank < extra {
        let mut payload = Vec::with_capacity(p * n);
        for b in &blocks {
            payload.extend_from_slice(b.as_ref().expect("all blocks gathered"));
        }
        t.try_send(rank + q, make_tag(seq, PHASE_HD, final_round), &payload)?;
    } else if rank >= q {
        let got = t.try_recv(rank - q, make_tag(seq, PHASE_HD, final_round))?;
        if got.len() != p * n {
            return Err(CollectiveError::Mismatch(
                "allreduce length mismatch across ranks",
            ));
        }
        for o in 0..p {
            blocks[o] = Some(got[o * n..(o + 1) * n].to_vec());
        }
    }

    // Local reduce in canonical rank order — bit-identical to the
    // ThreadComm rendezvous completion loop.
    let mut acc = blocks[0].take().expect("block 0 gathered");
    for b in blocks.iter().skip(1) {
        combine_into(&mut acc, b.as_ref().expect("block gathered"), op);
    }
    finalize(&mut acc, op, p);
    buf.copy_from_slice(&acc);
    Ok(())
}

/// Ring allgather with per-rank variable payload lengths (frames carry
/// their own length, so no length pre-exchange is needed).
pub fn ring_allgather(
    t: &dyn Transport,
    seq: u64,
    payload: &[f32],
) -> Result<Vec<Vec<f32>>, CollectiveError> {
    let p = t.size();
    let rank = t.rank();
    let mut out: Vec<Vec<f32>> = vec![Vec::new(); p];
    out[rank] = payload.to_vec();
    if p == 1 {
        return Ok(out);
    }
    let right = (rank + 1) % p;
    let left = (rank + p - 1) % p;
    for s in 0..p - 1 {
        let send_origin = (rank + p - s) % p;
        t.try_send(
            right,
            make_tag(seq, PHASE_GATHER, s as u32),
            &out[send_origin],
        )?;
        let recv_origin = (rank + p - 1 - s) % p;
        out[recv_origin] = t.try_recv(left, make_tag(seq, PHASE_GATHER, s as u32))?;
    }
    Ok(out)
}

/// Reference allreduce: ring allgather of raw contributions + local
/// rank-order reduce.
pub fn flat_allreduce(
    t: &dyn Transport,
    seq: u64,
    buf: &mut [f32],
    op: ReduceOp,
) -> Result<(), CollectiveError> {
    let p = t.size();
    if p == 1 {
        return Ok(());
    }
    let gathered = ring_allgather(t, seq, buf)?;
    if gathered.iter().any(|g| g.len() != buf.len()) {
        return Err(CollectiveError::Mismatch(
            "allreduce length mismatch across ranks",
        ));
    }
    let mut acc = gathered[0].clone();
    for g in gathered.iter().skip(1) {
        combine_into(&mut acc, g, op);
    }
    finalize(&mut acc, op, p);
    buf.copy_from_slice(&acc);
    Ok(())
}

/// Binomial-tree broadcast from `root`.
pub fn binomial_broadcast(
    t: &dyn Transport,
    seq: u64,
    buf: &mut [f32],
    root: usize,
) -> Result<(), CollectiveError> {
    let p = t.size();
    if root >= p {
        return Err(CollectiveError::Mismatch("broadcast root out of range"));
    }
    if p == 1 {
        return Ok(());
    }
    let rank = t.rank();
    let vr = (rank + p - root) % p;
    if vr != 0 {
        // Parent = vr with its lowest set bit cleared.
        let lsb = vr & vr.wrapping_neg();
        let parent = (vr - lsb + root) % p;
        let got = t.try_recv(parent, make_tag(seq, PHASE_TREE, vr as u32))?;
        if got.len() != buf.len() {
            return Err(CollectiveError::Mismatch("broadcast length mismatch"));
        }
        buf.copy_from_slice(&got);
    }
    // Children: vr + m for powers of two m below vr's lowest set bit
    // (every power of two for the root).
    let limit = if vr == 0 { p } else { vr & vr.wrapping_neg() };
    let mut m = 1;
    while m < limit {
        if vr + m < p {
            let child = (vr + m + root) % p;
            t.try_send(child, make_tag(seq, PHASE_TREE, (vr + m) as u32), buf)?;
        }
        m <<= 1;
    }
    Ok(())
}

/// Dissemination barrier: ⌈log₂ p⌉ rounds of token exchange.
pub fn dissemination_barrier(t: &dyn Transport, seq: u64) -> Result<(), CollectiveError> {
    let p = t.size();
    if p == 1 {
        return Ok(());
    }
    let rank = t.rank();
    let mut step = 1usize;
    let mut round = 0u32;
    while step < p {
        let to = (rank + step) % p;
        let from = (rank + p - step) % p;
        t.try_send(to, make_tag(seq, PHASE_BARRIER, round), &[])?;
        t.try_recv(from, make_tag(seq, PHASE_BARRIER, round))?;
        step <<= 1;
        round += 1;
    }
    Ok(())
}

/// A [`Communicator`] built from a [`Transport`] plus an [`AlgoPolicy`].
///
/// This is the bridge that gives any point-to-point backend the full
/// Horovod-style primitive set: `AlgoComm<ThreadComm>` runs the fast
/// algorithms over in-process mailboxes, and the multi-process
/// [`crate::proc::ProcComm`] embeds one over its TCP mesh. Per-collective
/// sequence numbers keep concurrent chunk traffic of successive
/// collectives disjoint; the MPI ordering contract (every rank issues the
/// same collective sequence) keeps the numbers agreed group-wide.
pub struct AlgoComm<T: Transport> {
    transport: T,
    policy: AlgoPolicy,
    seq: AtomicU64,
    traffic: Arc<TrafficCounter>,
}

impl<T: Transport> AlgoComm<T> {
    /// Wrap `transport` with the given selection policy.
    pub fn new(transport: T, policy: AlgoPolicy) -> Self {
        AlgoComm {
            transport,
            policy,
            seq: AtomicU64::new(0),
            traffic: TrafficCounter::new(),
        }
    }

    /// The underlying transport endpoint.
    pub fn transport(&self) -> &T {
        &self.transport
    }

    /// The active selection policy.
    pub fn policy(&self) -> AlgoPolicy {
        self.policy
    }

    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Mirror traffic into this rank's counter and the ambient telemetry
    /// registry, tagging the algorithm that carried the bytes.
    fn record(&self, class: TrafficClass, bytes: u64, algo: &'static str) {
        self.traffic.record(class, bytes);
        if let Some((registry, _)) = kfac_telemetry::current() {
            registry.counter("comm/ops").inc();
            registry.counter(class.byte_counter_name()).add(bytes);
            registry.counter(&format!("comm/algo/{algo}")).inc();
        }
    }
}

impl<T: Transport> Communicator for AlgoComm<T> {
    fn rank(&self) -> usize {
        self.transport.rank()
    }

    fn size(&self) -> usize {
        self.transport.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.try_allreduce_tagged(buf, op, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.try_allgather_tagged(payload, class)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.try_broadcast_tagged(buf, root, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let bytes = std::mem::size_of_val(buf);
        let algo = self.policy.select(bytes, self.size());
        let _span = Span::enter("comm/allreduce")
            .with("class", class.name())
            .with("bytes", bytes as u64)
            .with("algo", algo.name());
        self.record(class, bytes as u64, algo.name());
        let seq = self.next_seq();
        match algo {
            CollectiveAlgo::Flat => flat_allreduce(&self.transport, seq, buf, op),
            CollectiveAlgo::PipelinedRing => {
                pipelined_ring_allreduce(&self.transport, seq, buf, op, self.policy.chunk_elems)
            }
            CollectiveAlgo::HalvingDoubling => {
                halving_doubling_allreduce(&self.transport, seq, buf, op)
            }
            CollectiveAlgo::Auto => unreachable!("select() resolves Auto"),
        }
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        let bytes = std::mem::size_of_val(payload);
        let _span = Span::enter("comm/allgather")
            .with("class", class.name())
            .with("bytes", bytes as u64)
            .with("algo", "ring-allgather");
        self.record(class, bytes as u64, "ring-allgather");
        let seq = self.next_seq();
        ring_allgather(&self.transport, seq, payload)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let bytes = std::mem::size_of_val(buf);
        let _span = Span::enter("comm/broadcast")
            .with("class", class.name())
            .with("bytes", bytes as u64)
            .with("root", root)
            .with("algo", "binomial-tree");
        self.record(class, bytes as u64, "binomial-tree");
        let seq = self.next_seq();
        binomial_broadcast(&self.transport, seq, buf, root)
    }

    fn barrier(&self) {
        let _span = Span::enter("comm/barrier");
        let seq = self.next_seq();
        dissemination_barrier(&self.transport, seq).unwrap_or_else(|e| panic!("{e}"));
    }

    fn traffic(&self) -> Traffic {
        self.traffic.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hd_origins_cover_all_ranks_at_final_group() {
        for p in [2usize, 3, 4, 5, 6, 7, 8, 12] {
            let mut q = 1;
            while q * 2 <= p {
                q *= 2;
            }
            let extra = p - q;
            let all = hd_origins(0, q, q, extra);
            let expect: Vec<usize> = (0..p).collect();
            assert_eq!(all, expect, "p={p}");
        }
    }

    #[test]
    fn hd_origins_partition_within_round() {
        // At every round the partner groups must own disjoint origin
        // sets whose union is stable under merging.
        let (p, q) = (7usize, 4usize);
        let extra = p - q;
        let a = hd_origins(0, 2, q, extra); // group {0,1}
        let b = hd_origins(2, 2, q, extra); // group {2,3}
        assert_eq!(a, vec![0, 1, 4, 5]);
        assert_eq!(b, vec![2, 3, 6]);
    }

    #[test]
    fn policy_auto_selects_by_size() {
        let p = AlgoPolicy::default();
        assert_eq!(p.select(1024, 4), CollectiveAlgo::HalvingDoubling);
        // The default threshold is the measured ~94 KiB crossover from
        // BENCH_allreduce.json: 80 KiB is still latency-bound
        // (halving/doubling), 128 KiB is bandwidth-bound (ring).
        assert_eq!(p.select(80 * 1024, 4), CollectiveAlgo::HalvingDoubling);
        assert_eq!(p.select(94 * 1024, 4), CollectiveAlgo::HalvingDoubling);
        assert_eq!(p.select(128 * 1024, 4), CollectiveAlgo::PipelinedRing);
        assert_eq!(p.select(8 << 20, 4), CollectiveAlgo::PipelinedRing);
        assert_eq!(p.select(8 << 20, 1), CollectiveAlgo::Flat);
        let forced = AlgoPolicy {
            algo: CollectiveAlgo::Flat,
            ..AlgoPolicy::default()
        };
        assert_eq!(forced.select(8 << 20, 4), CollectiveAlgo::Flat);
    }

    #[test]
    fn algo_names_round_trip() {
        for a in [
            CollectiveAlgo::Flat,
            CollectiveAlgo::PipelinedRing,
            CollectiveAlgo::HalvingDoubling,
            CollectiveAlgo::Auto,
        ] {
            assert_eq!(CollectiveAlgo::parse(a.name()), Some(a));
        }
        assert_eq!(CollectiveAlgo::parse("nccl"), None);
    }
}
