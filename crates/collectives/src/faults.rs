//! Deterministic fault injection for collectives.
//!
//! The paper's training runs span 16–256 GPUs, where stragglers, dropped
//! messages, and transient link failures are routine; follow-up work on
//! distributed K-FAC (Zhang et al. 2022, Shi et al. 2021) notes that
//! overlapped comm/compute pipelines amplify the blast radius of a single
//! slow collective. This module makes those failures *injectable and
//! reproducible* so the degradation paths in `core`/`harness` can be
//! exercised deterministically:
//!
//! * [`FaultPlan`] — a seeded, stateless schedule mapping every logical
//!   collective index to "no fault" or one [`FaultKind`]. Decisions are
//!   pure hashes of `(seed, op_index)`, so two plans built from the same
//!   [`FaultPlanConfig`] produce byte-identical schedules regardless of
//!   query order.
//! * [`FaultyCommunicator`] — wraps any [`Communicator`] and consults the
//!   plan before each collective. Every rank's wrapper advances its own
//!   op cursor in lockstep (ranks issue identical call sequences — the
//!   MPI contract), so a fault decision is *global*: all ranks fail, or
//!   none do, and the group's rendezvous never desynchronizes.
//!
//! ## Fault semantics
//!
//! Faults occupy *windows* of consecutive op indexes; each attempt
//! (including each retry) consumes one index on every rank. A
//! [`FaultKind::Transient`] window shorter than the retry budget is
//! healed by [`crate::RetryPolicy`]; a [`FaultKind::Timeout`] window
//! longer than the budget forces the caller onto its degradation path
//! (stale factors, skipped step). [`FaultKind::Delay`] makes only the
//! culprit rank sleep — the others block at the rendezvous, which is
//! exactly a straggler. [`FaultKind::Corrupt`] models corruption caught
//! by a transport checksum (the attempt fails, source data intact);
//! [`FaultKind::BitFlip`] models *silent* corruption — the collective
//! succeeds but one word of the result has one exponent bit flipped,
//! identically on every rank, so downstream finiteness/norm guards are
//! what must catch it.
//!
//! Rank loss is configured explicitly ([`FaultPlanConfig::rank_loss_at`])
//! rather than drawn, so tests can place it precisely; from that index
//! on, every targeted collective fails with
//! [`CollectiveError::RankFailed`] and the caller must checkpoint-restore.

use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::{Traffic, TrafficClass};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Straggler: the culprit rank sleeps `micros` before joining the
    /// collective; everyone else waits at the rendezvous.
    Delay {
        /// Sleep applied to the culprit rank.
        micros: u64,
    },
    /// Short outage: attempts inside the window fail with
    /// [`CollectiveError::Timeout`]; retries past the window succeed.
    Transient {
        /// Window length in op indexes.
        ops: u32,
    },
    /// Long outage: like [`FaultKind::Transient`] but sized to outlast
    /// any bounded retry budget, forcing graceful degradation.
    Timeout {
        /// Window length in op indexes.
        ops: u32,
    },
    /// Corruption caught in flight (transport checksum): the attempt
    /// fails with [`CollectiveError::Corrupted`], source data intact.
    Corrupt,
    /// Silent corruption: the collective succeeds but one exponent bit
    /// of one result word is flipped, identically on every rank.
    BitFlip,
    /// The culprit rank is permanently gone; every targeted collective
    /// from the loss index on fails with [`CollectiveError::RankFailed`].
    RankLoss,
}

impl FaultKind {
    /// How many consecutive op indexes the fault occupies.
    fn window(&self) -> u64 {
        match self {
            FaultKind::Transient { ops } | FaultKind::Timeout { ops } => (*ops).max(1) as u64,
            _ => 1,
        }
    }
}

/// A fault active at some op index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveFault {
    /// The op index at which the fault's window started.
    pub started_at: u64,
    /// The fault.
    pub kind: FaultKind,
    /// Rank blamed for the fault (the straggler / the lost rank). For
    /// global outcomes (timeouts, corruption) it is attribution only.
    pub culprit: usize,
}

/// Probabilities and parameters from which a [`FaultPlan`] draws.
///
/// All probabilities are per *op index*; disabled kinds default to 0.
#[derive(Debug, Clone)]
pub struct FaultPlanConfig {
    /// RNG seed; the entire schedule is a pure function of this.
    pub seed: u64,
    /// Probability an op index starts a straggler delay.
    pub delay_prob: f64,
    /// Straggler sleep in microseconds.
    pub delay_micros: u64,
    /// Probability an op index starts a transient outage window.
    pub transient_prob: f64,
    /// Transient window length (keep below the retry budget).
    pub transient_ops: u32,
    /// Probability an op index starts a long outage window.
    pub timeout_prob: f64,
    /// Long-outage window length (size above the retry budget).
    pub timeout_ops: u32,
    /// Probability of detected (checksummed) corruption.
    pub corrupt_prob: f64,
    /// Probability of silent bit-flip corruption.
    pub bitflip_prob: f64,
    /// Permanent rank loss at `(op_index, rank)`, if any.
    pub rank_loss_at: Option<(u64, usize)>,
    /// Traffic classes faults apply to. Collectives in other classes
    /// (e.g. [`TrafficClass::Other`]: validation, model broadcast) pass
    /// through untouched but still consume op indexes.
    pub classes: Vec<TrafficClass>,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            seed: 0,
            delay_prob: 0.0,
            delay_micros: 200,
            transient_prob: 0.0,
            transient_ops: 2,
            timeout_prob: 0.0,
            timeout_ops: 8,
            corrupt_prob: 0.0,
            bitflip_prob: 0.0,
            rank_loss_at: None,
            classes: vec![
                TrafficClass::Gradient,
                TrafficClass::Factor,
                TrafficClass::Eigen,
            ],
        }
    }
}

/// splitmix64-style stateless mixer: decision `lane` for op index `a`
/// under `seed`. Pure, so schedules are order-independent.
fn mix(seed: u64, a: u64, lane: u64) -> u64 {
    let mut z =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ lane.wrapping_mul(0xd6e8_feb8_6659_fd93);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Seeded, stateless fault schedule. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultPlanConfig,
    world: usize,
    /// Longest window any drawn fault can occupy; bounds the backward
    /// scan in [`FaultPlan::fault_at`].
    max_window: u64,
}

impl FaultPlan {
    /// Build a plan for a `world`-rank group.
    pub fn new(config: FaultPlanConfig, world: usize) -> Self {
        assert!(world > 0, "fault plan needs at least one rank");
        let max_window = [
            1,
            config.transient_ops.max(1) as u64,
            config.timeout_ops.max(1) as u64,
        ]
        .into_iter()
        .max()
        .unwrap_or(1);
        FaultPlan {
            config,
            world,
            max_window,
        }
    }

    /// A plan that injects nothing (useful as a disabled default).
    pub fn disabled(world: usize) -> Self {
        FaultPlan::new(FaultPlanConfig::default(), world)
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultPlanConfig {
        &self.config
    }

    /// Does a fault window *start* at op index `i`? Pure hash draw.
    fn draw_start(&self, i: u64) -> Option<(FaultKind, usize)> {
        let c = &self.config;
        let u = unit(mix(c.seed, i, 0));
        let culprit = (mix(c.seed, i, 1) % self.world as u64) as usize;
        let mut acc = c.delay_prob;
        if u < acc {
            return Some((
                FaultKind::Delay {
                    micros: c.delay_micros,
                },
                culprit,
            ));
        }
        acc += c.transient_prob;
        if u < acc {
            return Some((
                FaultKind::Transient {
                    ops: c.transient_ops.max(1),
                },
                culprit,
            ));
        }
        acc += c.timeout_prob;
        if u < acc {
            return Some((
                FaultKind::Timeout {
                    ops: c.timeout_ops.max(1),
                },
                culprit,
            ));
        }
        acc += c.corrupt_prob;
        if u < acc {
            return Some((FaultKind::Corrupt, culprit));
        }
        acc += c.bitflip_prob;
        if u < acc {
            return Some((FaultKind::BitFlip, culprit));
        }
        None
    }

    /// The fault governing op index `i` for a collective of `class`, if
    /// any. Rank loss dominates; otherwise the earliest window covering
    /// `i` wins.
    pub fn fault_at(&self, i: u64, class: TrafficClass) -> Option<ActiveFault> {
        if !self.config.classes.contains(&class) {
            return None;
        }
        if let Some((at, rank)) = self.config.rank_loss_at {
            if i >= at {
                return Some(ActiveFault {
                    started_at: at,
                    kind: FaultKind::RankLoss,
                    culprit: rank,
                });
            }
        }
        let scan_from = i.saturating_sub(self.max_window.saturating_sub(1));
        for start in scan_from..=i {
            if let Some((kind, culprit)) = self.draw_start(start) {
                if start + kind.window() > i {
                    return Some(ActiveFault {
                        started_at: start,
                        kind,
                        culprit,
                    });
                }
            }
        }
        None
    }

    /// Render the first `n_ops` decisions for `class` as bytes — the
    /// canonical form the determinism property tests compare.
    pub fn schedule_bytes(&self, n_ops: u64, class: TrafficClass) -> Vec<u8> {
        let mut out = String::new();
        for i in 0..n_ops {
            use std::fmt::Write;
            let _ = writeln!(out, "{i}: {:?}", self.fault_at(i, class));
        }
        out.into_bytes()
    }

    /// Pick the word and exponent bit a [`FaultKind::BitFlip`] starting
    /// at `started_at` flips in a `len`-word buffer. Deterministic, so
    /// every rank corrupts the identical word the identical way.
    fn bitflip_target(&self, started_at: u64, len: usize) -> Option<(usize, u32)> {
        if len == 0 {
            return None;
        }
        let word = (mix(self.config.seed, started_at, 2) % len as u64) as usize;
        // Flip an exponent bit (23..=30): turns a well-scaled value into
        // a huge-but-often-finite one, the nastiest case for guards that
        // only check for NaN/inf.
        let bit = 23 + (mix(self.config.seed, started_at, 3) % 8) as u32;
        Some((word, bit))
    }
}

/// A [`Communicator`] wrapper that injects the faults a [`FaultPlan`]
/// schedules. See the [module docs](self) for the semantics.
///
/// Each collective attempt (including retries) consumes one op index
/// from this rank's cursor; ranks issuing identical call sequences see
/// identical indexes and therefore identical fault decisions.
pub struct FaultyCommunicator<C> {
    inner: C,
    plan: Arc<FaultPlan>,
    cursor: AtomicU64,
}

impl<C: Communicator> FaultyCommunicator<C> {
    /// Wrap `inner`, consulting `plan` before every collective.
    pub fn new(inner: C, plan: Arc<FaultPlan>) -> Self {
        FaultyCommunicator {
            inner,
            plan,
            cursor: AtomicU64::new(0),
        }
    }

    /// The wrapped communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Number of collective attempts issued so far on this rank.
    pub fn ops_issued(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Consume one op index and resolve this attempt's fate: `Ok(None)`
    /// — run the collective clean; `Ok(Some(fault))` — run it, then
    /// apply the fault's corruption; `Err` — the attempt fails without
    /// touching the group (identically on every rank).
    fn admit(&self, class: TrafficClass) -> Result<Option<ActiveFault>, CollectiveError> {
        let index = self.cursor.fetch_add(1, Ordering::SeqCst);
        match self.plan.fault_at(index, class) {
            None => Ok(None),
            Some(f) => match f.kind {
                FaultKind::Delay { micros } => {
                    if f.culprit == self.inner.rank() {
                        std::thread::sleep(std::time::Duration::from_micros(micros));
                    }
                    Ok(None)
                }
                FaultKind::Transient { .. } | FaultKind::Timeout { .. } => {
                    Err(CollectiveError::Timeout {
                        waited_ms: (index - f.started_at) + 1,
                    })
                }
                FaultKind::Corrupt => Err(CollectiveError::Corrupted),
                FaultKind::RankLoss => Err(CollectiveError::RankFailed(f.culprit)),
                FaultKind::BitFlip => Ok(Some(f)),
            },
        }
    }

    fn flip_in(&self, fault: &ActiveFault, buf: &mut [f32]) {
        if let Some((word, bit)) = self.plan.bitflip_target(fault.started_at, buf.len()) {
            buf[word] = f32::from_bits(buf[word].to_bits() ^ (1 << bit));
        }
    }
}

impl<C: Communicator> Communicator for FaultyCommunicator<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.try_allreduce_tagged(buf, op, class)
            .unwrap_or_else(|e| panic!("unhandled injected fault: {e}"));
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.try_allgather_tagged(payload, class)
            .unwrap_or_else(|e| panic!("unhandled injected fault: {e}"))
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.try_broadcast_tagged(buf, root, class)
            .unwrap_or_else(|e| panic!("unhandled injected fault: {e}"));
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let fault = self.admit(class)?;
        self.inner.try_allreduce_tagged(buf, op, class)?;
        if let Some(f) = fault {
            self.flip_in(&f, buf);
        }
        Ok(())
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        let fault = self.admit(class)?;
        let mut gathered = self.inner.try_allgather_tagged(payload, class)?;
        if let Some(f) = fault {
            // Corrupt the culprit rank's partition (every rank applies
            // the same flip to its own copy of the gathered result).
            let part = f.culprit.min(gathered.len().saturating_sub(1));
            if let Some(slice) = gathered.get_mut(part) {
                self.flip_in(&f, slice);
            }
        }
        Ok(gathered)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let fault = self.admit(class)?;
        self.inner.try_broadcast_tagged(buf, root, class)?;
        if let Some(f) = fault {
            self.flip_in(&f, buf);
        }
        Ok(())
    }

    fn barrier(&self) {
        // Barriers consume an index (keeping cursors aligned with the
        // collective stream) but only straggler delays apply: a barrier
        // carries no payload to corrupt and "failing" one has no
        // degradation story.
        let index = self.cursor.fetch_add(1, Ordering::SeqCst);
        if let Some(f) = self.plan.fault_at(index, TrafficClass::Other) {
            if let FaultKind::Delay { micros } = f.kind {
                if f.culprit == self.inner.rank() {
                    std::thread::sleep(std::time::Duration::from_micros(micros));
                }
            }
        }
        self.inner.barrier();
    }

    fn traffic(&self) -> Traffic {
        self.inner.traffic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::RetryPolicy;
    use crate::thread::ThreadComm;
    use std::thread;

    fn chaos_config(seed: u64) -> FaultPlanConfig {
        FaultPlanConfig {
            seed,
            delay_prob: 0.05,
            transient_prob: 0.1,
            timeout_prob: 0.02,
            corrupt_prob: 0.05,
            bitflip_prob: 0.02,
            rank_loss_at: Some((1000, 1)),
            ..FaultPlanConfig::default()
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(chaos_config(7), 4);
        let b = FaultPlan::new(chaos_config(7), 4);
        assert_eq!(
            a.schedule_bytes(500, TrafficClass::Gradient),
            b.schedule_bytes(500, TrafficClass::Gradient)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(chaos_config(7), 4);
        let b = FaultPlan::new(chaos_config(8), 4);
        assert_ne!(
            a.schedule_bytes(500, TrafficClass::Gradient),
            b.schedule_bytes(500, TrafficClass::Gradient)
        );
    }

    #[test]
    fn untargeted_classes_see_no_faults() {
        let plan = FaultPlan::new(chaos_config(3), 4);
        for i in 0..2000 {
            assert_eq!(plan.fault_at(i, TrafficClass::Other), None);
        }
    }

    #[test]
    fn windows_cover_consecutive_indexes() {
        let plan = FaultPlan::new(
            FaultPlanConfig {
                seed: 11,
                transient_prob: 0.05,
                transient_ops: 3,
                ..FaultPlanConfig::default()
            },
            2,
        );
        // Find a window start and check it covers exactly `ops` indexes
        // (unless overlapped by another window).
        let mut checked = false;
        for i in 0..5000u64 {
            if let Some(f) = plan.fault_at(i, TrafficClass::Gradient) {
                if f.started_at == i {
                    for k in 0..3 {
                        assert!(
                            plan.fault_at(i + k, TrafficClass::Gradient).is_some(),
                            "index {} inside window starting at {} must be faulty",
                            i + k,
                            i
                        );
                    }
                    checked = true;
                    break;
                }
            }
        }
        assert!(checked, "no window found in 5000 indexes at p=0.05");
    }

    #[test]
    fn rank_loss_is_permanent_and_dominates() {
        let plan = FaultPlan::new(
            FaultPlanConfig {
                seed: 5,
                rank_loss_at: Some((10, 2)),
                ..FaultPlanConfig::default()
            },
            4,
        );
        assert_eq!(plan.fault_at(9, TrafficClass::Gradient), None);
        for i in 10..100 {
            let f = plan.fault_at(i, TrafficClass::Gradient).unwrap();
            assert_eq!(f.kind, FaultKind::RankLoss);
            assert_eq!(f.culprit, 2);
        }
    }

    #[test]
    fn disabled_plan_is_transparent() {
        let comms = ThreadComm::create(2);
        let plan = Arc::new(FaultPlan::disabled(2));
        let results: Vec<Vec<f32>> = thread::scope(|s| {
            comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    let plan = Arc::clone(&plan);
                    s.spawn(move || {
                        let fc = FaultyCommunicator::new(comm, plan);
                        let mut buf = vec![rank as f32, 1.0];
                        fc.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                            .unwrap();
                        buf
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r, vec![1.0, 2.0]);
        }
    }

    #[test]
    fn transient_window_heals_under_retry() {
        // A plan whose very first indexes are a transient window: place
        // it deterministically by scanning seeds.
        let mut seed = 0;
        let plan = loop {
            let p = FaultPlan::new(
                FaultPlanConfig {
                    seed,
                    transient_prob: 0.2,
                    transient_ops: 2,
                    ..FaultPlanConfig::default()
                },
                2,
            );
            if p.fault_at(0, TrafficClass::Gradient).is_some() {
                break p;
            }
            seed += 1;
        };
        let plan = Arc::new(plan);
        let policy = RetryPolicy {
            max_attempts: 8,
            base_backoff: std::time::Duration::ZERO,
            max_backoff: std::time::Duration::ZERO,
        };
        let comms = ThreadComm::create(2);
        let results: Vec<f32> = thread::scope(|s| {
            comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    let plan = Arc::clone(&plan);
                    s.spawn(move || {
                        let fc = FaultyCommunicator::new(comm, plan);
                        let mut buf = vec![rank as f32 + 1.0];
                        policy
                            .run(|| {
                                fc.try_allreduce_tagged(
                                    &mut buf,
                                    ReduceOp::Sum,
                                    TrafficClass::Gradient,
                                )
                            })
                            .unwrap();
                        buf[0]
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r, 3.0);
        }
    }

    #[test]
    fn bitflip_corrupts_identically_on_all_ranks() {
        let mut seed = 0;
        let plan = loop {
            let p = FaultPlan::new(
                FaultPlanConfig {
                    seed,
                    bitflip_prob: 0.5,
                    ..FaultPlanConfig::default()
                },
                3,
            );
            if matches!(
                p.fault_at(0, TrafficClass::Gradient),
                Some(ActiveFault {
                    kind: FaultKind::BitFlip,
                    ..
                })
            ) {
                break p;
            }
            seed += 1;
        };
        let plan = Arc::new(plan);
        let comms = ThreadComm::create(3);
        let results: Vec<Vec<f32>> = thread::scope(|s| {
            comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    let plan = Arc::clone(&plan);
                    s.spawn(move || {
                        let fc = FaultyCommunicator::new(comm, plan);
                        let mut buf = vec![rank as f32, 2.0, 3.0];
                        fc.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                            .unwrap();
                        buf
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // All ranks hold the same (corrupted) result — consistency is
        // what keeps training deterministic even under silent faults.
        assert_eq!(results[0], results[1]);
        assert_eq!(results[1], results[2]);
        // And it differs from the clean reduction in exactly one word.
        let clean = [3.0f32, 6.0, 9.0];
        let diff = results[0]
            .iter()
            .zip(clean.iter())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diff, 1);
    }

    #[test]
    fn rank_loss_fails_all_ranks_without_hanging() {
        let plan = Arc::new(FaultPlan::new(
            FaultPlanConfig {
                seed: 1,
                rank_loss_at: Some((0, 1)),
                ..FaultPlanConfig::default()
            },
            2,
        ));
        let comms = ThreadComm::create(2);
        let results: Vec<Result<(), CollectiveError>> = thread::scope(|s| {
            comms
                .into_iter()
                .map(|comm| {
                    let plan = Arc::clone(&plan);
                    s.spawn(move || {
                        let fc = FaultyCommunicator::new(comm, plan);
                        let mut buf = vec![1.0];
                        fc.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for r in results {
            assert_eq!(r, Err(CollectiveError::RankFailed(1)));
        }
    }
}
