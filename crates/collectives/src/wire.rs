//! Half-width wire payloads: bf16/f16 encode/decode for collectives.
//!
//! The measured bottleneck on both fabrics is bytes on the wire —
//! gradient fusion buffers and factor/eigen allgather payloads are all
//! `f32` today. This module is the codec layer that halves them:
//!
//! * [`encode_payload`] packs an `f32` slice into half-width words (two
//!   bf16/f16 values per `f32` wire word, RNE conversion, plus one
//!   length-prefix word), so an `n`-element tensor travels as
//!   `⌈n/2⌉ + 1` words instead of `n`.
//! * [`decode_payload`] widens back, rejecting any non-finite decoded
//!   value in the spirit of `factor_unpack_checked`: a NaN/Inf that
//!   slipped into a half payload must not silently poison every rank's
//!   statistics. Rejection is [`CollectiveError::Mismatch`] — *not*
//!   retryable, because re-encoding the same source replays the same
//!   bad payload (unlike transient transport faults).
//! * [`try_allreduce_half`] implements a reduced collective over half
//!   words: each rank allgathers its encoded payload and folds the
//!   decoded contributions *locally in pinned rank order* (the same
//!   `combine_into`/`finalize` semantics the fabrics use), so results
//!   are bitwise identical across fabrics and runs by construction —
//!   and the wire carries half-width words. Byte accounting flows
//!   through the underlying collective, so the per-class counters
//!   (`comm/bytes/gradient`, …) honestly show the halved volume.
//! * [`try_allgather_half`] is the straightforward gather of encoded
//!   payloads, used for factor and eigendecomposition exchange.
//!
//! Every payload sent through this module is additionally accounted
//! under a per-dtype ambient counter (`comm/bytes/dtype/f32`,
//! `comm/bytes/dtype/bf16`, `comm/bytes/dtype/f16`) — the counters the
//! mixed-precision acceptance experiment asserts halving on — plus
//! `comm/wire/rejected` for decode rejections.

use crate::communicator::{combine_into, finalize, Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::TrafficClass;
use kfac_tensor::half::{bf16_to_f32, f16_to_f32, f32_to_bf16, f32_to_f16, Dtype};

/// Record `bytes` sent at `dtype` width on the ambient per-dtype wire
/// counter (`comm/bytes/dtype/<name>`), when telemetry is installed.
pub fn record_dtype_bytes(dtype: Dtype, bytes: usize) {
    if let Some((registry, _)) = kfac_telemetry::current() {
        registry
            .counter(&format!("comm/bytes/dtype/{}", dtype.name()))
            .add(bytes as u64);
    }
}

fn record_rejection() {
    if let Some((registry, _)) = kfac_telemetry::current() {
        registry.counter("comm/wire/rejected").inc();
    }
}

/// Number of `f32` wire words an `n`-element tensor occupies at `dtype`
/// width (including the length prefix for half formats).
pub fn wire_words(n: usize, dtype: Dtype) -> usize {
    match dtype {
        Dtype::F32 => n,
        Dtype::Bf16 | Dtype::F16 => n.div_ceil(2) + 1,
    }
}

#[inline(always)]
fn narrow(v: f32, dtype: Dtype) -> u16 {
    match dtype {
        Dtype::Bf16 => f32_to_bf16(v),
        Dtype::F16 => f32_to_f16(v),
        Dtype::F32 => unreachable!("f32 payloads are not word-packed"),
    }
}

#[inline(always)]
fn widen(h: u16, dtype: Dtype) -> f32 {
    match dtype {
        Dtype::Bf16 => bf16_to_f32(h),
        Dtype::F16 => f16_to_f32(h),
        Dtype::F32 => unreachable!("f32 payloads are not word-packed"),
    }
}

/// Encode `data` into half-width wire words: one `f32` length-prefix
/// word (the element count as raw `u32` bits) followed by `⌈n/2⌉` words
/// each packing two RNE-converted half values (low half first; the
/// final high half is zero-padded for odd `n`).
///
/// For [`Dtype::F32`] the payload is returned unchanged (no prefix) —
/// callers use this to keep one code path across policies.
pub fn encode_payload(data: &[f32], dtype: Dtype) -> Vec<f32> {
    if dtype == Dtype::F32 {
        return data.to_vec();
    }
    let mut words = Vec::with_capacity(wire_words(data.len(), dtype));
    words.push(f32::from_bits(data.len() as u32));
    let mut chunks = data.chunks_exact(2);
    for pair in &mut chunks {
        let lo = narrow(pair[0], dtype) as u32;
        let hi = narrow(pair[1], dtype) as u32;
        words.push(f32::from_bits(lo | (hi << 16)));
    }
    if let [last] = chunks.remainder() {
        words.push(f32::from_bits(narrow(*last, dtype) as u32));
    }
    words
}

/// Decode a payload produced by [`encode_payload`], widening every half
/// value back to `f32` and rejecting non-finite values (see module
/// docs). For [`Dtype::F32`] the words are returned as-is after the
/// same finiteness check.
pub fn decode_payload(words: &[f32], dtype: Dtype) -> Result<Vec<f32>, CollectiveError> {
    if dtype == Dtype::F32 {
        if words.iter().any(|v| !v.is_finite()) {
            record_rejection();
            return Err(CollectiveError::Mismatch(
                "non-finite value in f32 wire payload",
            ));
        }
        return Ok(words.to_vec());
    }
    let Some((&prefix, packed)) = words.split_first() else {
        record_rejection();
        return Err(CollectiveError::Mismatch(
            "half wire payload missing length prefix",
        ));
    };
    let n = prefix.to_bits() as usize;
    if packed.len() != n.div_ceil(2) {
        record_rejection();
        return Err(CollectiveError::Mismatch(
            "half wire payload length disagrees with prefix",
        ));
    }
    let mut out = Vec::with_capacity(n);
    for &w in packed {
        let bits = w.to_bits();
        out.push(widen(bits as u16, dtype));
        if out.len() < n {
            out.push(widen((bits >> 16) as u16, dtype));
        }
    }
    if out.iter().any(|v| !v.is_finite()) {
        record_rejection();
        return Err(CollectiveError::Mismatch(
            "non-finite value in half-precision wire payload",
        ));
    }
    Ok(out)
}

/// Allreduce `buf` across ranks with the wire carrying `dtype`-width
/// words; see module docs for the allgather-and-fold construction. For
/// [`Dtype::F32`] this is exactly the communicator's own allreduce
/// (bitwise unchanged from the pre-mixed-precision stack).
pub fn try_allreduce_half(
    comm: &dyn Communicator,
    buf: &mut [f32],
    op: ReduceOp,
    class: TrafficClass,
    dtype: Dtype,
) -> Result<(), CollectiveError> {
    if dtype == Dtype::F32 {
        comm.try_allreduce_tagged(buf, op, class)?;
        record_dtype_bytes(dtype, buf.len() * dtype.size_of());
        return Ok(());
    }
    let words = encode_payload(buf, dtype);
    let gathered = comm.try_allgather_tagged(&words, class)?;
    debug_assert_eq!(gathered.len(), comm.size());
    // Fold decoded contributions locally in pinned rank order — the
    // exact accumulation semantics of the fabrics' own reductions, so
    // every rank (on every fabric) computes bitwise the same result.
    let mut acc: Option<Vec<f32>> = None;
    for payload in &gathered {
        let x = decode_payload(payload, dtype)?;
        match &mut acc {
            None => acc = Some(x),
            Some(a) => {
                if a.len() != x.len() {
                    record_rejection();
                    return Err(CollectiveError::Mismatch(
                        "half allreduce payload lengths disagree across ranks",
                    ));
                }
                combine_into(a, &x, op);
            }
        }
    }
    let mut acc = acc.expect("allgather returned no payloads");
    finalize(&mut acc, op, comm.size());
    if acc.len() != buf.len() {
        record_rejection();
        return Err(CollectiveError::Mismatch(
            "half allreduce result length disagrees with buffer",
        ));
    }
    buf.copy_from_slice(&acc);
    // Two halves per word: the dtype counter records true wire bytes
    // (words × 4 = elements × 2, plus the prefix word).
    record_dtype_bytes(dtype, words.len() * std::mem::size_of::<f32>());
    Ok(())
}

/// Allgather `payload` with the wire carrying `dtype`-width words,
/// decoding every rank's contribution back to `f32` (with non-finite
/// rejection). For [`Dtype::F32`] this is the communicator's own
/// allgather.
pub fn try_allgather_half(
    comm: &dyn Communicator,
    payload: &[f32],
    class: TrafficClass,
    dtype: Dtype,
) -> Result<Vec<Vec<f32>>, CollectiveError> {
    if dtype == Dtype::F32 {
        let gathered = comm.try_allgather_tagged(payload, class)?;
        record_dtype_bytes(dtype, payload.len() * dtype.size_of());
        return Ok(gathered);
    }
    let words = encode_payload(payload, dtype);
    let gathered = comm.try_allgather_tagged(&words, class)?;
    let mut out = Vec::with_capacity(gathered.len());
    for p in &gathered {
        out.push(decode_payload(p, dtype)?);
    }
    record_dtype_bytes(dtype, words.len() * std::mem::size_of::<f32>());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalComm;
    use crate::thread::ThreadComm;
    use std::thread;

    #[test]
    fn round_trip_even_and_odd_lengths() {
        for dtype in [Dtype::Bf16, Dtype::F16] {
            for n in [0usize, 1, 2, 3, 8, 17] {
                let data: Vec<f32> = (0..n).map(|i| i as f32 - 4.0).collect();
                let words = encode_payload(&data, dtype);
                assert_eq!(words.len(), wire_words(n, dtype));
                let back = decode_payload(&words, dtype).unwrap();
                // Small integers are exactly representable in both formats.
                assert_eq!(back, data, "{dtype:?} n={n}");
            }
        }
    }

    #[test]
    fn f32_passthrough_is_identity() {
        let data = vec![1.5, -2.25, 1e-20];
        let words = encode_payload(&data, Dtype::F32);
        assert_eq!(words, data);
        assert_eq!(decode_payload(&words, Dtype::F32).unwrap(), data);
    }

    #[test]
    fn decode_rejects_non_finite() {
        // A NaN survives bf16 encoding and must be rejected on decode.
        let words = encode_payload(&[1.0, f32::NAN], Dtype::Bf16);
        let err = decode_payload(&words, Dtype::Bf16).unwrap_err();
        assert!(matches!(err, CollectiveError::Mismatch(_)), "{err:?}");
        // bf16 keeps f32's exponent range, so Inf also travels — reject.
        let words = encode_payload(&[f32::INFINITY], Dtype::Bf16);
        assert!(decode_payload(&words, Dtype::Bf16).is_err());
        // f16 encode saturates, so an f32 Inf decodes finite (65504).
        let words = encode_payload(&[f32::INFINITY], Dtype::F16);
        assert_eq!(decode_payload(&words, Dtype::F16).unwrap(), vec![65504.0]);
    }

    #[test]
    fn decode_rejects_truncated_and_mislabeled_payloads() {
        assert!(decode_payload(&[], Dtype::Bf16).is_err());
        let mut words = encode_payload(&[1.0, 2.0, 3.0], Dtype::Bf16);
        words.pop();
        assert!(decode_payload(&words, Dtype::Bf16).is_err());
    }

    #[test]
    fn half_allreduce_averages_and_halves_bytes() {
        let ranks = 4usize;
        let comms = ThreadComm::create(ranks);
        let n = 1000usize;
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| {
                    s.spawn(move || {
                        let mut buf: Vec<f32> =
                            (0..n).map(|i| (rank * n + i) as f32 * 0.25).collect();
                        try_allreduce_half(
                            comm,
                            &mut buf,
                            ReduceOp::Average,
                            TrafficClass::Gradient,
                            Dtype::Bf16,
                        )
                        .unwrap();
                        (buf, comm.traffic().gradient_bytes)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // All ranks agree bitwise.
        for (buf, _) in &results[1..] {
            assert_eq!(buf, &results[0].0);
        }
        // Wire bytes: (n/2 + 1) words × 4 bytes ≈ half of an f32
        // allreduce's n × 4.
        let expected = (n / 2 + 1) * 4;
        for (_, bytes) in &results {
            assert_eq!(*bytes, expected as u64);
        }
        // And the values are the bf16-rounded average, close to exact.
        let exact =
            |i: usize| (0..ranks).map(|r| (r * n + i) as f32 * 0.25).sum::<f32>() / ranks as f32;
        for (i, v) in results[0].0.iter().enumerate() {
            let e = exact(i);
            assert!((v - e).abs() <= e.abs() / 128.0 + 1e-3, "i={i} {v} vs {e}");
        }
    }

    #[test]
    fn half_allreduce_f32_policy_matches_plain_allreduce() {
        let comm = LocalComm::new();
        let mut a = vec![1.0f32, -2.5, 3.25];
        let mut b = a.clone();
        try_allreduce_half(
            &comm,
            &mut a,
            ReduceOp::Average,
            TrafficClass::Gradient,
            Dtype::F32,
        )
        .unwrap();
        comm.allreduce_tagged(&mut b, ReduceOp::Average, TrafficClass::Gradient);
        assert_eq!(a, b);
    }

    #[test]
    fn half_allgather_decodes_per_rank_payloads() {
        let comms = ThreadComm::create(2);
        let results: Vec<_> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| {
                    s.spawn(move || {
                        // Different lengths per rank, like eig payloads.
                        let payload: Vec<f32> =
                            (0..3 + rank).map(|i| i as f32 + rank as f32).collect();
                        try_allgather_half(comm, &payload, TrafficClass::Eigen, Dtype::F16).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for gathered in &results {
            assert_eq!(gathered.len(), 2);
            assert_eq!(gathered[0], vec![0.0, 1.0, 2.0]);
            assert_eq!(gathered[1], vec![1.0, 2.0, 3.0, 4.0]);
        }
    }
}
