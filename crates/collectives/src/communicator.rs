//! The collective-communication interface.
//!
//! Mirrors the primitive set Horovod exposes to PyTorch (§II-D of the
//! paper): `allreduce`, `allgather`, `broadcast`, with MPI `rank`/`size`
//! identity. All implementations require that every rank issues the same
//! sequence of collective calls (the standard MPI/Horovod contract);
//! violating it deadlocks, exactly as it would on the real stack.

use crate::handle::CollectiveError;
use crate::traffic::{Traffic, TrafficClass};

/// Reduction applied by [`Communicator::allreduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Element-wise sum across ranks.
    Sum,
    /// Element-wise mean across ranks — the op used for gradient and
    /// factor averaging in the paper (Eq. 1, Algorithm 1 lines 4 & 8).
    Average,
    /// Element-wise maximum across ranks (used for diagnostics).
    Max,
}

/// A participant in a fixed-size group of synchronous workers.
///
/// One `Communicator` value belongs to exactly one rank; collectives block
/// until every rank in the group has made the matching call.
///
/// `Sync` is required so a rank's handle can be shared with that rank's
/// execution-engine workers (the dedicated comm worker issues collectives
/// from its own thread); collectives already take `&self`.
pub trait Communicator: Send + Sync {
    /// This worker's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// In-place collective reduction of `buf` across all ranks, recording
    /// the bytes under `class` for the communication analysis of §IV-C.
    ///
    /// All ranks must pass buffers of identical length. On return every
    /// rank's `buf` holds the reduced result.
    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass);

    /// Gather each rank's payload on every rank, recording bytes under
    /// `class`.
    ///
    /// Payload lengths may differ across ranks (Horovod's allgather
    /// likewise only requires matching trailing dimensions): the result is
    /// indexed by rank. Used to exchange eigendecompositions in
    /// Algorithm 1 line 18, where ranks own different numbers of factors.
    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>>;

    /// Broadcast `buf` from `root` to all ranks in place, recording bytes
    /// under `class`.
    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass);

    /// [`allreduce_tagged`](Communicator::allreduce_tagged) with class
    /// [`TrafficClass::Other`].
    fn allreduce(&self, buf: &mut [f32], op: ReduceOp) {
        self.allreduce_tagged(buf, op, TrafficClass::Other);
    }

    /// [`allgather_tagged`](Communicator::allgather_tagged) with class
    /// [`TrafficClass::Other`].
    fn allgather(&self, payload: &[f32]) -> Vec<Vec<f32>> {
        self.allgather_tagged(payload, TrafficClass::Other)
    }

    /// [`broadcast_tagged`](Communicator::broadcast_tagged) with class
    /// [`TrafficClass::Other`].
    fn broadcast(&self, buf: &mut [f32], root: usize) {
        self.broadcast_tagged(buf, root, TrafficClass::Other);
    }

    /// Fallible [`allreduce_tagged`](Communicator::allreduce_tagged):
    /// surfaces transport faults as [`CollectiveError`] instead of
    /// panicking or hanging. The default implementation delegates to the
    /// infallible path (plain communicators cannot fail), so the
    /// fault-free code path is bitwise unchanged; fault-aware wrappers
    /// ([`crate::faults::FaultyCommunicator`]) and the hardened
    /// [`crate::ThreadComm`] override it.
    ///
    /// On `Err` the buffer contents are unspecified but the caller's
    /// source data (if retained) can be replayed: implementations must
    /// make a failed attempt side-effect free on the *group* state so
    /// retrying is sound.
    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.allreduce_tagged(buf, op, class);
        Ok(())
    }

    /// Fallible [`allgather_tagged`](Communicator::allgather_tagged);
    /// see [`try_allreduce_tagged`](Communicator::try_allreduce_tagged).
    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        Ok(self.allgather_tagged(payload, class))
    }

    /// Fallible [`broadcast_tagged`](Communicator::broadcast_tagged);
    /// see [`try_allreduce_tagged`](Communicator::try_allreduce_tagged).
    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.broadcast_tagged(buf, root, class);
        Ok(())
    }

    /// Block until every rank reaches the barrier.
    fn barrier(&self);

    /// Cumulative communication accounting for this rank.
    fn traffic(&self) -> Traffic {
        Traffic::default()
    }
}

/// Apply `op`'s elementwise combine step: `acc[i] = combine(acc[i], x[i])`.
pub(crate) fn combine_into(acc: &mut [f32], x: &[f32], op: ReduceOp) {
    debug_assert_eq!(acc.len(), x.len());
    match op {
        ReduceOp::Sum | ReduceOp::Average => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a += b;
            }
        }
        ReduceOp::Max => {
            for (a, &b) in acc.iter_mut().zip(x) {
                *a = a.max(b);
            }
        }
    }
}

/// Apply the finalization step of `op` after all ranks contributed.
pub(crate) fn finalize(acc: &mut [f32], op: ReduceOp, size: usize) {
    if op == ReduceOp::Average {
        let inv = 1.0 / size as f32;
        for a in acc {
            *a *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_sum() {
        let mut acc = vec![1.0, 2.0];
        combine_into(&mut acc, &[3.0, -1.0], ReduceOp::Sum);
        assert_eq!(acc, vec![4.0, 1.0]);
    }

    #[test]
    fn combine_max() {
        let mut acc = vec![1.0, 5.0];
        combine_into(&mut acc, &[3.0, -1.0], ReduceOp::Max);
        assert_eq!(acc, vec![3.0, 5.0]);
    }

    #[test]
    fn finalize_average_divides() {
        let mut acc = vec![8.0, 4.0];
        finalize(&mut acc, ReduceOp::Average, 4);
        assert_eq!(acc, vec![2.0, 1.0]);
        let mut acc2 = vec![8.0];
        finalize(&mut acc2, ReduceOp::Sum, 4);
        assert_eq!(acc2, vec![8.0]);
    }
}
