//! Analytic α/β cost models for collectives.
//!
//! The paper relies on Horovod's ring allreduce being bandwidth-optimal
//! (§II-D, citing Patarasuk & Yuan \[35\]). The `kfac-cluster` scaling
//! simulator prices every collective in Algorithm 1 with these standard
//! models:
//!
//! * ring allreduce of `n` bytes on `p` ranks:
//!   `2 (p−1) α + 2 n β (p−1)/p`
//! * ring allgather where each rank contributes `n/p` of the final `n`
//!   bytes: `(p−1) α + n β (p−1)/p`
//! * binomial-tree broadcast: `⌈log₂ p⌉ (α + n β)`
//!
//! with `α` the per-message latency (seconds) and `β` the inverse
//! bandwidth (seconds/byte).

/// Interconnect parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-message latency, seconds.
    pub alpha_s: f64,
    /// Inverse bandwidth, seconds per byte.
    pub beta_s_per_byte: f64,
}

impl LinkSpec {
    /// InfiniBand EDR-like defaults (the paper's Frontera GPU subsystem):
    /// ~2 µs latency, ~100 Gbit/s ≈ 12.5 GB/s effective per-rank bandwidth.
    pub fn infiniband_edr() -> Self {
        LinkSpec {
            alpha_s: 2.0e-6,
            beta_s_per_byte: 1.0 / 12.5e9,
        }
    }

    /// A slower 10 GbE-like link for sensitivity studies.
    pub fn ethernet_10g() -> Self {
        LinkSpec {
            alpha_s: 20.0e-6,
            beta_s_per_byte: 1.0 / 1.25e9,
        }
    }

    /// Ring allreduce of `bytes` across `p` ranks (bandwidth-optimal
    /// scatter-reduce + allgather, the algorithm Horovod implements).
    pub fn allreduce_s(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 || bytes == 0 {
            return 0.0;
        }
        let p_f = p as f64;
        2.0 * (p_f - 1.0) * self.alpha_s
            + 2.0 * bytes as f64 * self.beta_s_per_byte * (p_f - 1.0) / p_f
    }

    /// Ring allgather where the *total* gathered payload is `total_bytes`.
    pub fn allgather_s(&self, total_bytes: u64, p: usize) -> f64 {
        if p <= 1 || total_bytes == 0 {
            return 0.0;
        }
        let p_f = p as f64;
        (p_f - 1.0) * self.alpha_s + total_bytes as f64 * self.beta_s_per_byte * (p_f - 1.0) / p_f
    }

    /// Binomial-tree broadcast of `bytes` to `p` ranks.
    pub fn broadcast_s(&self, bytes: u64, p: usize) -> f64 {
        if p <= 1 || bytes == 0 {
            return 0.0;
        }
        let rounds = (p as f64).log2().ceil();
        rounds * (self.alpha_s + bytes as f64 * self.beta_s_per_byte)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_costs_nothing() {
        let l = LinkSpec::infiniband_edr();
        assert_eq!(l.allreduce_s(1 << 20, 1), 0.0);
        assert_eq!(l.allgather_s(1 << 20, 1), 0.0);
        assert_eq!(l.broadcast_s(1 << 20, 1), 0.0);
    }

    #[test]
    fn allreduce_bandwidth_term_saturates() {
        // The bandwidth term approaches 2nβ as p → ∞ (ring optimality):
        // doubling p beyond a point barely changes the cost of a large
        // message.
        let l = LinkSpec::infiniband_edr();
        let n = 256 << 20; // 256 MB: firmly bandwidth-bound
        let t64 = l.allreduce_s(n, 64);
        let t128 = l.allreduce_s(n, 128);
        let limit = 2.0 * n as f64 * l.beta_s_per_byte;
        assert!(t64 < t128, "latency term still grows with p");
        assert!((t128 - limit) / limit < 0.02, "within 2% of the 2nβ limit");
    }

    #[test]
    fn small_messages_are_latency_bound() {
        // The motivation for the fusion buffer: at 4 KB the latency term
        // dominates; at 16 MB bandwidth dominates.
        let l = LinkSpec::infiniband_edr();
        let p = 64;
        let latency_part = 2.0 * 63.0 * l.alpha_s;
        let small = l.allreduce_s(4 << 10, p);
        let big = l.allreduce_s(16 << 20, p);
        assert!(latency_part / small > 0.5, "small message mostly latency");
        assert!(latency_part / big < 0.1, "big message mostly bandwidth");
    }

    #[test]
    fn allgather_cheaper_than_allreduce() {
        // Allgather moves the payload once, allreduce effectively twice.
        let l = LinkSpec::infiniband_edr();
        let n = 8 << 20;
        assert!(l.allgather_s(n, 32) < l.allreduce_s(n, 32));
    }

    #[test]
    fn broadcast_scales_logarithmically() {
        let l = LinkSpec::infiniband_edr();
        let n = 1 << 20;
        let t2 = l.broadcast_s(n, 2);
        let t16 = l.broadcast_s(n, 16);
        assert!((t16 / t2 - 4.0).abs() < 1e-9, "log2(16)/log2(2) = 4");
    }

    #[test]
    fn monotone_in_bytes() {
        let l = LinkSpec::ethernet_10g();
        assert!(l.allreduce_s(2000, 8) > l.allreduce_s(1000, 8));
        assert!(l.allgather_s(2000, 8) > l.allgather_s(1000, 8));
        assert!(l.broadcast_s(2000, 8) > l.broadcast_s(1000, 8));
    }
}
