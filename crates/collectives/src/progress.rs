//! Background progress engine: MPI `Isend`/`Test`/`Wait`-style semantics
//! over the deferred-op machinery.
//!
//! [`OpQueue`](crate::handle::OpQueue) defers collectives but still
//! completes them in one blocking `synchronize` batch on the caller's
//! thread. Horovod instead runs a *background progress thread* that pops
//! registered ops off a shared queue and drives the network while
//! compute continues (§II-D). [`ProgressEngine`] reproduces that split:
//! any thread submits ops and polls/waits on handles; one dedicated
//! thread per rank calls [`ProgressEngine::drive`] with the rank's
//! communicator and executes ops in strict submission order — which is
//! what keeps the cross-rank collective sequences aligned (the MPI
//! ordering contract) even though submitters race.

use crate::communicator::{Communicator, ReduceOp};
use crate::handle::{CollectiveError, OpHandle, OpResult, QueuedOp};
use crate::retry::RetryPolicy;
use crate::traffic::TrafficClass;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct EngineState {
    next: u64,
    queued: VecDeque<(OpHandle, QueuedOp)>,
    /// The op the driver popped and is currently executing, if any;
    /// lets waiters distinguish "in flight" from "never issued / taken".
    in_flight: Option<OpHandle>,
    /// Outcomes keyed by handle: `Ok` results or the collective's own
    /// failure (fault-aware communicators only).
    completed: HashMap<OpHandle, Result<OpResult, CollectiveError>>,
    shutdown: bool,
}

struct EngineShared {
    state: Mutex<EngineState>,
    /// Signals the driver (new op / shutdown) and waiters (op done).
    cv: Condvar,
}

/// Clonable handle to a rank's background progress engine.
///
/// Submission returns immediately with an [`OpHandle`]; completion is
/// observed with [`ProgressEngine::test`] (non-blocking poll) or
/// [`ProgressEngine::wait`] (block until done). A dedicated thread runs
/// [`ProgressEngine::drive`], which owns all actual communication.
#[derive(Clone)]
pub struct ProgressEngine {
    shared: Arc<EngineShared>,
}

impl Default for ProgressEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressEngine {
    /// New engine with nothing queued.
    pub fn new() -> Self {
        ProgressEngine {
            shared: Arc::new(EngineShared {
                state: Mutex::new(EngineState {
                    next: 0,
                    queued: VecDeque::new(),
                    in_flight: None,
                    completed: HashMap::new(),
                    shutdown: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    fn submit(&self, op: QueuedOp) -> OpHandle {
        let mut st = self.shared.state.lock();
        let h = OpHandle(st.next);
        st.next += 1;
        st.queued.push_back((h, op));
        self.shared.cv.notify_all();
        h
    }

    /// Submit an allreduce for background execution.
    pub fn submit_allreduce(&self, data: Vec<f32>, op: ReduceOp, class: TrafficClass) -> OpHandle {
        self.submit(QueuedOp::AllReduce { data, op, class })
    }

    /// Submit an allgather for background execution.
    pub fn submit_allgather(&self, data: Vec<f32>, class: TrafficClass) -> OpHandle {
        self.submit(QueuedOp::AllGather { data, class })
    }

    /// Non-blocking poll: `true` once `h`'s result is ready to take.
    pub fn test(&self, h: OpHandle) -> bool {
        self.shared.state.lock().completed.contains_key(&h)
    }

    /// Block until `h` completes and take its result.
    ///
    /// Errors immediately on handles never issued here or already
    /// redeemed, and surfaces the op's own failure (e.g.
    /// [`CollectiveError::Timeout`]) when the driver's collective failed.
    /// Ops still queued at shutdown are drained by the driver before it
    /// exits, so pending waits always resolve as long as
    /// [`ProgressEngine::drive`] ran.
    pub fn wait(&self, h: OpHandle) -> Result<OpResult, CollectiveError> {
        let mut st = self.shared.state.lock();
        loop {
            if let Some(r) = st.completed.remove(&h) {
                return r;
            }
            let pending = st.in_flight == Some(h) || st.queued.iter().any(|(q, _)| *q == h);
            if !pending {
                return Err(CollectiveError::UnknownHandle(h));
            }
            self.shared.cv.wait(&mut st);
        }
    }

    /// [`ProgressEngine::wait`] with a deadline: if `h` has not completed
    /// within `timeout`, returns [`CollectiveError::Timeout`] and leaves
    /// the op in place (a later `wait`/`wait_for` can still redeem it).
    pub fn wait_for(&self, h: OpHandle, timeout: Duration) -> Result<OpResult, CollectiveError> {
        let start = Instant::now();
        let mut st = self.shared.state.lock();
        loop {
            if let Some(r) = st.completed.remove(&h) {
                return r;
            }
            let pending = st.in_flight == Some(h) || st.queued.iter().any(|(q, _)| *q == h);
            if !pending {
                return Err(CollectiveError::UnknownHandle(h));
            }
            let elapsed = start.elapsed();
            if elapsed >= timeout {
                return Err(CollectiveError::Timeout {
                    waited_ms: elapsed.as_millis() as u64,
                });
            }
            self.shared.cv.wait_for(&mut st, timeout - elapsed);
        }
    }

    /// Drive the engine on the calling thread until shutdown: pop ops in
    /// submission order, execute each against `comm` (outside the lock),
    /// publish the result, and sleep when idle. Intended for one
    /// dedicated communication thread per rank. Equivalent to
    /// [`ProgressEngine::drive_with_policy`] with no retries.
    pub fn drive(&self, comm: &dyn Communicator) {
        self.drive_with_policy(comm, RetryPolicy::none());
    }

    /// [`ProgressEngine::drive`] with bounded retry: each popped op is
    /// attempted under `policy` (transient faults retry with exponential
    /// backoff; a failed attempt re-runs from the op's original staged
    /// payload, which [`QueuedOp::try_execute`] keeps intact). The final
    /// outcome — `Ok` or the last error — is published to waiters.
    ///
    /// Ranks sharing a deterministic fault schedule make identical retry
    /// decisions, so the cross-rank collective sequences stay aligned.
    pub fn drive_with_policy(&self, comm: &dyn Communicator, policy: RetryPolicy) {
        loop {
            let popped = {
                let mut st = self.shared.state.lock();
                loop {
                    if let Some((h, op)) = st.queued.pop_front() {
                        st.in_flight = Some(h);
                        break Some((h, op));
                    }
                    if st.shutdown {
                        break None;
                    }
                    self.shared.cv.wait(&mut st);
                }
            };
            let Some((h, op)) = popped else { return };
            // The collective rendezvous happens here, unlocked, so
            // submitters and waiters on this rank are never blocked on
            // another rank's arrival.
            let result = policy.run(|| op.try_execute(comm));
            let mut st = self.shared.state.lock();
            st.in_flight = None;
            st.completed.insert(h, result);
            self.shared.cv.notify_all();
        }
    }

    /// Ask the driver to exit once the queue drains, and wake everyone.
    pub fn shutdown(&self) {
        self.shared.state.lock().shutdown = true;
        self.shared.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalComm;
    use crate::thread::ThreadComm;
    use std::thread;

    #[test]
    fn background_thread_completes_submitted_ops() {
        let engine = ProgressEngine::new();
        let driver = {
            let engine = engine.clone();
            thread::spawn(move || {
                let comm = LocalComm::new();
                engine.drive(&comm);
            })
        };
        let h1 = engine.submit_allreduce(vec![1.0, 2.0], ReduceOp::Sum, TrafficClass::Gradient);
        let h2 = engine.submit_allgather(vec![3.0], TrafficClass::Eigen);
        assert_eq!(
            engine.wait(h1).unwrap().into_reduced().unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(
            engine.wait(h2).unwrap().into_gathered().unwrap(),
            vec![vec![3.0]]
        );
        engine.shutdown();
        driver.join().unwrap();
    }

    #[test]
    fn test_polls_without_blocking_and_wait_errors_on_unknown() {
        let engine = ProgressEngine::new();
        let bogus = OpHandle(42);
        assert!(!engine.test(bogus));
        assert_eq!(
            engine.wait(bogus),
            Err(CollectiveError::UnknownHandle(bogus))
        );
        engine.shutdown();
    }

    #[test]
    fn wait_for_times_out_then_still_redeems() {
        let engine = ProgressEngine::new();
        // No driver yet: the op stays queued, so the deadline fires.
        let h = engine.submit_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        let out = engine.wait_for(h, std::time::Duration::from_millis(20));
        assert!(
            matches!(out, Err(CollectiveError::Timeout { .. })),
            "{out:?}"
        );
        // Start the driver; the op is still queued and must complete.
        let driver = {
            let engine = engine.clone();
            thread::spawn(move || {
                let comm = LocalComm::new();
                engine.drive(&comm);
            })
        };
        let out = engine.wait_for(h, std::time::Duration::from_secs(5));
        assert_eq!(out.unwrap().into_reduced().unwrap(), vec![1.0]);
        engine.shutdown();
        driver.join().unwrap();
    }

    #[test]
    fn driver_retries_transient_faults_with_policy() {
        use crate::faults::{FaultPlan, FaultPlanConfig, FaultyCommunicator};
        use crate::retry::RetryPolicy;
        use std::sync::Arc;

        // A plan whose first index starts a 2-op transient window.
        let mut seed = 0;
        let plan = loop {
            let p = FaultPlan::new(
                FaultPlanConfig {
                    seed,
                    transient_prob: 0.2,
                    transient_ops: 2,
                    ..FaultPlanConfig::default()
                },
                1,
            );
            if p.fault_at(0, TrafficClass::Gradient).is_some() {
                break p;
            }
            seed += 1;
        };
        let engine = ProgressEngine::new();
        let driver = {
            let engine = engine.clone();
            let plan = Arc::new(plan);
            thread::spawn(move || {
                let comm = FaultyCommunicator::new(LocalComm::new(), plan);
                let policy = RetryPolicy {
                    max_attempts: 8,
                    base_backoff: std::time::Duration::ZERO,
                    max_backoff: std::time::Duration::ZERO,
                };
                engine.drive_with_policy(&comm, policy);
            })
        };
        let h = engine.submit_allreduce(vec![4.0, 5.0], ReduceOp::Sum, TrafficClass::Gradient);
        assert_eq!(
            engine.wait(h).unwrap().into_reduced().unwrap(),
            vec![4.0, 5.0]
        );
        engine.shutdown();
        driver.join().unwrap();
    }

    #[test]
    fn driver_publishes_error_when_retries_exhaust() {
        use crate::faults::{FaultPlan, FaultPlanConfig, FaultyCommunicator};
        use crate::retry::RetryPolicy;
        use std::sync::Arc;

        let plan = Arc::new(FaultPlan::new(
            FaultPlanConfig {
                seed: 1,
                rank_loss_at: Some((0, 0)),
                ..FaultPlanConfig::default()
            },
            1,
        ));
        let engine = ProgressEngine::new();
        let driver = {
            let engine = engine.clone();
            thread::spawn(move || {
                let comm = FaultyCommunicator::new(LocalComm::new(), plan);
                engine.drive_with_policy(&comm, RetryPolicy::default_comm());
            })
        };
        let h = engine.submit_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        assert_eq!(engine.wait(h), Err(CollectiveError::RankFailed(0)));
        engine.shutdown();
        driver.join().unwrap();
    }

    #[test]
    fn multi_rank_engines_keep_collective_order() {
        let comms = ThreadComm::create(4);
        let results: Vec<Vec<f32>> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| {
                    s.spawn(move || {
                        let engine = ProgressEngine::new();
                        let driver = {
                            let engine = engine.clone();
                            s.spawn(move || engine.drive(comm))
                        };
                        // Several ops, identical order on every rank.
                        let hs: Vec<OpHandle> = (0..5)
                            .map(|i| {
                                engine.submit_allreduce(
                                    vec![(rank * 10 + i) as f32],
                                    ReduceOp::Sum,
                                    TrafficClass::Gradient,
                                )
                            })
                            .collect();
                        let out: Vec<f32> = hs
                            .into_iter()
                            .map(|h| engine.wait(h).unwrap().into_reduced().unwrap()[0])
                            .collect();
                        engine.shutdown();
                        driver.join().unwrap();
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // sum over ranks of (rank*10 + i) = 60 + 4i.
        for out in results {
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, (60 + 4 * i) as f32);
            }
        }
    }
}
