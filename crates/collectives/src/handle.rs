//! Deferred-completion operation handles.
//!
//! Horovod registers communication ops during the backward pass and
//! completes them at `optimizer.synchronize()` (§V-A: "handles are
//! registered to communication operations … and wait to do the
//! communication in batches"). [`OpQueue`] reproduces that pattern: ops are
//! enqueued with [`OpQueue::enqueue_allreduce`], nothing is communicated
//! until [`OpQueue::synchronize`], at which point all queued ops execute
//! (in enqueue order) and results are handed back by handle.
//!
//! Inside one process there is no true async progress engine; deferral is
//! the semantically relevant part (it changes *when* ranks rendezvous), and
//! that is preserved exactly.

use crate::communicator::{Communicator, ReduceOp};
use crate::traffic::TrafficClass;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Identifies a queued operation; redeem at [`OpQueue::take`] after
/// [`OpQueue::synchronize`] (or poll with [`OpQueue::test`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpHandle(pub(crate) u64);

/// Failure of a collective operation or misuse of op handles/results,
/// surfaced as a value instead of a panic so schedulers can recover (or
/// at least report) cleanly.
///
/// The first three variants are handle-protocol errors; the last four
/// are *transport* outcomes raised by fault-aware communicators (see
/// [`crate::faults`]) and the hardened rendezvous. [`CollectiveError::is_retryable`]
/// distinguishes transient faults (worth retrying with backoff) from
/// permanent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveError {
    /// An [`OpResult`] was unwrapped as the wrong kind.
    WrongKind {
        /// The kind the caller asked for (`"allreduce"`/`"allgather"`).
        expected: &'static str,
        /// The kind the result actually holds.
        got: &'static str,
    },
    /// The handle was never issued here, or its result was already taken.
    UnknownHandle(OpHandle),
    /// The handle's op is still queued; it has not executed yet.
    NotCompleted(OpHandle),
    /// The collective did not complete within its deadline (a straggler
    /// or a transiently failed transport). Retryable.
    Timeout {
        /// How long the caller waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// A rank has permanently left the group; no collective can complete
    /// until the group is rebuilt. Not retryable.
    RankFailed(
        /// The failed rank.
        usize,
    ),
    /// The payload failed an integrity check (bit-flip corruption was
    /// detected in flight). Retryable: the source data is still intact.
    Corrupted,
    /// Ranks disagreed on the collective call (kind, reduce op, length,
    /// or root). Not retryable: retrying replays the same mismatch.
    Mismatch(
        /// What disagreed.
        &'static str,
    ),
}

impl CollectiveError {
    /// `true` for transient faults where retrying the same collective
    /// (with backoff) can succeed; `false` for permanent failures and
    /// protocol misuse.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            CollectiveError::Timeout { .. } | CollectiveError::Corrupted
        )
    }
}

impl fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveError::WrongKind { expected, got } => {
                write!(f, "expected {expected} result, got {got}")
            }
            CollectiveError::UnknownHandle(h) => {
                write!(f, "handle {h:?} unknown or already taken")
            }
            CollectiveError::NotCompleted(h) => {
                write!(f, "handle {h:?} not completed; synchronize or poll first")
            }
            CollectiveError::Timeout { waited_ms } => {
                write!(f, "collective timed out after {waited_ms} ms")
            }
            CollectiveError::RankFailed(rank) => {
                write!(f, "rank {rank} failed permanently")
            }
            CollectiveError::Corrupted => {
                write!(f, "collective payload failed integrity check")
            }
            CollectiveError::Mismatch(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

pub(crate) enum QueuedOp {
    AllReduce {
        data: Vec<f32>,
        op: ReduceOp,
        class: TrafficClass,
    },
    AllGather {
        data: Vec<f32>,
        class: TrafficClass,
    },
}

impl QueuedOp {
    /// Run the collective against `comm` without consuming the staged
    /// payload, so a failed attempt can be retried from the same data
    /// (the allreduce input is cloned per attempt).
    pub(crate) fn try_execute(&self, comm: &dyn Communicator) -> Result<OpResult, CollectiveError> {
        match self {
            QueuedOp::AllReduce { data, op, class } => {
                let mut buf = data.clone();
                comm.try_allreduce_tagged(&mut buf, *op, *class)?;
                Ok(OpResult::Reduced(buf))
            }
            QueuedOp::AllGather { data, class } => {
                Ok(OpResult::Gathered(comm.try_allgather_tagged(data, *class)?))
            }
        }
    }
}

/// Result of a completed operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// Reduced buffer from an allreduce.
    Reduced(Vec<f32>),
    /// Per-rank payloads from an allgather.
    Gathered(Vec<Vec<f32>>),
}

impl OpResult {
    fn kind(&self) -> &'static str {
        match self {
            OpResult::Reduced(_) => "allreduce",
            OpResult::Gathered(_) => "allgather",
        }
    }

    /// Unwrap an allreduce result.
    pub fn into_reduced(self) -> Result<Vec<f32>, CollectiveError> {
        match self {
            OpResult::Reduced(v) => Ok(v),
            other => Err(CollectiveError::WrongKind {
                expected: "allreduce",
                got: other.kind(),
            }),
        }
    }

    /// Unwrap an allgather result.
    pub fn into_gathered(self) -> Result<Vec<Vec<f32>>, CollectiveError> {
        match self {
            OpResult::Gathered(v) => Ok(v),
            other => Err(CollectiveError::WrongKind {
                expected: "allgather",
                got: other.kind(),
            }),
        }
    }
}

/// Queue of deferred collective operations for one rank.
#[derive(Default)]
pub struct OpQueue {
    next: u64,
    queued: VecDeque<(OpHandle, QueuedOp)>,
    completed: HashMap<OpHandle, Result<OpResult, CollectiveError>>,
}

impl OpQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an allreduce; returns the handle to redeem later.
    pub fn enqueue_allreduce(
        &mut self,
        data: Vec<f32>,
        op: ReduceOp,
        class: TrafficClass,
    ) -> OpHandle {
        let h = OpHandle(self.next);
        self.next += 1;
        self.queued
            .push_back((h, QueuedOp::AllReduce { data, op, class }));
        h
    }

    /// Queue an allgather; returns the handle to redeem later.
    pub fn enqueue_allgather(&mut self, data: Vec<f32>, class: TrafficClass) -> OpHandle {
        let h = OpHandle(self.next);
        self.next += 1;
        self.queued
            .push_back((h, QueuedOp::AllGather { data, class }));
        h
    }

    /// Number of queued, not-yet-executed ops.
    pub fn pending(&self) -> usize {
        self.queued.len()
    }

    /// Poll a handle: `true` once its op has executed and the result is
    /// ready to [`OpQueue::take`] (MPI `Test` semantics, minus the wait).
    pub fn test(&self, h: OpHandle) -> bool {
        self.completed.contains_key(&h)
    }

    /// Execute the oldest queued op against `comm`, if any; returns its
    /// handle. The incremental counterpart of [`OpQueue::synchronize`],
    /// for callers (the exec comm worker) that interleave progress with
    /// other work instead of draining in one blocking batch.
    ///
    /// A failed collective (fault-aware communicators only) is recorded
    /// against the handle and surfaced by [`OpQueue::take`]; the queue
    /// itself keeps making progress.
    pub fn progress_one(&mut self, comm: &dyn Communicator) -> Option<OpHandle> {
        let (h, op) = self.queued.pop_front()?;
        let result = op.try_execute(comm);
        self.completed.insert(h, result);
        Some(h)
    }

    /// Execute every queued op, in order, against `comm`.
    ///
    /// All ranks must have queued the same op sequence (the Horovod
    /// contract); the underlying communicator enforces this.
    pub fn synchronize(&mut self, comm: &dyn Communicator) {
        while self.progress_one(comm).is_some() {}
    }

    /// Redeem a completed handle.
    ///
    /// Returns [`CollectiveError::NotCompleted`] while the op is still
    /// queued, [`CollectiveError::UnknownHandle`] for handles never
    /// issued here or already redeemed, and the op's own failure (e.g.
    /// [`CollectiveError::Timeout`]) when a fault-aware communicator
    /// failed the collective.
    pub fn take(&mut self, h: OpHandle) -> Result<OpResult, CollectiveError> {
        if let Some(r) = self.completed.remove(&h) {
            return r;
        }
        if self.queued.iter().any(|(q, _)| *q == h) {
            Err(CollectiveError::NotCompleted(h))
        } else {
            Err(CollectiveError::UnknownHandle(h))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalComm;
    use crate::thread::ThreadComm;
    use std::thread;

    #[test]
    fn deferred_until_synchronize() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h = q.enqueue_allreduce(vec![1.0, 2.0], ReduceOp::Sum, TrafficClass::Gradient);
        assert_eq!(q.pending(), 1);
        assert_eq!(comm.traffic().ops, 0, "no communication before synchronize");
        assert!(!q.test(h));
        q.synchronize(&comm);
        assert_eq!(comm.traffic().ops, 1);
        assert!(q.test(h));
        assert_eq!(q.take(h).unwrap().into_reduced().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn take_before_synchronize_is_not_completed() {
        let mut q = OpQueue::new();
        let h = q.enqueue_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        assert_eq!(q.take(h), Err(CollectiveError::NotCompleted(h)));
        // Still queued: the failed take must not have consumed the op.
        assert_eq!(q.pending(), 1);
    }

    #[test]
    fn take_unknown_or_twice_is_an_error() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h = q.enqueue_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        q.synchronize(&comm);
        assert!(q.take(h).is_ok());
        assert_eq!(q.take(h), Err(CollectiveError::UnknownHandle(h)));
        let bogus = OpHandle(999);
        assert_eq!(q.take(bogus), Err(CollectiveError::UnknownHandle(bogus)));
    }

    #[test]
    fn progress_one_completes_in_fifo_order() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h1 = q.enqueue_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        let h2 = q.enqueue_allgather(vec![2.0], TrafficClass::Eigen);
        assert_eq!(q.progress_one(&comm), Some(h1));
        assert!(q.test(h1) && !q.test(h2));
        assert_eq!(q.progress_one(&comm), Some(h2));
        assert_eq!(q.progress_one(&comm), None);
        assert!(q.test(h2));
    }

    #[test]
    fn multi_rank_batched_ops() {
        let comms = ThreadComm::create(2);
        let f = |rank: usize, comm: &ThreadComm| {
            let mut q = OpQueue::new();
            let h1 = q.enqueue_allreduce(vec![rank as f32], ReduceOp::Sum, TrafficClass::Gradient);
            let h2 = q.enqueue_allgather(vec![rank as f32 * 2.0], TrafficClass::Eigen);
            q.synchronize(comm);
            (
                q.take(h1).unwrap().into_reduced().unwrap(),
                q.take(h2).unwrap().into_gathered().unwrap(),
            )
        };
        let results: Vec<_> = thread::scope(|s| {
            let hs: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (reduced, gathered) in results {
            assert_eq!(reduced, vec![1.0]);
            assert_eq!(gathered, vec![vec![0.0], vec![2.0]]);
        }
    }

    #[test]
    fn result_kind_mismatch_is_typed_error() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h = q.enqueue_allgather(vec![1.0], TrafficClass::Eigen);
        q.synchronize(&comm);
        let r = q.take(h).unwrap();
        assert_eq!(
            r.into_reduced(),
            Err(CollectiveError::WrongKind {
                expected: "allreduce",
                got: "allgather",
            })
        );
    }
}
