//! Deferred-completion operation handles.
//!
//! Horovod registers communication ops during the backward pass and
//! completes them at `optimizer.synchronize()` (§V-A: "handles are
//! registered to communication operations … and wait to do the
//! communication in batches"). [`OpQueue`] reproduces that pattern: ops are
//! enqueued with [`OpQueue::enqueue_allreduce`], nothing is communicated
//! until [`OpQueue::synchronize`], at which point all queued ops execute
//! (in enqueue order) and results are handed back by handle.
//!
//! Inside one process there is no true async progress engine; deferral is
//! the semantically relevant part (it changes *when* ranks rendezvous), and
//! that is preserved exactly.

use crate::communicator::{Communicator, ReduceOp};
use crate::traffic::TrafficClass;
use std::collections::HashMap;

/// Identifies a queued operation; redeem at [`OpQueue::take`] after
/// [`OpQueue::synchronize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpHandle(u64);

enum QueuedOp {
    AllReduce {
        data: Vec<f32>,
        op: ReduceOp,
        class: TrafficClass,
    },
    AllGather {
        data: Vec<f32>,
        class: TrafficClass,
    },
}

/// Result of a completed operation.
#[derive(Debug, Clone, PartialEq)]
pub enum OpResult {
    /// Reduced buffer from an allreduce.
    Reduced(Vec<f32>),
    /// Per-rank payloads from an allgather.
    Gathered(Vec<Vec<f32>>),
}

impl OpResult {
    /// Unwrap an allreduce result.
    pub fn into_reduced(self) -> Vec<f32> {
        match self {
            OpResult::Reduced(v) => v,
            OpResult::Gathered(_) => panic!("expected allreduce result, got allgather"),
        }
    }

    /// Unwrap an allgather result.
    pub fn into_gathered(self) -> Vec<Vec<f32>> {
        match self {
            OpResult::Gathered(v) => v,
            OpResult::Reduced(_) => panic!("expected allgather result, got allreduce"),
        }
    }
}

/// Queue of deferred collective operations for one rank.
#[derive(Default)]
pub struct OpQueue {
    next: u64,
    queued: Vec<(OpHandle, QueuedOp)>,
    completed: HashMap<OpHandle, OpResult>,
}

impl OpQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an allreduce; returns the handle to redeem later.
    pub fn enqueue_allreduce(
        &mut self,
        data: Vec<f32>,
        op: ReduceOp,
        class: TrafficClass,
    ) -> OpHandle {
        let h = OpHandle(self.next);
        self.next += 1;
        self.queued
            .push((h, QueuedOp::AllReduce { data, op, class }));
        h
    }

    /// Queue an allgather; returns the handle to redeem later.
    pub fn enqueue_allgather(&mut self, data: Vec<f32>, class: TrafficClass) -> OpHandle {
        let h = OpHandle(self.next);
        self.next += 1;
        self.queued.push((h, QueuedOp::AllGather { data, class }));
        h
    }

    /// Number of queued, not-yet-executed ops.
    pub fn pending(&self) -> usize {
        self.queued.len()
    }

    /// Execute every queued op, in order, against `comm`.
    ///
    /// All ranks must have queued the same op sequence (the Horovod
    /// contract); the underlying communicator enforces this.
    pub fn synchronize(&mut self, comm: &dyn Communicator) {
        for (h, op) in self.queued.drain(..) {
            let result = match op {
                QueuedOp::AllReduce {
                    mut data,
                    op,
                    class,
                } => {
                    comm.allreduce_tagged(&mut data, op, class);
                    OpResult::Reduced(data)
                }
                QueuedOp::AllGather { data, class } => {
                    OpResult::Gathered(comm.allgather_tagged(&data, class))
                }
            };
            self.completed.insert(h, result);
        }
    }

    /// Redeem a completed handle.
    ///
    /// # Panics
    /// Panics if the handle was never queued or `synchronize` has not run.
    pub fn take(&mut self, h: OpHandle) -> OpResult {
        self.completed
            .remove(&h)
            .expect("handle not completed; call synchronize() first")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalComm;
    use crate::thread::ThreadComm;
    use std::thread;

    #[test]
    fn deferred_until_synchronize() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h = q.enqueue_allreduce(vec![1.0, 2.0], ReduceOp::Sum, TrafficClass::Gradient);
        assert_eq!(q.pending(), 1);
        assert_eq!(comm.traffic().ops, 0, "no communication before synchronize");
        q.synchronize(&comm);
        assert_eq!(comm.traffic().ops, 1);
        assert_eq!(q.take(h).into_reduced(), vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "handle not completed")]
    fn take_before_synchronize_panics() {
        let mut q = OpQueue::new();
        let h = q.enqueue_allreduce(vec![1.0], ReduceOp::Sum, TrafficClass::Gradient);
        let _ = q.take(h);
    }

    #[test]
    fn multi_rank_batched_ops() {
        let comms = ThreadComm::create(2);
        let f = |rank: usize, comm: &ThreadComm| {
            let mut q = OpQueue::new();
            let h1 = q.enqueue_allreduce(vec![rank as f32], ReduceOp::Sum, TrafficClass::Gradient);
            let h2 = q.enqueue_allgather(vec![rank as f32 * 2.0], TrafficClass::Eigen);
            q.synchronize(comm);
            (q.take(h1).into_reduced(), q.take(h2).into_gathered())
        };
        let results: Vec<_> = thread::scope(|s| {
            let hs: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (reduced, gathered) in results {
            assert_eq!(reduced, vec![1.0]);
            assert_eq!(gathered, vec![vec![0.0], vec![2.0]]);
        }
    }

    #[test]
    fn result_kind_mismatch_panics() {
        let comm = LocalComm::new();
        let mut q = OpQueue::new();
        let h = q.enqueue_allgather(vec![1.0], TrafficClass::Eigen);
        q.synchronize(&comm);
        let r = q.take(h);
        let panicked = std::panic::catch_unwind(move || r.into_reduced());
        assert!(panicked.is_err());
    }
}
