//! Unified communicator-backend selection.
//!
//! One enum, one env knob: `KFAC_COMM_BACKEND=thread|proc` decides whether
//! rank groups are in-process threads ([`crate::ThreadComm`]) or separate
//! processes over TCP ([`crate::proc::ProcComm`]). Everything that used to
//! construct a backend ad hoc (`xp`, the trainer, tests) goes through
//! here, so a misspelled override fails with one clear message instead of
//! silently training on the wrong fabric.

use std::fmt;

/// Which communicator implementation carries collective traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommBackend {
    /// N ranks as threads in one process (`ThreadComm`). The default.
    #[default]
    Thread,
    /// N ranks as processes over localhost TCP (`proc::ProcComm`).
    Proc,
}

impl CommBackend {
    /// Stable name, also the accepted env spelling.
    pub fn name(self) -> &'static str {
        match self {
            CommBackend::Thread => "thread",
            CommBackend::Proc => "proc",
        }
    }

    /// Parse a backend name (case-insensitive).
    pub fn parse(s: &str) -> Result<CommBackend, String> {
        match s.trim().to_ascii_lowercase().as_str() {
            "thread" => Ok(CommBackend::Thread),
            "proc" => Ok(CommBackend::Proc),
            other => Err(format!(
                "unknown comm backend {other:?}: expected \"thread\" or \"proc\" \
                 (set via KFAC_COMM_BACKEND or --backend)"
            )),
        }
    }

    /// Resolve from `KFAC_COMM_BACKEND`, defaulting to
    /// [`CommBackend::Thread`] when unset. `Err` carries a clear
    /// misconfiguration message for the caller to surface.
    pub fn from_env() -> Result<CommBackend, String> {
        match std::env::var("KFAC_COMM_BACKEND") {
            Ok(s) => CommBackend::parse(&s).map_err(|e| format!("KFAC_COMM_BACKEND: {e}")),
            Err(_) => Ok(CommBackend::Thread),
        }
    }
}

impl fmt::Display for CommBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_both_backends_case_insensitively() {
        assert_eq!(CommBackend::parse("thread"), Ok(CommBackend::Thread));
        assert_eq!(CommBackend::parse("Proc"), Ok(CommBackend::Proc));
        assert_eq!(CommBackend::parse(" PROC "), Ok(CommBackend::Proc));
    }

    #[test]
    fn rejects_unknown_with_actionable_message() {
        let err = CommBackend::parse("mpi").unwrap_err();
        assert!(err.contains("mpi"), "{err}");
        assert!(err.contains("thread"), "{err}");
        assert!(err.contains("proc"), "{err}");
    }

    #[test]
    fn default_is_thread() {
        assert_eq!(CommBackend::default(), CommBackend::Thread);
    }
}
