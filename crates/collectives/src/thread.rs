//! Thread-rank communicator: N workers in one process.
//!
//! This is the stand-in for Horovod + NCCL. A group is created with
//! [`ThreadComm::create`], which returns one handle per rank; each rank
//! thread owns its handle and calls collectives, which block until every
//! rank has made the matching call — the same synchronous-SGD rendezvous
//! the paper's Figure 1 depicts.
//!
//! The rendezvous is a generation-counted phase machine guarded by a
//! `parking_lot` mutex + condvar (no spinning, per the Rust Atomics & Locks
//! guidance on blocking synchronization):
//!
//! ```text
//! Idle ──first arrival──▶ Accumulating ──last arrival──▶ Ready
//!  ▲                                                       │
//!  └─────────────── last departure (reset) ◀───────────────┘
//! ```
//!
//! All ranks must issue the same sequence of collective calls (the MPI /
//! Horovod ordering contract). A mismatch is detected at the rendezvous
//! and surfaced as [`CollectiveError::Mismatch`] to *every* participant
//! of the offending generation (the infallible `Communicator` methods
//! turn that into a panic) — a group failure rather than the silent
//! deadlock the real stack would produce, so protocol bugs in the K-FAC
//! step fail fast in tests.

use crate::algo::AlgoPolicy;
use crate::communicator::{combine_into, finalize, Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::membership::{
    agree_on_survivors, Elastic, GroupView, Membership, ShrunkComm, AGREEMENT_DEADLINE,
};
use crate::traffic::{Traffic, TrafficClass, TrafficCounter};
use crate::transport::{tag_epoch, Transport, CTRL_BIT};
use kfac_telemetry::Span;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Point-to-point mailboxes keyed by `(from, to, tag)`.
type MeshMailboxes = HashMap<(usize, usize, u64), VecDeque<Vec<f32>>>;

/// How long a mailbox receive waits before declaring the sender lost.
/// Generous: in-process peers only miss a send when their thread died.
const MESH_RECV_TIMEOUT: Duration = Duration::from_secs(20);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No operation in flight.
    Idle,
    /// Ranks are contributing to the current operation.
    Accumulating,
    /// The result is complete; ranks are copying it out.
    Ready,
}

/// What kind of collective the current generation is running; used to
/// detect mismatched call sequences early instead of deadlocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpKind {
    AllReduce,
    AllGather,
    Broadcast,
    Barrier,
}

struct Slot {
    phase: Phase,
    kind: Option<OpKind>,
    /// Which ranks have contributed to the current generation. Per-rank
    /// (not a counter) so a rank that participates and *then* dies is
    /// never double-counted as both "arrived" and "dead" — the
    /// completion condition is "every rank arrived or is dead".
    arrived: Vec<bool>,
    /// Which ranks have copied the result out (or drain-joined a failed
    /// generation). The slot resets when every rank departed or is dead;
    /// a counter here would let a participant's later death release the
    /// slot early and strand a survivor still waiting for `Ready`.
    departed: Vec<bool>,
    /// Reduction accumulator (allreduce) or broadcast payload.
    acc: Vec<f32>,
    /// Per-rank payloads (allgather).
    payloads: Vec<Vec<f32>>,
    op: Option<ReduceOp>,
    /// First protocol violation observed this generation. Once set, the
    /// generation still runs to completion (every rank arrives and
    /// departs) but every participant gets this error instead of a
    /// result — a group failure, not a deadlock.
    error: Option<CollectiveError>,
}

struct Shared {
    size: usize,
    slot: Mutex<Slot>,
    cv: Condvar,
    traffic: Arc<TrafficCounter>,
    /// Point-to-point mailboxes backing the [`Transport`] impl so the
    /// algorithm layer (`crate::algo`) can run its ring/halving-doubling
    /// collectives over thread ranks.
    mesh: Mutex<MeshMailboxes>,
    mesh_cv: Condvar,
    /// Per-rank failure flags: the injectable failure-detector path
    /// ([`ThreadComm::mark_dead`]) that keeps chaos/elastic tests
    /// deterministic on the thread fabric. A dead rank fails every
    /// in-flight and subsequent rendezvous/mesh receive promptly with
    /// [`CollectiveError::RankFailed`].
    dead: Vec<AtomicBool>,
    /// Ranks acknowledged as removed from the group by a membership
    /// shrink ([`Membership::fence`]); excluded from the any-dead
    /// failure scan so the survivor group keeps communicating.
    fenced: Vec<AtomicBool>,
}

impl Shared {
    fn is_dead(&self, r: usize) -> bool {
        match self.dead.get(r) {
            Some(d) => d.load(Ordering::Relaxed),
            None => true,
        }
    }

    /// Every rank is either flagged in `mask` or known dead — the
    /// rendezvous completion/reset condition.
    fn all_accounted(&self, mask: &[bool]) -> bool {
        mask.iter().enumerate().all(|(r, &m)| m || self.is_dead(r))
    }

    fn first_unfenced_dead(&self) -> Option<usize> {
        self.dead
            .iter()
            .zip(&self.fenced)
            .position(|(d, f)| d.load(Ordering::Relaxed) && !f.load(Ordering::Relaxed))
    }
}

/// One rank's handle onto a thread-rank communicator group.
pub struct ThreadComm {
    rank: usize,
    shared: Arc<Shared>,
    /// Per-rank traffic counter (each rank sees its own volumes, as a
    /// Horovod rank would).
    traffic: Arc<TrafficCounter>,
}

impl ThreadComm {
    /// Create a group of `size` connected communicators, one per rank.
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn create(size: usize) -> Vec<ThreadComm> {
        assert!(size > 0, "communicator group must have at least one rank");
        let shared = Arc::new(Shared {
            size,
            slot: Mutex::new(Slot {
                phase: Phase::Idle,
                kind: None,
                arrived: vec![false; size],
                departed: vec![false; size],
                acc: Vec::new(),
                payloads: vec![Vec::new(); size],
                op: None,
                error: None,
            }),
            cv: Condvar::new(),
            traffic: TrafficCounter::new(),
            mesh: Mutex::new(HashMap::new()),
            mesh_cv: Condvar::new(),
            dead: (0..size).map(|_| AtomicBool::new(false)).collect(),
            fenced: (0..size).map(|_| AtomicBool::new(false)).collect(),
        });
        (0..size)
            .map(|rank| ThreadComm {
                rank,
                shared: Arc::clone(&shared),
                traffic: TrafficCounter::new(),
            })
            .collect()
    }

    /// Group-wide traffic (sum over ranks).
    pub fn group_traffic(&self) -> Traffic {
        self.shared.traffic.snapshot()
    }

    /// Declare `rank` permanently failed — the thread fabric's injectable
    /// failure detector (the proc fabric detects EOF/heartbeat loss; here
    /// the victim or a chaos test injects the observation
    /// deterministically).
    ///
    /// Any in-flight rendezvous completes immediately with
    /// [`CollectiveError::RankFailed`] on every participant, blocked mesh
    /// receivers wake and fail promptly, and later collectives on the
    /// un-shrunk group keep failing with the culprit until the survivors
    /// [`Elastic::shrink`] to a new epoch.
    pub fn mark_dead(&self, rank: usize) {
        let Some(flag) = self.shared.dead.get(rank) else {
            return;
        };
        flag.store(true, Ordering::Relaxed);
        {
            let mut slot = self.shared.slot.lock();
            match slot.phase {
                Phase::Accumulating => {
                    // Force-complete the wedged generation: everyone
                    // waiting gets the failure instead of blocking on an
                    // arrival that will never come.
                    if slot.error.is_none() {
                        slot.error = Some(CollectiveError::RankFailed(rank));
                    }
                    slot.phase = Phase::Ready;
                    for d in &mut slot.departed {
                        *d = false;
                    }
                }
                Phase::Ready => {
                    // The drain may have been blocked only on the rank
                    // that just died — release the slot if so.
                    if self.shared.all_accounted(&slot.departed) {
                        slot.phase = Phase::Idle;
                        slot.kind = None;
                        slot.error = None;
                    }
                }
                Phase::Idle => {}
            }
            self.shared.cv.notify_all();
        }
        {
            let _mesh = self.shared.mesh.lock();
            self.shared.mesh_cv.notify_all();
        }
    }

    /// A second handle onto this rank's endpoint (same rank, same group
    /// state) so the membership layer can own the base transport behind
    /// an `Arc` while the caller keeps using the original.
    fn clone_handle(&self) -> ThreadComm {
        ThreadComm {
            rank: self.rank,
            shared: Arc::clone(&self.shared),
            traffic: Arc::clone(&self.traffic),
        }
    }

    /// Run the generic rendezvous. `contribute` runs under the lock when
    /// this rank arrives; `extract` runs under the lock once the result is
    /// ready; the last departer resets the slot.
    ///
    /// Protocol violations (mismatched kind, op, or lengths) do not panic
    /// under the lock: the offending generation records the error, every
    /// rank still arrives and departs (so nobody deadlocks), and every
    /// participant receives the same [`CollectiveError`].
    fn rendezvous<R>(
        &self,
        kind: OpKind,
        contribute: impl FnOnce(&mut Slot) -> Result<(), CollectiveError>,
        complete: impl FnOnce(&mut Slot) -> Result<(), CollectiveError>,
        extract: impl FnOnce(&Slot) -> R,
    ) -> Result<R, CollectiveError> {
        let shared = &*self.shared;
        let mut slot = shared.slot.lock();

        // A rank already declared dead observes its own death rather
        // than participating in (and wedging) the survivors' rendezvous.
        if shared.is_dead(self.rank) {
            return Err(CollectiveError::RankFailed(self.rank));
        }

        // Wait for any previous operation to fully drain. If the draining
        // generation failed with a dead rank, join its drain instead:
        // the group is broken until the survivors shrink, and waiting for
        // a full complement of departures would deadlock (participants of
        // the failed generation have already moved on to reconfiguring).
        while slot.phase == Phase::Ready {
            if let Some(e @ CollectiveError::RankFailed(_)) = slot.error {
                slot.departed[self.rank] = true;
                if shared.all_accounted(&slot.departed) {
                    slot.phase = Phase::Idle;
                    slot.kind = None;
                    slot.error = None;
                    shared.cv.notify_all();
                }
                return Err(e);
            }
            shared.cv.wait(&mut slot);
        }

        if slot.phase == Phase::Idle {
            slot.phase = Phase::Accumulating;
            slot.kind = Some(kind);
            for a in &mut slot.arrived {
                *a = false;
            }
            slot.acc.clear();
            for p in &mut slot.payloads {
                p.clear();
            }
            slot.op = None;
            slot.error = None;
        }
        if slot.kind != Some(kind) {
            // Still participate in the generation so every rank observes
            // the failure instead of hanging on a rendezvous that can
            // never complete.
            slot.error = Some(CollectiveError::Mismatch(
                "collective call sequence mismatch across ranks",
            ));
        } else if slot.error.is_none() {
            if let Err(e) = contribute(&mut slot) {
                slot.error = Some(e);
            }
        }
        slot.arrived[self.rank] = true;

        // Dead ranks can never arrive or depart: they count as virtual
        // participants so the survivors' generation still completes — with
        // RankFailed instead of a result. The per-rank masks make this
        // exact: a rank that contributed and died later is one
        // participant, not two. An unfenced dead member also dooms the
        // generation outright: complete it with the culprit immediately
        // rather than waiting for live peers, who may have stopped
        // issuing collectives and moved on to membership agreement.
        let doomed = shared.first_unfenced_dead();
        if doomed.is_some() || shared.all_accounted(&slot.arrived) {
            if slot.error.is_none() {
                if let Some(d) = doomed {
                    slot.error = Some(CollectiveError::RankFailed(d));
                } else if let Err(e) = complete(&mut slot) {
                    slot.error = Some(e);
                }
            }
            slot.phase = Phase::Ready;
            for d in &mut slot.departed {
                *d = false;
            }
            shared.cv.notify_all();
        } else {
            while slot.phase != Phase::Ready {
                shared.cv.wait(&mut slot);
            }
        }

        let result = match slot.error {
            Some(e) => Err(e),
            None => Ok(extract(&slot)),
        };
        slot.departed[self.rank] = true;
        if shared.all_accounted(&slot.departed) {
            slot.phase = Phase::Idle;
            slot.kind = None;
            slot.error = None;
            shared.cv.notify_all();
        }
        result
    }

    fn record(&self, class: TrafficClass, bytes: u64) {
        self.traffic.record(class, bytes);
        self.shared.traffic.record(class, bytes);
        // Mirror into the ambient telemetry registry (when installed) so
        // the live metrics plane can serve traffic without reaching into
        // communicator internals. Only the per-rank counter is mirrored:
        // every rank mirrors its own ops, so the registry total equals
        // the group total without double counting the shared counter.
        if let Some((registry, _)) = kfac_telemetry::current() {
            registry.counter("comm/ops").inc();
            registry.counter(class.byte_counter_name()).add(bytes);
        }
    }
}

impl Transport for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError> {
        debug_assert!(to < self.shared.size);
        let mut mesh = self.shared.mesh.lock();
        mesh.entry((self.rank, to, tag))
            .or_default()
            .push_back(payload.to_vec());
        self.shared.mesh_cv.notify_all();
        Ok(())
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError> {
        let key = (from, self.rank, tag);
        let deadline = Instant::now() + MESH_RECV_TIMEOUT;
        let mut mesh = self.shared.mesh.lock();
        loop {
            if let Some(q) = mesh.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        mesh.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            // A collective cannot complete once *any* unfenced group
            // member is gone: fail promptly with the culprit instead of
            // burning the deadline (fenced ranks belong to previous
            // epochs and don't count).
            if let Some(culprit) = self.shared.first_unfenced_dead() {
                return Err(CollectiveError::RankFailed(culprit));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CollectiveError::Timeout {
                    waited_ms: MESH_RECV_TIMEOUT.as_millis() as u64,
                });
            }
            self.shared.mesh_cv.wait_for(&mut mesh, deadline - now);
        }
    }
}

impl Membership for ThreadComm {
    fn observed_dead(&self) -> Vec<usize> {
        (0..self.shared.size)
            .filter(|&r| {
                self.shared.dead[r].load(Ordering::Relaxed)
                    && !self.shared.fenced[r].load(Ordering::Relaxed)
            })
            .collect()
    }

    fn mark_dead(&self, original: usize) {
        ThreadComm::mark_dead(self, original);
    }

    fn fence(&self, dead: &[usize], new_epoch: u64) {
        for &d in dead {
            if let Some(flag) = self.shared.dead.get(d) {
                flag.store(true, Ordering::Relaxed);
                self.shared.fenced[d].store(true, Ordering::Relaxed);
            }
        }
        let fenced: Vec<bool> = self
            .shared
            .fenced
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .collect();
        let mut mesh = self.shared.mesh.lock();
        // Purge this rank's inbound mailboxes of anything from a fenced
        // peer or stamped with a pre-shrink epoch; other ranks purge
        // their own when they fence.
        let me = self.rank;
        mesh.retain(|&(from, to, tag), _| {
            to != me || (!fenced[from] && (tag & CTRL_BIT != 0 || tag_epoch(tag) >= new_epoch))
        });
        self.shared.mesh_cv.notify_all();
    }

    fn recv_deadline(
        &self,
        from: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<f32>, CollectiveError> {
        let key = (from, self.rank, tag);
        let mut mesh = self.shared.mesh.lock();
        loop {
            if let Some(q) = mesh.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        mesh.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            if self.shared.is_dead(from) {
                return Err(CollectiveError::RankFailed(from));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CollectiveError::Timeout { waited_ms: 0 });
            }
            self.shared.mesh_cv.wait_for(&mut mesh, deadline - now);
        }
    }
}

impl Elastic for ThreadComm {
    type Shrunk = ShrunkComm<ThreadComm>;

    fn shrink(&self, dead_hint: &[usize]) -> Result<ShrunkComm<ThreadComm>, CollectiveError> {
        let base = Arc::new(self.clone_handle());
        let view = GroupView::boot(self.rank, self.shared.size);
        let next = agree_on_survivors(base.as_ref(), &view, dead_hint, AGREEMENT_DEADLINE)?;
        let policy = AlgoPolicy::try_from_env().unwrap_or_default();
        Ok(ShrunkComm::new(base, next, policy))
    }

    fn epoch(&self) -> u64 {
        0
    }
}

impl Communicator for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.shared.size
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.try_allreduce_tagged(buf, op, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.try_allgather_tagged(payload, class)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.try_broadcast_tagged(buf, root, class)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let size = self.shared.size;
        let _span = Span::enter("comm/allreduce")
            .with("class", class.name())
            .with("bytes", (buf.len() * 4) as u64);
        self.record(class, (buf.len() * 4) as u64);
        if size == 1 {
            return Ok(());
        }
        // Contributions are staged per rank and reduced in *rank order*
        // at completion: floating-point addition is non-associative, so
        // arrival-order accumulation would make multi-rank training
        // nondeterministic run-to-run. Rank-ordered reduction keeps the
        // whole stack bit-reproducible given a seed.
        let rank = self.rank;
        let out = self.rendezvous(
            OpKind::AllReduce,
            |slot| {
                if let Some(prev) = slot.op {
                    if prev != op {
                        return Err(CollectiveError::Mismatch(
                            "allreduce op mismatch across ranks",
                        ));
                    }
                } else {
                    slot.op = Some(op);
                }
                if !slot
                    .payloads
                    .iter()
                    .all(|p| p.is_empty() || p.len() == buf.len())
                {
                    return Err(CollectiveError::Mismatch(
                        "allreduce length mismatch across ranks",
                    ));
                }
                slot.payloads[rank] = buf.to_vec();
                Ok(())
            },
            |slot| {
                let Some(op) = slot.op else {
                    return Err(CollectiveError::Mismatch(
                        "allreduce op never recorded for this generation",
                    ));
                };
                slot.acc = slot.payloads[0].clone();
                for r in 1..size {
                    let contribution = std::mem::take(&mut slot.payloads[r]);
                    combine_into(&mut slot.acc, &contribution, op);
                }
                slot.payloads[0].clear();
                finalize(&mut slot.acc, op, size);
                Ok(())
            },
            |slot| slot.acc.clone(),
        )?;
        buf.copy_from_slice(&out);
        Ok(())
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        let _span = Span::enter("comm/allgather")
            .with("class", class.name())
            .with("bytes", (payload.len() * 4) as u64);
        self.record(class, (payload.len() * 4) as u64);
        if self.shared.size == 1 {
            return Ok(vec![payload.to_vec()]);
        }
        let rank = self.rank;
        self.rendezvous(
            OpKind::AllGather,
            |slot| {
                slot.payloads[rank] = payload.to_vec();
                Ok(())
            },
            |_slot| Ok(()),
            |slot| slot.payloads.clone(),
        )
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        let _span = Span::enter("comm/broadcast")
            .with("class", class.name())
            .with("bytes", (buf.len() * 4) as u64)
            .with("root", root);
        self.record(class, (buf.len() * 4) as u64);
        if self.shared.size == 1 {
            if root != 0 {
                return Err(CollectiveError::Mismatch("broadcast root out of range"));
            }
            return Ok(());
        }
        let rank = self.rank;
        let size = self.shared.size;
        let out = self.rendezvous(
            OpKind::Broadcast,
            |slot| {
                if root >= size {
                    return Err(CollectiveError::Mismatch("broadcast root out of range"));
                }
                if rank == root {
                    slot.acc = buf.to_vec();
                }
                Ok(())
            },
            |_slot| Ok(()),
            |slot| slot.acc.clone(),
        )?;
        if rank != root {
            if out.len() != buf.len() {
                return Err(CollectiveError::Mismatch("broadcast length mismatch"));
            }
            buf.copy_from_slice(&out);
        }
        Ok(())
    }

    fn barrier(&self) {
        if self.shared.size == 1 {
            return;
        }
        let _span = Span::enter("comm/barrier");
        self.rendezvous(OpKind::Barrier, |_| Ok(()), |_| Ok(()), |_| ())
            .unwrap_or_else(|e| panic!("{e}"));
    }

    fn traffic(&self) -> Traffic {
        self.traffic.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Run `f(rank, comm)` on every rank of a fresh group and collect the
    /// per-rank results.
    fn run_group<R: Send>(size: usize, f: impl Fn(usize, &ThreadComm) -> R + Sync) -> Vec<R> {
        let comms = ThreadComm::create(size);
        let f = &f;
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    #[test]
    fn allreduce_sum_all_sizes() {
        for size in [1, 2, 3, 4, 8] {
            let results = run_group(size, |rank, comm| {
                let mut buf = vec![rank as f32, 1.0];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                buf
            });
            let expect_sum: f32 = (0..size).map(|r| r as f32).sum();
            for r in &results {
                assert_eq!(r[0], expect_sum, "size {}", size);
                assert_eq!(r[1], size as f32);
            }
        }
    }

    #[test]
    fn allreduce_average() {
        let results = run_group(4, |rank, comm| {
            let mut buf = vec![(rank * 2) as f32];
            comm.allreduce(&mut buf, ReduceOp::Average);
            buf[0]
        });
        for r in results {
            assert_eq!(r, 3.0); // mean of 0,2,4,6
        }
    }

    #[test]
    fn allreduce_max() {
        let results = run_group(5, |rank, comm| {
            let mut buf = vec![-(rank as f32), rank as f32];
            comm.allreduce(&mut buf, ReduceOp::Max);
            buf
        });
        for r in results {
            assert_eq!(r, vec![0.0, 4.0]);
        }
    }

    #[test]
    fn back_to_back_allreduces_do_not_mix() {
        // Regression for generation handling: a fast rank must not leak
        // into the next operation's accumulator.
        let results = run_group(4, |rank, comm| {
            let mut total = Vec::new();
            for round in 0..50 {
                let mut buf = vec![(rank + round) as f32];
                comm.allreduce(&mut buf, ReduceOp::Sum);
                total.push(buf[0]);
            }
            total
        });
        for r in &results {
            for (round, &v) in r.iter().enumerate() {
                let expect: f32 = (0..4).map(|rk| (rk + round) as f32).sum();
                assert_eq!(v, expect);
            }
        }
    }

    #[test]
    fn allgather_variable_lengths() {
        let results = run_group(3, |rank, comm| {
            let payload: Vec<f32> = (0..=rank).map(|i| (rank * 10 + i) as f32).collect();
            comm.allgather(&payload)
        });
        for gathered in &results {
            assert_eq!(gathered.len(), 3);
            assert_eq!(gathered[0], vec![0.0]);
            assert_eq!(gathered[1], vec![10.0, 11.0]);
            assert_eq!(gathered[2], vec![20.0, 21.0, 22.0]);
        }
    }

    #[test]
    fn broadcast_from_each_root() {
        for root in 0..3 {
            let results = run_group(3, move |rank, comm| {
                let mut buf = if rank == root {
                    vec![42.0, 43.0]
                } else {
                    vec![0.0, 0.0]
                };
                comm.broadcast(&mut buf, root);
                buf
            });
            for r in results {
                assert_eq!(r, vec![42.0, 43.0]);
            }
        }
    }

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        run_group(6, |_rank, comm| {
            before.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // Every rank must have incremented before any rank passes.
            assert_eq!(before.load(Ordering::SeqCst), 6);
        });
    }

    #[test]
    fn mixed_op_sequences() {
        // Interleave all collective kinds repeatedly; any generation bug
        // deadlocks or corrupts data.
        let results = run_group(4, |rank, comm| {
            let mut acc = 0.0f32;
            for round in 0..20 {
                let mut g = vec![rank as f32 + round as f32; 8];
                comm.allreduce(&mut g, ReduceOp::Average);
                acc += g[0];
                let gathered = comm.allgather(&[rank as f32]);
                assert_eq!(gathered.len(), 4);
                let mut b = vec![if rank == round % 4 { 7.0 } else { 0.0 }];
                comm.broadcast(&mut b, round % 4);
                assert_eq!(b[0], 7.0);
                comm.barrier();
            }
            acc
        });
        let expect: f32 = (0..20).map(|round| 1.5 + round as f32).sum();
        for r in results {
            assert!((r - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn traffic_is_recorded_per_class() {
        let results = run_group(2, |_rank, comm| {
            let mut buf = vec![0.0f32; 100];
            comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient);
            comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Factor);
            let _ = comm.allgather_tagged(&buf, TrafficClass::Eigen);
            comm.traffic()
        });
        for t in results {
            assert_eq!(t.gradient_bytes, 400);
            assert_eq!(t.factor_bytes, 400);
            assert_eq!(t.eigen_bytes, 400);
            assert_eq!(t.ops, 3);
        }
    }

    #[test]
    fn mismatched_kinds_error_on_every_rank_instead_of_deadlocking() {
        let results = run_group(2, |rank, comm| {
            if rank == 0 {
                comm.try_allreduce_tagged(&mut [1.0], ReduceOp::Sum, TrafficClass::Other)
                    .map(|_| ())
            } else {
                comm.try_allgather_tagged(&[1.0], TrafficClass::Other)
                    .map(|_| ())
            }
        });
        for r in results {
            assert_eq!(
                r,
                Err(CollectiveError::Mismatch(
                    "collective call sequence mismatch across ranks"
                ))
            );
        }
    }

    #[test]
    fn mismatched_lengths_error_on_every_rank() {
        let results = run_group(3, |rank, comm| {
            let mut buf = vec![0.0; 2 + rank % 2]; // ranks disagree on length
            comm.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Other)
        });
        for r in results {
            assert_eq!(
                r,
                Err(CollectiveError::Mismatch(
                    "allreduce length mismatch across ranks"
                ))
            );
        }
    }

    #[test]
    fn group_recovers_after_a_failed_generation() {
        let results = run_group(2, |rank, comm| {
            let mut bad = vec![0.0; 1 + rank]; // length mismatch → group error
            let first = comm.try_allreduce_tagged(&mut bad, ReduceOp::Sum, TrafficClass::Other);
            assert!(first.is_err());
            // The next, well-formed collective must still work.
            let mut good = vec![rank as f32];
            comm.try_allreduce_tagged(&mut good, ReduceOp::Sum, TrafficClass::Other)
                .unwrap();
            good[0]
        });
        for r in results {
            assert_eq!(r, 1.0);
        }
    }

    #[test]
    fn size_one_short_circuits() {
        let comms = ThreadComm::create(1);
        let mut buf = vec![5.0];
        comms[0].allreduce(&mut buf, ReduceOp::Average);
        assert_eq!(buf, vec![5.0]);
        let g = comms[0].allgather(&buf);
        assert_eq!(g, vec![vec![5.0]]);
        comms[0].barrier();
    }

    #[test]
    fn collectives_fail_promptly_with_the_culprit_after_mark_dead() {
        let results = run_group(3, |rank, comm| {
            // One clean round so the death lands mid-stream.
            let mut buf = vec![rank as f32];
            comm.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                .unwrap();
            if rank == 2 {
                comm.mark_dead(2);
                return Vec::new();
            }
            // Both the in-flight and every subsequent collective on the
            // un-shrunk group must surface the culprit, not hang.
            let mut errs = Vec::new();
            for _ in 0..3 {
                let mut buf = vec![rank as f32];
                let e = comm
                    .try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                    .unwrap_err();
                errs.push(e);
            }
            errs
        });
        for (rank, errs) in results.iter().enumerate() {
            if rank == 2 {
                continue;
            }
            assert_eq!(errs.len(), 3);
            for e in errs {
                assert!(
                    matches!(e, CollectiveError::RankFailed(2)),
                    "rank {rank} got {e:?}"
                );
            }
        }
    }

    #[test]
    fn a_dead_rank_observes_its_own_death() {
        let comms = ThreadComm::create(2);
        comms[1].mark_dead(1);
        let mut buf = vec![1.0];
        let e = comms[1]
            .try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
            .unwrap_err();
        assert!(matches!(e, CollectiveError::RankFailed(1)));
    }

    /// Regression for the drain race that stranded a survivor: a rank
    /// that departs a completed generation and *then* dies must not be
    /// double-counted (once as departed, once as dead) — that released
    /// the slot one departure early and left the slowest survivor
    /// waiting on a generation that no longer existed. Many repetitions
    /// because the bug needs the victim's death to land mid-drain.
    #[test]
    fn death_between_generations_does_not_strand_a_survivor() {
        for round in 0..25 {
            let kill_rank = 1 + (round % 3);
            let results = run_group(4, |rank, comm| {
                for r in 0..3 {
                    let mut buf = vec![rank as f32];
                    comm.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                        .unwrap();
                    assert_eq!(buf[0], 6.0, "pre-kill round {r}");
                }
                if rank == kill_rank {
                    comm.mark_dead(kill_rank);
                    return None;
                }
                let mut buf = vec![rank as f32];
                let e = comm
                    .try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                    .unwrap_err();
                assert!(matches!(e, CollectiveError::RankFailed(r) if r == kill_rank));
                // The survivors shrink to a working, epoch-fenced group.
                let shrunk = comm.shrink(&[kill_rank]).expect("membership agreement");
                assert_eq!(shrunk.view().epoch, 1);
                assert_eq!(shrunk.size(), 3);
                let mut buf = vec![shrunk.rank() as f32];
                shrunk.allreduce(&mut buf, ReduceOp::Sum);
                assert_eq!(buf[0], 3.0); // 0 + 1 + 2
                let gathered = shrunk.allgather(&[shrunk.rank() as f32]);
                assert_eq!(gathered.len(), 3);
                Some(shrunk.rank())
            });
            let mut new_ranks: Vec<usize> = results.into_iter().flatten().collect();
            new_ranks.sort_unstable();
            assert_eq!(new_ranks, vec![0, 1, 2], "kill {kill_rank}");
        }
    }
}
