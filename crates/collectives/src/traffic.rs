//! Communication-volume accounting.
//!
//! The paper's communication analysis (§IV-C, Table V) distinguishes three
//! traffic classes: gradient averaging (every iteration), factor averaging
//! (every `10 × kfac-update-freq` iterations) and eigendecomposition
//! gathering (every `kfac-update-freq` iterations). Implementations of
//! [`Communicator`](crate::Communicator) record bytes and op counts per
//! class so experiments can verify the claimed reductions.

use kfac_telemetry::Counter;
use std::sync::Arc;

/// What a collective operation was transporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficClass {
    /// Per-iteration gradient exchange (SGD and K-FAC alike).
    Gradient,
    /// Kronecker-factor averaging (Algorithm 1 line 8).
    Factor,
    /// Eigendecomposition allgather (Algorithm 1 line 18).
    Eigen,
    /// Preconditioned-gradient broadcast (K-FAC-lw strategy only).
    Precond,
    /// Anything else (barriers, model broadcast at start, diagnostics).
    Other,
}

impl TrafficClass {
    /// Stable lowercase label, used as the `class` attribute on the
    /// telemetry spans collectives record.
    pub fn name(self) -> &'static str {
        match self {
            TrafficClass::Gradient => "gradient",
            TrafficClass::Factor => "factor",
            TrafficClass::Eigen => "eigen",
            TrafficClass::Precond => "precond",
            TrafficClass::Other => "other",
        }
    }

    /// Registry counter name for this class's byte volume, as mirrored
    /// into the ambient telemetry registry and served at `/metrics`.
    pub fn byte_counter_name(self) -> &'static str {
        match self {
            TrafficClass::Gradient => "comm/bytes/gradient",
            TrafficClass::Factor => "comm/bytes/factor",
            TrafficClass::Eigen => "comm/bytes/eigen",
            TrafficClass::Precond => "comm/bytes/precond",
            TrafficClass::Other => "comm/bytes/other",
        }
    }

    /// Scheduling priority for the exec ready queue; higher runs first
    /// when several tasks are ready. Gradient traffic blocks the next
    /// optimizer step every iteration, so it outranks the K-FAC stages,
    /// which are off the per-iteration critical path except on update
    /// iterations.
    pub fn priority(self) -> u8 {
        match self {
            TrafficClass::Gradient => 100,
            TrafficClass::Precond => 80,
            TrafficClass::Eigen => 60,
            TrafficClass::Factor => 40,
            TrafficClass::Other => 20,
        }
    }
}

/// Snapshot of cumulative traffic on one rank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Traffic {
    /// Bytes moved by gradient allreduces.
    pub gradient_bytes: u64,
    /// Bytes moved by factor allreduces.
    pub factor_bytes: u64,
    /// Bytes moved by eigendecomposition allgathers.
    pub eigen_bytes: u64,
    /// Bytes moved by preconditioned-gradient broadcasts (K-FAC-lw).
    pub precond_bytes: u64,
    /// Bytes in the `Other` class.
    pub other_bytes: u64,
    /// Total number of collective operations issued.
    pub ops: u64,
}

impl Traffic {
    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.gradient_bytes
            + self.factor_bytes
            + self.eigen_bytes
            + self.precond_bytes
            + self.other_bytes
    }
}

/// Thread-safe accumulator shared by the ranks of a communicator group,
/// built from telemetry [`Counter`]s — the same metric primitive the
/// rest of the stack uses, so traffic totals and trace spans come from
/// one subsystem.
#[derive(Debug, Default)]
pub struct TrafficCounter {
    gradient: Counter,
    factor: Counter,
    eigen: Counter,
    precond: Counter,
    other: Counter,
    ops: Counter,
}

impl TrafficCounter {
    /// New shared counter.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one collective moving `bytes` of class `class`.
    pub fn record(&self, class: TrafficClass, bytes: u64) {
        self.class_counter(class).add(bytes);
        self.ops.inc();
    }

    /// The underlying byte counter for one class.
    pub fn class_counter(&self, class: TrafficClass) -> &Counter {
        match class {
            TrafficClass::Gradient => &self.gradient,
            TrafficClass::Factor => &self.factor,
            TrafficClass::Eigen => &self.eigen,
            TrafficClass::Precond => &self.precond,
            TrafficClass::Other => &self.other,
        }
    }

    /// Read a consistent-enough snapshot (relaxed loads; exact once the
    /// group is quiescent, which is when experiments read it).
    pub fn snapshot(&self) -> Traffic {
        Traffic {
            gradient_bytes: self.gradient.get(),
            factor_bytes: self.factor.get(),
            eigen_bytes: self.eigen.get(),
            precond_bytes: self.precond.get(),
            other_bytes: self.other.get(),
            ops: self.ops.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_class() {
        let c = TrafficCounter::new();
        c.record(TrafficClass::Gradient, 100);
        c.record(TrafficClass::Gradient, 50);
        c.record(TrafficClass::Eigen, 7);
        let t = c.snapshot();
        assert_eq!(t.gradient_bytes, 150);
        assert_eq!(t.eigen_bytes, 7);
        assert_eq!(t.factor_bytes, 0);
        assert_eq!(t.ops, 3);
        assert_eq!(t.total_bytes(), 157);
    }

    #[test]
    fn concurrent_recording() {
        let c = TrafficCounter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.record(TrafficClass::Factor, 3);
                    }
                });
            }
        });
        let t = c.snapshot();
        assert_eq!(t.factor_bytes, 24_000);
        assert_eq!(t.ops, 8000);
    }
}
