//! Length-prefixed wire framing for the proc backend.
//!
//! Every message on every TCP connection — bootstrap handshakes and
//! collective payloads alike — is one frame:
//!
//! ```text
//! [len: u32 LE] [tag: u64 LE] [payload: len bytes]
//! ```
//!
//! `len` counts payload bytes only. Collective payloads are `f32`s in
//! little-endian byte order; bootstrap payloads are protocol-specific byte
//! strings (see [`super::bootstrap`]). Frames carry their own length, so
//! variable-length allgather payloads need no separate length exchange.

use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload; a corrupted length prefix fails
/// fast instead of attempting a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

/// Frame header size: u32 length + u64 tag.
const HEADER_BYTES: usize = 12;

/// Write one frame. Header and payload are coalesced into a single
/// `write_all` so small frames leave in one segment under `TCP_NODELAY`.
pub fn write_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&tag.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame, blocking until the full payload arrives.
pub fn read_frame(r: &mut impl Read) -> io::Result<(u64, Vec<u8>)> {
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds {MAX_FRAME_BYTES}"),
        ));
    }
    let tag = u64::from_le_bytes(header[4..].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Encode an `f32` slice as little-endian bytes.
pub fn f32s_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes back into `f32`s; `None` if the length is
/// not a multiple of four (a torn or corrupted frame).
pub fn bytes_to_f32s(bytes: &[u8]) -> Option<Vec<f32>> {
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 0xDEAD_BEEF_u64, &[1, 2, 3, 4, 5]).unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, 0xDEAD_BEEF_u64);
        assert_eq!(payload, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, &[]).unwrap();
        let (tag, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(tag, 7);
        assert!(payload.is_empty());
    }

    #[test]
    fn f32_payload_round_trips_bitwise() {
        let data = vec![0.0f32, -0.0, 1.5, f32::MIN_POSITIVE, 3.0e38, -7.25];
        let decoded = bytes_to_f32s(&f32s_to_bytes(&data)).unwrap();
        assert_eq!(data.len(), decoded.len());
        for (a, b) in data.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn torn_payload_is_rejected() {
        assert!(bytes_to_f32s(&[0, 0, 0]).is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }
}
