//! # Multi-process collective backend
//!
//! Real N-process groups over localhost TCP — the step from "N threads
//! pretending to be ranks" to separate OS processes with a wire protocol,
//! which is what makes the α/β cost model *measurable* instead of assumed
//! (`xp bench-allreduce` → `BENCH_allreduce.json` → `kfac-cluster`
//! calibration).
//!
//! Layers, bottom up:
//!
//! * [`wire`] — length-prefixed frames: `[len u32][tag u64][payload]`,
//!   `f32` payloads in little-endian.
//! * [`bootstrap`] — broker rendezvous keyed by `KFAC_PROC_*` env
//!   (`RANK`, `WORLD`, `ROOT`, `TIMEOUT_MS`) and pairwise mesh dialing,
//!   deadline-bounded with typed errors.
//! * [`ProcTransport`] — per-peer persistent connections, one reader
//!   thread per peer draining into tag-keyed mailboxes (sends never
//!   deadlock against receives), per-receive deadlines.
//! * [`ProcComm`] — the [`crate::Communicator`] built by running the
//!   [`crate::algo`] layer (pipelined ring / halving-doubling / flat,
//!   auto-selected by size) over that mesh. Bitwise-identical reductions
//!   to [`crate::ThreadComm`]; wraps cleanly in
//!   [`crate::FaultyCommunicator`] and [`crate::RetryPolicy`].
//!
//! Launching: a parent picks a rendezvous port, spawns N workers with
//! [`ProcConfig::env_for_rank`], and each worker calls
//! [`ProcComm::from_env`] (the `xp` binary does this automatically — see
//! `kfac-harness::procrun`). Tests use [`ProcComm::create_local`], which
//! drives the identical TCP stack from threads of one process.

pub mod bootstrap;
pub mod comm;
pub mod wire;

pub use bootstrap::ProcConfig;
pub use comm::{HeartbeatConfig, ProcComm, ProcTransport};
