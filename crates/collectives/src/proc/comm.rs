//! The multi-process communicator: TCP mesh transport + algorithm layer.

use super::bootstrap::{establish, ProcConfig};
use super::wire::{bytes_to_f32s, f32s_to_bytes, read_frame, write_frame};
use crate::algo::{AlgoComm, AlgoPolicy};
use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::traffic::{Traffic, TrafficClass};
use crate::transport::Transport;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mailbox state shared between reader threads and collective callers.
struct MailState {
    /// Delivered-but-unclaimed messages, keyed by `(from, tag)`.
    boxes: HashMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Peers whose connection has closed or errored; receives from them
    /// fail immediately with [`CollectiveError::RankFailed`].
    dead: Vec<bool>,
}

/// TCP mesh endpoint implementing [`Transport`].
///
/// One dedicated reader thread per peer drains that peer's socket into
/// the tag-keyed mailboxes, so sends never deadlock against receives
/// (both sides of an exchange can write first; the kernel plus the reader
/// thread buffer everything in flight). Writes go directly to the socket
/// under a per-peer mutex.
pub struct ProcTransport {
    rank: usize,
    world: usize,
    timeout: Duration,
    state: Arc<(Mutex<MailState>, Condvar)>,
    writers: Vec<Option<Mutex<TcpStream>>>,
    readers: Vec<JoinHandle<()>>,
}

impl ProcTransport {
    /// Bootstrap the mesh per `cfg` and start the reader threads.
    pub fn establish(
        cfg: &ProcConfig,
        pre_bound_root: Option<TcpListener>,
    ) -> Result<ProcTransport, CollectiveError> {
        let streams = establish(cfg, pre_bound_root)?;
        let state = Arc::new((
            Mutex::new(MailState {
                boxes: HashMap::new(),
                dead: vec![false; cfg.world],
            }),
            Condvar::new(),
        ));
        let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(cfg.world);
        let mut readers = Vec::new();
        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else {
                writers.push(None);
                continue;
            };
            let mut read_half = stream
                .try_clone()
                .map_err(|_| CollectiveError::RankFailed(cfg.rank))?;
            let state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("kfac-proc-r{}-p{}", cfg.rank, peer))
                .spawn(move || loop {
                    match read_frame(&mut read_half) {
                        Ok((tag, payload)) => match bytes_to_f32s(&payload) {
                            Some(msg) => {
                                let (lock, cv) = &*state;
                                let mut st = lock.lock();
                                st.boxes.entry((peer, tag)).or_default().push_back(msg);
                                cv.notify_all();
                            }
                            None => {
                                // Torn frame: poison the peer, callers see
                                // RankFailed rather than silent corruption.
                                let (lock, cv) = &*state;
                                lock.lock().dead[peer] = true;
                                cv.notify_all();
                                return;
                            }
                        },
                        Err(_) => {
                            let (lock, cv) = &*state;
                            lock.lock().dead[peer] = true;
                            cv.notify_all();
                            return;
                        }
                    }
                })
                .map_err(|_| CollectiveError::RankFailed(cfg.rank))?;
            readers.push(handle);
            writers.push(Some(Mutex::new(stream)));
        }
        Ok(ProcTransport {
            rank: cfg.rank,
            world: cfg.world,
            timeout: cfg.timeout,
            state,
            writers,
            readers,
        })
    }
}

impl Transport for ProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world
    }

    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError> {
        let Some(writer) = self.writers.get(to).and_then(|w| w.as_ref()) else {
            return Err(CollectiveError::Mismatch("send to invalid peer"));
        };
        let bytes = f32s_to_bytes(payload);
        let mut stream = writer.lock();
        write_frame(&mut *stream, tag, &bytes).map_err(|_| CollectiveError::RankFailed(to))
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError> {
        let key = (from, tag);
        let deadline = Instant::now() + self.timeout;
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        loop {
            if let Some(q) = st.boxes.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        st.boxes.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            if *st.dead.get(from).unwrap_or(&true) {
                return Err(CollectiveError::RankFailed(from));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CollectiveError::Timeout {
                    waited_ms: self.timeout.as_millis() as u64,
                });
            }
            cv.wait_for(&mut st, deadline - now);
        }
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        // Wake the reader threads out of their blocking reads, then join
        // them so no thread outlives the mailboxes it serves.
        for writer in self.writers.iter().flatten() {
            let _ = writer.lock().shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Multi-process communicator over localhost TCP.
///
/// Implements the full [`Communicator`] contract — infallible and
/// fallible collectives, typed [`CollectiveError`]s, barrier, traffic
/// accounting — by running the [`crate::algo`] algorithm layer over a
/// [`ProcTransport`] mesh. Because the algorithms pin the canonical
/// rank-order reduction, a `ProcComm` allreduce is bitwise identical to a
/// [`crate::ThreadComm`] allreduce of the same inputs, and
/// [`crate::FaultyCommunicator`] / [`crate::RetryPolicy`] wrap it
/// unchanged.
pub struct ProcComm {
    inner: AlgoComm<ProcTransport>,
}

impl ProcComm {
    /// Join (or, for rank 0, host) the group described by `cfg`, with the
    /// algorithm policy taken from the environment.
    pub fn connect(cfg: &ProcConfig) -> Result<ProcComm, CollectiveError> {
        Self::connect_with(cfg, AlgoPolicy::from_env(), None)
    }

    /// [`ProcComm::connect`] with an explicit policy and optionally a
    /// pre-bound root listener for rank 0 (in-process launches).
    pub fn connect_with(
        cfg: &ProcConfig,
        policy: AlgoPolicy,
        pre_bound_root: Option<TcpListener>,
    ) -> Result<ProcComm, CollectiveError> {
        let transport = ProcTransport::establish(cfg, pre_bound_root)?;
        Ok(ProcComm {
            inner: AlgoComm::new(transport, policy),
        })
    }

    /// Join the group described by the `KFAC_PROC_*` environment.
    /// `Ok(None)` when the environment does not describe a proc worker.
    pub fn from_env() -> Result<Option<ProcComm>, String> {
        match ProcConfig::from_env()? {
            None => Ok(None),
            Some(cfg) => ProcComm::connect(&cfg)
                .map(Some)
                .map_err(|e| format!("proc rendezvous failed for rank {}: {e}", cfg.rank)),
        }
    }

    /// In-process group of `world` connected `ProcComm`s: real TCP
    /// sockets, reader threads and wire framing, driven from threads of
    /// one process. This is what unit/property/chaos tests use — it
    /// exercises the entire proc stack without process spawning.
    ///
    /// # Panics
    /// Panics if the local rendezvous fails (loopback networking broken).
    pub fn create_local(world: usize) -> Vec<ProcComm> {
        Self::create_local_with(world, AlgoPolicy::default(), ProcConfig::DEFAULT_TIMEOUT)
            .expect("local proc rendezvous failed")
    }

    /// [`ProcComm::create_local`] with explicit policy and deadline.
    pub fn create_local_with(
        world: usize,
        policy: AlgoPolicy,
        timeout: Duration,
    ) -> Result<Vec<ProcComm>, CollectiveError> {
        assert!(world > 0, "communicator group must have at least one rank");
        let root_listener =
            TcpListener::bind("127.0.0.1:0").map_err(|_| CollectiveError::RankFailed(0))?;
        let root = root_listener
            .local_addr()
            .map_err(|_| CollectiveError::RankFailed(0))?
            .to_string();
        let mut pre_bound = Some(root_listener);
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = ProcConfig {
                    rank,
                    world,
                    root: root.clone(),
                    timeout,
                };
                let listener = if rank == 0 { pre_bound.take() } else { None };
                std::thread::Builder::new()
                    .name(format!("kfac-proc-boot-{rank}"))
                    .spawn(move || ProcComm::connect_with(&cfg, policy, listener))
                    .expect("spawn bootstrap thread")
            })
            .collect();
        let mut comms = Vec::with_capacity(world);
        for h in handles {
            comms.push(h.join().map_err(|_| CollectiveError::RankFailed(0))??);
        }
        Ok(comms)
    }

    /// The active algorithm policy.
    pub fn policy(&self) -> AlgoPolicy {
        self.inner.policy()
    }
}

impl Communicator for ProcComm {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.inner.allreduce_tagged(buf, op, class);
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.inner.allgather_tagged(payload, class)
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.inner.broadcast_tagged(buf, root, class);
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_allreduce_tagged(buf, op, class)
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        self.inner.try_allgather_tagged(payload, class)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_broadcast_tagged(buf, root, class)
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn traffic(&self) -> Traffic {
        self.inner.traffic()
    }
}
