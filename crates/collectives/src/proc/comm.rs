//! The multi-process communicator: TCP mesh transport + algorithm layer.

use super::bootstrap::{establish, ProcConfig};
use super::wire::{bytes_to_f32s, f32s_to_bytes, read_frame, write_frame};
use crate::algo::{AlgoComm, AlgoPolicy};
use crate::communicator::{Communicator, ReduceOp};
use crate::handle::CollectiveError;
use crate::membership::{
    agree_on_survivors, Elastic, GroupView, Membership, ShrunkComm, ViewTransport,
    AGREEMENT_DEADLINE,
};
use crate::traffic::{Traffic, TrafficClass};
use crate::transport::{tag_epoch, Transport, CTRL_BIT, TAG_HEARTBEAT};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Failure-detector tuning for the proc fabric.
///
/// The per-peer reader threads already detect a *closed* peer instantly
/// (EOF/torn frame). Heartbeats catch the other failure mode — a peer
/// that is wedged with its socket still open: every `interval` each rank
/// writes an empty control frame to every peer, and a peer from which
/// nothing (heartbeat or data) has arrived for `timeout` is declared
/// dead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeartbeatConfig {
    /// Send/scan period. `Duration::ZERO` disables the detector (EOF
    /// detection by the reader threads still works).
    pub interval: Duration,
    /// Silence threshold after which a peer is declared dead.
    pub timeout: Duration,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(500),
            timeout: Duration::from_secs(15),
        }
    }
}

impl HeartbeatConfig {
    /// Read `KFAC_HEARTBEAT_MS` (period; `0` disables) and
    /// `KFAC_HEARTBEAT_TIMEOUT_MS` (silence threshold), returning a
    /// typed error on garbage instead of panicking.
    pub fn try_from_env() -> Result<HeartbeatConfig, String> {
        let mut cfg = HeartbeatConfig::default();
        if let Ok(v) = std::env::var("KFAC_HEARTBEAT_MS") {
            let ms: u64 = v
                .parse()
                .map_err(|_| format!("KFAC_HEARTBEAT_MS={v:?} invalid; expected milliseconds"))?;
            cfg.interval = Duration::from_millis(ms);
        }
        if let Ok(v) = std::env::var("KFAC_HEARTBEAT_TIMEOUT_MS") {
            let ms: u64 = v.parse().map_err(|_| {
                format!("KFAC_HEARTBEAT_TIMEOUT_MS={v:?} invalid; expected milliseconds")
            })?;
            cfg.timeout = Duration::from_millis(ms);
        }
        Ok(cfg)
    }

    fn enabled(&self) -> bool {
        self.interval > Duration::ZERO
    }
}

/// Mailbox state shared between reader threads and collective callers.
struct MailState {
    /// Delivered-but-unclaimed messages, keyed by `(from, tag)`.
    boxes: HashMap<(usize, u64), VecDeque<Vec<f32>>>,
    /// Peers whose connection has closed, errored, or gone silent past
    /// the heartbeat timeout.
    dead: Vec<bool>,
    /// Peers acknowledged as removed from the group by a membership
    /// shrink: excluded from the any-dead failure scan so the survivor
    /// group keeps communicating.
    fenced: Vec<bool>,
    /// Last time anything (heartbeat or data) arrived from each peer.
    last_heard: Vec<Instant>,
}

/// State shared by callers, reader threads and the heartbeat thread.
struct SharedState {
    mail: Mutex<MailState>,
    cv: Condvar,
    /// Current membership epoch; readers drop data frames stamped with
    /// an older epoch on arrival (straggler fencing).
    epoch: AtomicU64,
}

impl SharedState {
    fn mark_dead(&self, peer: usize) {
        let mut st = self.mail.lock();
        if !st.dead[peer] {
            st.dead[peer] = true;
            self.cv.notify_all();
        }
    }
}

/// TCP mesh endpoint implementing [`Transport`].
///
/// One dedicated reader thread per peer drains that peer's socket into
/// the tag-keyed mailboxes, so sends never deadlock against receives
/// (both sides of an exchange can write first; the kernel plus the reader
/// thread buffer everything in flight). Writes go directly to the socket
/// under a per-peer mutex. A heartbeat thread ([`HeartbeatConfig`])
/// doubles as the liveness monitor.
pub struct ProcTransport {
    rank: usize,
    world: usize,
    timeout: Duration,
    state: Arc<SharedState>,
    writers: Arc<Vec<Option<Mutex<TcpStream>>>>,
    readers: Vec<JoinHandle<()>>,
    heartbeat: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
}

impl ProcTransport {
    /// Bootstrap the mesh per `cfg` and start the reader threads (and,
    /// when enabled, the heartbeat thread).
    pub fn establish(
        cfg: &ProcConfig,
        hb: HeartbeatConfig,
        pre_bound_root: Option<TcpListener>,
    ) -> Result<ProcTransport, CollectiveError> {
        let streams = establish(cfg, pre_bound_root)?;
        let now = Instant::now();
        let state = Arc::new(SharedState {
            mail: Mutex::new(MailState {
                boxes: HashMap::new(),
                dead: vec![false; cfg.world],
                fenced: vec![false; cfg.world],
                last_heard: vec![now; cfg.world],
            }),
            cv: Condvar::new(),
            epoch: AtomicU64::new(0),
        });
        let mut writers: Vec<Option<Mutex<TcpStream>>> = Vec::with_capacity(cfg.world);
        let mut readers = Vec::new();
        for (peer, stream) in streams.into_iter().enumerate() {
            let Some(stream) = stream else {
                writers.push(None);
                continue;
            };
            let mut read_half = stream
                .try_clone()
                .map_err(|_| CollectiveError::RankFailed(cfg.rank))?;
            let state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("kfac-proc-r{}-p{}", cfg.rank, peer))
                .spawn(move || loop {
                    match read_frame(&mut read_half) {
                        Ok((tag, payload)) => match bytes_to_f32s(&payload) {
                            Some(msg) => {
                                let mut st = state.mail.lock();
                                st.last_heard[peer] = Instant::now();
                                if tag == TAG_HEARTBEAT {
                                    continue; // liveness only, nothing to deliver
                                }
                                // Fence stragglers: a data frame stamped
                                // with a pre-shrink epoch is dropped on
                                // arrival.
                                if tag & CTRL_BIT == 0
                                    && tag_epoch(tag) < state.epoch.load(Ordering::Relaxed)
                                {
                                    continue;
                                }
                                st.boxes.entry((peer, tag)).or_default().push_back(msg);
                                state.cv.notify_all();
                            }
                            None => {
                                // Torn frame: poison the peer, callers see
                                // RankFailed rather than silent corruption.
                                state.mark_dead(peer);
                                return;
                            }
                        },
                        Err(_) => {
                            state.mark_dead(peer);
                            return;
                        }
                    }
                })
                .map_err(|_| CollectiveError::RankFailed(cfg.rank))?;
            readers.push(handle);
            writers.push(Some(Mutex::new(stream)));
        }
        let writers = Arc::new(writers);
        let heartbeat = if hb.enabled() && cfg.world > 1 {
            Some(spawn_heartbeat(
                cfg.rank,
                cfg.world,
                hb,
                Arc::clone(&state),
                Arc::clone(&writers),
            ))
        } else {
            None
        };
        Ok(ProcTransport {
            rank: cfg.rank,
            world: cfg.world,
            timeout: cfg.timeout,
            state,
            writers,
            readers,
            heartbeat,
        })
    }

    /// First peer that is dead and not yet fenced, if any.
    fn unfenced_dead(st: &MailState) -> Option<usize> {
        st.dead.iter().zip(&st.fenced).position(|(&d, &f)| d && !f)
    }
}

/// Periodically write heartbeat frames to every peer and declare peers
/// dead after `hb.timeout` of silence.
fn spawn_heartbeat(
    rank: usize,
    world: usize,
    hb: HeartbeatConfig,
    state: Arc<SharedState>,
    writers: Arc<Vec<Option<Mutex<TcpStream>>>>,
) -> (Arc<AtomicBool>, JoinHandle<()>) {
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name(format!("kfac-proc-hb-{rank}"))
        .spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                for peer in 0..world {
                    if peer == rank {
                        continue;
                    }
                    let already_dead = state.mail.lock().dead[peer];
                    if already_dead {
                        continue;
                    }
                    if let Some(writer) = &writers[peer] {
                        let failed = write_frame(&mut *writer.lock(), TAG_HEARTBEAT, &[]).is_err();
                        if failed {
                            state.mark_dead(peer);
                        }
                    }
                }
                {
                    let mut st = state.mail.lock();
                    let now = Instant::now();
                    let mut changed = false;
                    for peer in 0..world {
                        if peer != rank
                            && !st.dead[peer]
                            && now.duration_since(st.last_heard[peer]) > hb.timeout
                        {
                            st.dead[peer] = true;
                            changed = true;
                        }
                    }
                    if changed {
                        state.cv.notify_all();
                    }
                }
                std::thread::sleep(hb.interval);
            }
        })
        .expect("spawn heartbeat thread");
    (stop, handle)
}

impl Transport for ProcTransport {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.world
    }

    fn try_send(&self, to: usize, tag: u64, payload: &[f32]) -> Result<(), CollectiveError> {
        let Some(writer) = self.writers.get(to).and_then(|w| w.as_ref()) else {
            return Err(CollectiveError::Mismatch("send to invalid peer"));
        };
        let bytes = f32s_to_bytes(payload);
        let failed = write_frame(&mut *writer.lock(), tag, &bytes).is_err();
        if failed {
            self.state.mark_dead(to);
            return Err(CollectiveError::RankFailed(to));
        }
        Ok(())
    }

    fn try_recv(&self, from: usize, tag: u64) -> Result<Vec<f32>, CollectiveError> {
        let key = (from, tag);
        let deadline = Instant::now() + self.timeout;
        let mut st = self.state.mail.lock();
        loop {
            if let Some(q) = st.boxes.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        st.boxes.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            // A collective cannot complete once *any* group member is
            // gone: fail promptly with the culprit instead of burning the
            // deadline, so callers can start reconfiguring immediately.
            // Fenced peers are acknowledged-dead (previous epochs) and
            // don't count.
            if from >= self.world {
                return Err(CollectiveError::RankFailed(from));
            }
            if let Some(culprit) = Self::unfenced_dead(&st) {
                return Err(CollectiveError::RankFailed(culprit));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CollectiveError::Timeout {
                    waited_ms: self.timeout.as_millis() as u64,
                });
            }
            self.state.cv.wait_for(&mut st, deadline - now);
        }
    }
}

impl Membership for ProcTransport {
    fn observed_dead(&self) -> Vec<usize> {
        let st = self.state.mail.lock();
        st.dead
            .iter()
            .zip(&st.fenced)
            .enumerate()
            .filter(|(_, (&d, &f))| d && !f)
            .map(|(i, _)| i)
            .collect()
    }

    fn mark_dead(&self, original: usize) {
        if original < self.world {
            self.state.mark_dead(original);
        }
    }

    fn fence(&self, dead: &[usize], new_epoch: u64) {
        let mut st = self.state.mail.lock();
        for &d in dead {
            if d < self.world {
                st.dead[d] = true;
                st.fenced[d] = true;
            }
        }
        self.state.epoch.store(new_epoch, Ordering::Relaxed);
        let fenced = st.fenced.clone();
        st.boxes.retain(|&(peer, tag), _| {
            !fenced[peer] && (tag & CTRL_BIT != 0 || tag_epoch(tag) >= new_epoch)
        });
        self.state.cv.notify_all();
    }

    fn recv_deadline(
        &self,
        from: usize,
        tag: u64,
        deadline: Instant,
    ) -> Result<Vec<f32>, CollectiveError> {
        let key = (from, tag);
        let mut st = self.state.mail.lock();
        loop {
            if let Some(q) = st.boxes.get_mut(&key) {
                if let Some(msg) = q.pop_front() {
                    if q.is_empty() {
                        st.boxes.remove(&key);
                    }
                    return Ok(msg);
                }
            }
            if *st.dead.get(from).unwrap_or(&true) {
                return Err(CollectiveError::RankFailed(from));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CollectiveError::Timeout { waited_ms: 0 });
            }
            self.state.cv.wait_for(&mut st, deadline - now);
        }
    }
}

impl Drop for ProcTransport {
    fn drop(&mut self) {
        // Stop the heartbeat first so it doesn't race the socket
        // shutdowns, then wake the reader threads out of their blocking
        // reads and join them so no thread outlives the mailboxes.
        if let Some((stop, handle)) = self.heartbeat.take() {
            stop.store(true, Ordering::Relaxed);
            let _ = handle.join();
        }
        for writer in self.writers.iter().flatten() {
            let _ = writer.lock().shutdown(Shutdown::Both);
        }
        for handle in self.readers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Multi-process communicator over localhost TCP.
///
/// Implements the full [`Communicator`] contract — infallible and
/// fallible collectives, typed [`CollectiveError`]s, barrier, traffic
/// accounting — by running the [`crate::algo`] algorithm layer over a
/// [`ProcTransport`] mesh, wrapped in an epoch-fenced
/// [`ViewTransport`]. At boot the view is the identity (epoch 0, members
/// `0..world`), which stamps every tag with epoch 0 — bitwise identical
/// on the wire to the pre-membership protocol — so a `ProcComm` allreduce
/// stays bitwise identical to a [`crate::ThreadComm`] allreduce of the
/// same inputs, and [`crate::FaultyCommunicator`] / [`crate::RetryPolicy`]
/// wrap it unchanged. After a rank dies, [`Elastic::shrink`] agrees on
/// the survivors and returns a new `ProcComm` fenced to the next epoch.
pub struct ProcComm {
    inner: AlgoComm<ViewTransport<ProcTransport>>,
}

impl ProcComm {
    /// Join (or, for rank 0, host) the group described by `cfg`, with the
    /// algorithm policy and heartbeat tuning taken from the environment.
    pub fn connect(cfg: &ProcConfig) -> Result<ProcComm, CollectiveError> {
        Self::connect_with(cfg, AlgoPolicy::from_env(), None)
    }

    /// [`ProcComm::connect`] with an explicit policy and optionally a
    /// pre-bound root listener for rank 0 (in-process launches).
    pub fn connect_with(
        cfg: &ProcConfig,
        policy: AlgoPolicy,
        pre_bound_root: Option<TcpListener>,
    ) -> Result<ProcComm, CollectiveError> {
        let hb = HeartbeatConfig::try_from_env()
            .map_err(|_| CollectiveError::Mismatch("invalid KFAC_HEARTBEAT_* environment"))?;
        Self::connect_full(cfg, policy, hb, pre_bound_root)
    }

    /// Fully-explicit constructor: policy, heartbeat tuning, listener.
    pub fn connect_full(
        cfg: &ProcConfig,
        policy: AlgoPolicy,
        hb: HeartbeatConfig,
        pre_bound_root: Option<TcpListener>,
    ) -> Result<ProcComm, CollectiveError> {
        let transport = Arc::new(ProcTransport::establish(cfg, hb, pre_bound_root)?);
        let view = GroupView::boot(cfg.rank, cfg.world);
        Ok(ProcComm {
            inner: AlgoComm::new(ViewTransport::new(transport, view), policy),
        })
    }

    /// Join the group described by the `KFAC_PROC_*` environment.
    /// `Ok(None)` when the environment does not describe a proc worker.
    pub fn from_env() -> Result<Option<ProcComm>, String> {
        match ProcConfig::from_env()? {
            None => Ok(None),
            Some(cfg) => {
                let policy = AlgoPolicy::try_from_env()?;
                let hb = HeartbeatConfig::try_from_env()?;
                ProcComm::connect_full(&cfg, policy, hb, None)
                    .map(Some)
                    .map_err(|e| format!("proc rendezvous failed for rank {}: {e}", cfg.rank))
            }
        }
    }

    /// In-process group of `world` connected `ProcComm`s: real TCP
    /// sockets, reader threads and wire framing, driven from threads of
    /// one process. This is what unit/property/chaos tests use — it
    /// exercises the entire proc stack without process spawning.
    ///
    /// # Panics
    /// Panics if the local rendezvous fails (loopback networking broken).
    pub fn create_local(world: usize) -> Vec<ProcComm> {
        Self::create_local_with(world, AlgoPolicy::default(), ProcConfig::DEFAULT_TIMEOUT)
            .expect("local proc rendezvous failed")
    }

    /// [`ProcComm::create_local`] with explicit policy and deadline.
    pub fn create_local_with(
        world: usize,
        policy: AlgoPolicy,
        timeout: Duration,
    ) -> Result<Vec<ProcComm>, CollectiveError> {
        assert!(world > 0, "communicator group must have at least one rank");
        let root_listener =
            TcpListener::bind("127.0.0.1:0").map_err(|_| CollectiveError::RankFailed(0))?;
        let root = root_listener
            .local_addr()
            .map_err(|_| CollectiveError::RankFailed(0))?
            .to_string();
        let mut pre_bound = Some(root_listener);
        let handles: Vec<_> = (0..world)
            .map(|rank| {
                let cfg = ProcConfig {
                    rank,
                    world,
                    root: root.clone(),
                    timeout,
                };
                let listener = if rank == 0 { pre_bound.take() } else { None };
                std::thread::Builder::new()
                    .name(format!("kfac-proc-boot-{rank}"))
                    .spawn(move || {
                        ProcComm::connect_full(&cfg, policy, HeartbeatConfig::default(), listener)
                    })
                    .expect("spawn bootstrap thread")
            })
            .collect();
        let mut comms = Vec::with_capacity(world);
        for h in handles {
            comms.push(h.join().map_err(|_| CollectiveError::RankFailed(0))??);
        }
        Ok(comms)
    }

    /// The active algorithm policy.
    pub fn policy(&self) -> AlgoPolicy {
        self.inner.policy()
    }

    /// The membership view this communicator runs in.
    pub fn view(&self) -> &GroupView {
        self.inner.transport().view()
    }

    /// Inject a failure observation (original rank id) — the proc
    /// equivalent of [`crate::ThreadComm::mark_dead`], used by chaos
    /// tests; real failures are detected by the reader/heartbeat threads.
    pub fn mark_dead(&self, original: usize) {
        self.inner.transport().base().mark_dead(original);
    }
}

impl Communicator for ProcComm {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn allreduce_tagged(&self, buf: &mut [f32], op: ReduceOp, class: TrafficClass) {
        self.inner.allreduce_tagged(buf, op, class);
    }

    fn allgather_tagged(&self, payload: &[f32], class: TrafficClass) -> Vec<Vec<f32>> {
        self.inner.allgather_tagged(payload, class)
    }

    fn broadcast_tagged(&self, buf: &mut [f32], root: usize, class: TrafficClass) {
        self.inner.broadcast_tagged(buf, root, class);
    }

    fn try_allreduce_tagged(
        &self,
        buf: &mut [f32],
        op: ReduceOp,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_allreduce_tagged(buf, op, class)
    }

    fn try_allgather_tagged(
        &self,
        payload: &[f32],
        class: TrafficClass,
    ) -> Result<Vec<Vec<f32>>, CollectiveError> {
        self.inner.try_allgather_tagged(payload, class)
    }

    fn try_broadcast_tagged(
        &self,
        buf: &mut [f32],
        root: usize,
        class: TrafficClass,
    ) -> Result<(), CollectiveError> {
        self.inner.try_broadcast_tagged(buf, root, class)
    }

    fn barrier(&self) {
        self.inner.barrier();
    }

    fn traffic(&self) -> Traffic {
        self.inner.traffic()
    }
}

impl Elastic for ProcComm {
    type Shrunk = ProcComm;

    fn shrink(&self, dead_hint: &[usize]) -> Result<ProcComm, CollectiveError> {
        let vt = self.inner.transport();
        let view = vt.view();
        let hint: Vec<usize> = dead_hint
            .iter()
            .filter(|&&r| r < view.world())
            .map(|&r| view.to_original(r))
            .collect();
        let next = agree_on_survivors(vt.base().as_ref(), view, &hint, AGREEMENT_DEADLINE)?;
        Ok(ProcComm {
            inner: AlgoComm::new(
                ViewTransport::new(Arc::clone(vt.base()), next),
                self.inner.policy(),
            ),
        })
    }

    fn epoch(&self) -> u64 {
        self.view().epoch
    }
}

/// The communicator type [`Elastic::shrink`] would produce for a
/// thread-fabric base — exported here for symmetry in user code.
pub type ShrunkProcComm = ShrunkComm<ProcTransport>;
