//! Rendezvous and mesh bootstrap for the proc backend.
//!
//! An N-process group needs two things before the first collective: every
//! rank must learn every peer's address, and every pair must hold one
//! persistent TCP connection. The protocol is broker-based and
//! deadline-bounded end to end:
//!
//! 1. Every rank binds a *mesh listener* on an ephemeral localhost port.
//! 2. Non-root ranks connect to the root address (`KFAC_PROC_ROOT`) and
//!    send a `HELLO` frame: `[rank: u64 LE][mesh addr, utf-8]`. Connects
//!    retry with a short sleep until the rendezvous deadline, because rank
//!    0 may not have bound its listener yet.
//! 3. Rank 0 collects all `world − 1` hellos, then answers each with a
//!    `ROSTER` frame: all mesh addresses, rank order, newline-joined.
//! 4. Mesh wiring: rank j dials every rank i < j and identifies itself
//!    with an `IDENT` frame `[j: u64 LE]`; rank i accepts `world − 1 − i`
//!    connections. Every socket gets `TCP_NODELAY`.
//!
//! Any step that outlives the deadline fails with
//! [`CollectiveError::Timeout`]; a peer that vanishes mid-handshake
//! surfaces as [`CollectiveError::RankFailed`]. Both are ordinary typed
//! errors, so a failed launch is reported instead of hanging CI.

use super::wire::{read_frame, write_frame};
use crate::handle::CollectiveError;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Bootstrap frame tags (collective traffic never uses these sockets, so
/// the namespace is private to this module).
const TAG_HELLO: u64 = 1;
const TAG_ROSTER: u64 = 2;
const TAG_IDENT: u64 = 3;

/// How long to sleep between connect attempts while a listener comes up.
const CONNECT_RETRY: Duration = Duration::from_millis(20);

/// Identity and rendezvous parameters of one rank in a proc group.
#[derive(Debug, Clone)]
pub struct ProcConfig {
    /// This process's rank in `0..world`.
    pub rank: usize,
    /// Number of processes in the group.
    pub world: usize,
    /// Rendezvous address rank 0 listens on, e.g. `127.0.0.1:29500`.
    pub root: String,
    /// Deadline for the whole bootstrap *and* per-receive deadline of the
    /// established transport.
    pub timeout: Duration,
}

impl ProcConfig {
    /// Default per-op / bootstrap deadline.
    pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

    /// Read the `KFAC_PROC_*` environment: `Ok(None)` when
    /// `KFAC_PROC_RANK` is unset (not a proc worker), `Err` with a
    /// human-readable message on a malformed configuration.
    pub fn from_env() -> Result<Option<ProcConfig>, String> {
        let Ok(rank_s) = std::env::var("KFAC_PROC_RANK") else {
            return Ok(None);
        };
        let rank: usize = rank_s
            .parse()
            .map_err(|_| format!("KFAC_PROC_RANK={rank_s:?} is not a rank index"))?;
        let world_s = std::env::var("KFAC_PROC_WORLD")
            .map_err(|_| "KFAC_PROC_RANK is set but KFAC_PROC_WORLD is missing".to_string())?;
        let world: usize = world_s
            .parse()
            .map_err(|_| format!("KFAC_PROC_WORLD={world_s:?} is not a group size"))?;
        if world == 0 || rank >= world {
            return Err(format!(
                "KFAC_PROC_RANK={rank} out of range for KFAC_PROC_WORLD={world}"
            ));
        }
        let root = std::env::var("KFAC_PROC_ROOT")
            .map_err(|_| "KFAC_PROC_RANK is set but KFAC_PROC_ROOT is missing".to_string())?;
        let timeout =
            match std::env::var("KFAC_PROC_TIMEOUT_MS") {
                Ok(ms) => Duration::from_millis(ms.parse().map_err(|_| {
                    format!("KFAC_PROC_TIMEOUT_MS={ms:?} is not a millisecond count")
                })?),
                Err(_) => Self::DEFAULT_TIMEOUT,
            };
        Ok(Some(ProcConfig {
            rank,
            world,
            root,
            timeout,
        }))
    }

    /// The environment a launcher must set for worker `rank` of a `world`
    /// group rendezvousing at `root`.
    pub fn env_for_rank(rank: usize, world: usize, root: &str) -> Vec<(String, String)> {
        vec![
            ("KFAC_PROC_RANK".to_string(), rank.to_string()),
            ("KFAC_PROC_WORLD".to_string(), world.to_string()),
            ("KFAC_PROC_ROOT".to_string(), root.to_string()),
        ]
    }
}

fn io_timeout(deadline: Instant, start: Instant) -> CollectiveError {
    let _ = deadline;
    CollectiveError::Timeout {
        waited_ms: start.elapsed().as_millis() as u64,
    }
}

fn remaining(deadline: Instant) -> Option<Duration> {
    deadline.checked_duration_since(Instant::now())
}

/// Dial `addr`, retrying while the listener may still be coming up,
/// until `deadline`.
fn connect_until(addr: &str, deadline: Instant, peer: usize) -> Result<TcpStream, CollectiveError> {
    let start = Instant::now();
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(_) if remaining(deadline).is_some() => std::thread::sleep(CONNECT_RETRY),
            Err(e) if e.kind() == io::ErrorKind::ConnectionRefused => {
                return Err(io_timeout(deadline, start))
            }
            Err(_) => return Err(CollectiveError::RankFailed(peer)),
        }
    }
}

/// Read one frame with the socket's read deadline set from `deadline`.
fn read_frame_deadline(
    stream: &mut TcpStream,
    deadline: Instant,
    peer: usize,
) -> Result<(u64, Vec<u8>), CollectiveError> {
    let start = Instant::now();
    let Some(left) = remaining(deadline) else {
        return Err(io_timeout(deadline, start));
    };
    stream
        .set_read_timeout(Some(left))
        .map_err(|_| CollectiveError::RankFailed(peer))?;
    match read_frame(stream) {
        Ok(f) => Ok(f),
        Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            Err(io_timeout(deadline, start))
        }
        Err(_) => Err(CollectiveError::RankFailed(peer)),
    }
}

/// Run the full rendezvous + mesh bootstrap. Returns one connected,
/// `TCP_NODELAY` stream per peer (`streams[rank]` is `None`).
///
/// `pre_bound_root` lets an in-process launcher ([`super::ProcComm::create_local`])
/// hand rank 0 an already-bound root listener so the ephemeral port is
/// known before the group starts.
pub fn establish(
    cfg: &ProcConfig,
    pre_bound_root: Option<TcpListener>,
) -> Result<Vec<Option<TcpStream>>, CollectiveError> {
    let start = Instant::now();
    let deadline = start + cfg.timeout;
    let world = cfg.world;
    let rank = cfg.rank;

    // Everyone binds their mesh listener first so roster addresses are
    // live by the time anyone reads them.
    let mesh_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|_| CollectiveError::RankFailed(rank))?;
    let mesh_addr = mesh_listener
        .local_addr()
        .map_err(|_| CollectiveError::RankFailed(rank))?
        .to_string();

    if world == 1 {
        return Ok(vec![None]);
    }

    // Phase 1+2: rendezvous through the root broker.
    let roster: Vec<String> = if rank == 0 {
        let root_listener = match pre_bound_root {
            Some(l) => l,
            None => TcpListener::bind(&cfg.root).map_err(|_| CollectiveError::RankFailed(0))?,
        };
        let mut addrs: Vec<Option<String>> = vec![None; world];
        addrs[0] = Some(mesh_addr.clone());
        let mut children: Vec<(usize, TcpStream)> = Vec::with_capacity(world - 1);
        while children.len() < world - 1 {
            if remaining(deadline).is_none() {
                return Err(io_timeout(deadline, start));
            }
            let (mut stream, _) = root_listener
                .accept()
                .map_err(|_| CollectiveError::RankFailed(0))?;
            let (tag, payload) = read_frame_deadline(&mut stream, deadline, 0)?;
            if tag != TAG_HELLO || payload.len() < 8 {
                return Err(CollectiveError::Mismatch("malformed proc hello frame"));
            }
            let peer = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
            let addr = String::from_utf8(payload[8..].to_vec())
                .map_err(|_| CollectiveError::Mismatch("malformed proc hello frame"))?;
            if peer == 0 || peer >= world || addrs[peer].is_some() {
                return Err(CollectiveError::Mismatch(
                    "proc hello rank out of range or duplicated",
                ));
            }
            addrs[peer] = Some(addr);
            children.push((peer, stream));
        }
        let roster: Vec<String> = addrs.into_iter().map(|a| a.unwrap()).collect();
        let payload = roster.join("\n").into_bytes();
        for (peer, mut stream) in children {
            write_frame(&mut stream, TAG_ROSTER, &payload)
                .map_err(|_| CollectiveError::RankFailed(peer))?;
        }
        roster
    } else {
        let mut stream = connect_until(&cfg.root, deadline, 0)?;
        let mut hello = Vec::with_capacity(8 + mesh_addr.len());
        hello.extend_from_slice(&(rank as u64).to_le_bytes());
        hello.extend_from_slice(mesh_addr.as_bytes());
        write_frame(&mut stream, TAG_HELLO, &hello).map_err(|_| CollectiveError::RankFailed(0))?;
        let (tag, payload) = read_frame_deadline(&mut stream, deadline, 0)?;
        if tag != TAG_ROSTER {
            return Err(CollectiveError::Mismatch("malformed proc roster frame"));
        }
        let roster: Vec<String> = String::from_utf8(payload)
            .map_err(|_| CollectiveError::Mismatch("malformed proc roster frame"))?
            .split('\n')
            .map(str::to_string)
            .collect();
        if roster.len() != world {
            return Err(CollectiveError::Mismatch("proc roster size mismatch"));
        }
        roster
    };

    // Phase 3: pairwise mesh. Rank j dials every i < j; rank i accepts
    // from every j > i and learns who called from the IDENT frame.
    let mut streams: Vec<Option<TcpStream>> = (0..world).map(|_| None).collect();
    for peer in 0..rank {
        let mut s = connect_until(&roster[peer], deadline, peer)?;
        write_frame(&mut s, TAG_IDENT, &(rank as u64).to_le_bytes())
            .map_err(|_| CollectiveError::RankFailed(peer))?;
        streams[peer] = Some(s);
    }
    for _ in rank + 1..world {
        if remaining(deadline).is_none() {
            return Err(io_timeout(deadline, start));
        }
        let (mut s, _) = mesh_listener
            .accept()
            .map_err(|_| CollectiveError::RankFailed(rank))?;
        let (tag, payload) = read_frame_deadline(&mut s, deadline, rank)?;
        if tag != TAG_IDENT || payload.len() != 8 {
            return Err(CollectiveError::Mismatch("malformed proc ident frame"));
        }
        let peer = u64::from_le_bytes(payload.try_into().unwrap()) as usize;
        if peer <= rank || peer >= world || streams[peer].is_some() {
            return Err(CollectiveError::Mismatch(
                "proc ident rank out of range or duplicated",
            ));
        }
        streams[peer] = Some(s);
    }

    for s in streams.iter().flatten() {
        // Collective frames are written whole; Nagle only adds latency.
        let _ = s.set_nodelay(true);
        // Clear bootstrap read deadlines: the reader threads block
        // indefinitely and are woken by shutdown() on drop.
        let _ = s.set_read_timeout(None);
    }
    Ok(streams)
}
