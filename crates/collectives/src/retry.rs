//! Bounded retry with exponential backoff for transient collective
//! faults.
//!
//! On 16–256 GPU clusters the common failure mode is not a dead rank but
//! a *transiently* slow or lossy collective (NCCL timeout, a switch
//! hiccup); production stacks retry those with backoff before escalating.
//! [`RetryPolicy`] packages that loop: it retries only errors that
//! [`CollectiveError::is_retryable`] marks transient (timeouts,
//! detected corruption), never permanent rank failures or protocol
//! mismatches, and sleeps an exponentially growing, capped backoff
//! between attempts.
//!
//! All ranks observing the same deterministic fault schedule (see
//! [`crate::faults`]) make identical retry decisions, so the group's
//! collective call sequences stay aligned through the retries — the MPI
//! ordering contract survives the fault handling.

use crate::handle::CollectiveError;
use std::time::Duration;

/// Bounded-attempt retry schedule with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). `1` disables retries.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: fail on the first error.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Default for in-process chaos testing: a handful of fast retries.
    pub fn default_comm() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(200),
            max_backoff: Duration::from_millis(20),
        }
    }

    /// Backoff before retry number `retry` (0-based): `base * 2^retry`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32.checked_shl(retry).unwrap_or(u32::MAX);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }

    /// Run `attempt` until it succeeds, returns a non-retryable error,
    /// or the attempt budget is exhausted (the last error is returned).
    pub fn run<T>(
        &self,
        mut attempt: impl FnMut() -> Result<T, CollectiveError>,
    ) -> Result<T, CollectiveError> {
        let mut tried = 0u32;
        loop {
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    tried += 1;
                    if !e.is_retryable() || tried >= self.max_attempts.max(1) {
                        return Err(e);
                    }
                    // Feed the watchdog's retry-rate rule: count only
                    // retries actually taken (not terminal failures).
                    if let Some((registry, _)) = kfac_telemetry::current() {
                        registry.counter("comm/retries").inc();
                    }
                    let pause = self.backoff(tried - 1);
                    if !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                }
            }
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::default_comm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out = policy.run(|| {
            calls += 1;
            if calls < 3 {
                Err(CollectiveError::Timeout { waited_ms: 1 })
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let policy = RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        let mut calls = 0;
        let out: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(CollectiveError::Timeout { waited_ms: 1 })
        });
        assert_eq!(out, Err(CollectiveError::Timeout { waited_ms: 1 }));
        assert_eq!(calls, 3);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let policy = RetryPolicy::default_comm();
        let mut calls = 0;
        let out: Result<(), _> = policy.run(|| {
            calls += 1;
            Err(CollectiveError::RankFailed(2))
        });
        assert_eq!(out, Err(CollectiveError::RankFailed(2)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(policy.backoff(0), Duration::from_millis(1));
        assert_eq!(policy.backoff(1), Duration::from_millis(2));
        assert_eq!(policy.backoff(2), Duration::from_millis(4));
        assert_eq!(policy.backoff(3), Duration::from_millis(4)); // capped
        assert_eq!(policy.backoff(40), Duration::from_millis(4)); // no overflow
    }
}
