//! Property tests: the thread-rank collectives must agree with a
//! sequential reference for arbitrary group sizes, payload lengths and
//! contents.

use kfac_collectives::{Communicator, FusionBuffer, ReduceOp, ThreadComm, TrafficClass};
use proptest::prelude::*;
use std::thread;

fn run_group<R: Send>(size: usize, f: impl Fn(usize, &ThreadComm) -> R + Sync) -> Vec<R> {
    let comms = ThreadComm::create(size);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .enumerate()
            .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// allreduce(Sum) equals the element-wise sequential sum, for every
    /// rank, for arbitrary group sizes and payloads.
    #[test]
    fn allreduce_sum_matches_reference(
        size in 1usize..9,
        len in 1usize..64,
        seed in any::<u32>(),
    ) {
        // Deterministic per-rank payloads derived from the seed.
        let payload = |rank: usize| -> Vec<f32> {
            (0..len)
                .map(|i| ((seed as usize + rank * 31 + i * 7) % 100) as f32 - 50.0)
                .collect()
        };
        let mut expect = vec![0.0f32; len];
        for r in 0..size {
            for (e, v) in expect.iter_mut().zip(payload(r)) {
                *e += v;
            }
        }
        let results = run_group(size, |rank, comm| {
            let mut buf = payload(rank);
            comm.allreduce(&mut buf, ReduceOp::Sum);
            buf
        });
        for r in results {
            prop_assert_eq!(&r, &expect);
        }
    }

    /// Average = Sum / size, element-wise.
    #[test]
    fn allreduce_average_matches_sum(
        size in 1usize..7,
        len in 1usize..32,
    ) {
        let results = run_group(size, |rank, comm| {
            let mut s = vec![(rank + 1) as f32; len];
            let mut a = s.clone();
            comm.allreduce(&mut s, ReduceOp::Sum);
            comm.allreduce(&mut a, ReduceOp::Average);
            (s, a)
        });
        for (s, a) in results {
            for (sv, av) in s.iter().zip(&a) {
                prop_assert!((av - sv / size as f32).abs() < 1e-5);
            }
        }
    }

    /// allgather returns every rank's exact payload in rank order, even
    /// with heterogeneous lengths.
    #[test]
    fn allgather_preserves_payloads(
        size in 1usize..7,
        base_len in 0usize..16,
    ) {
        let results = run_group(size, |rank, comm| {
            let payload: Vec<f32> =
                (0..base_len + rank).map(|i| (rank * 1000 + i) as f32).collect();
            comm.allgather(&payload)
        });
        for gathered in results {
            prop_assert_eq!(gathered.len(), size);
            for (rank, g) in gathered.iter().enumerate() {
                prop_assert_eq!(g.len(), base_len + rank);
                for (i, &v) in g.iter().enumerate() {
                    prop_assert_eq!(v, (rank * 1000 + i) as f32);
                }
            }
        }
    }

    /// Fusion pack/unpack round-trip: queue tensors of uneven sizes so
    /// several auto-flushes fire mid-stream, then flush the tail; every
    /// id must come back with its exact reduced payload, in push order,
    /// on 1-, 2- and 4-rank groups.
    #[test]
    fn fusion_returns_exact_reduced_payloads_across_auto_flushes(
        size_pick in 0usize..3,
        n_tensors in 1usize..24,
        threshold_f32s in 1usize..12,
        seed in any::<u32>(),
    ) {
        let size = [1, 2, 4][size_pick];
        // Uneven lengths (1..=7 floats) derived deterministically from
        // the seed; identical on every rank, as the fusion contract
        // requires, so auto-flush boundaries line up.
        let len_of = |t: usize| 1 + (seed as usize + t * 13) % 7;
        let val_of = |rank: usize, t: usize, i: usize| {
            ((seed as usize + rank * 101 + t * 17 + i * 3) % 50) as f32 - 25.0
        };
        let expect: Vec<(usize, Vec<f32>)> = (0..n_tensors)
            .map(|t| {
                let reduced = (0..len_of(t))
                    .map(|i| (0..size).map(|r| val_of(r, t, i)).sum::<f32>())
                    .collect();
                (t, reduced)
            })
            .collect();
        let results = run_group(size, |rank, comm| {
            let mut fb = FusionBuffer::new(
                threshold_f32s * std::mem::size_of::<f32>(),
                ReduceOp::Sum,
                TrafficClass::Factor,
            );
            let mut done = Vec::new();
            for t in 0..n_tensors {
                let data: Vec<f32> = (0..len_of(t)).map(|i| val_of(rank, t, i)).collect();
                fb.push(t, data, comm);
                // Interleave draining with pushing: order must still hold.
                done.extend(fb.take_completed());
            }
            fb.flush(comm);
            done.extend(fb.take_completed());
            done
        });
        for done in results {
            prop_assert_eq!(done.len(), expect.len());
            for ((id, got), (want_id, want)) in done.iter().zip(&expect) {
                prop_assert_eq!(id, want_id);
                prop_assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(want) {
                    prop_assert!((g - w).abs() < 1e-4, "id {} got {} want {}", id, g, w);
                }
            }
        }
    }

    /// broadcast delivers the root's payload to all ranks regardless of
    /// which rank is root.
    #[test]
    fn broadcast_from_any_root(
        size in 1usize..7,
        len in 1usize..32,
        root_pick in any::<u8>(),
    ) {
        let root = root_pick as usize % size;
        let results = run_group(size, |rank, comm| {
            let mut buf = if rank == root {
                (0..len).map(|i| i as f32 + 0.5).collect::<Vec<_>>()
            } else {
                vec![-1.0; len]
            };
            comm.broadcast(&mut buf, root);
            buf
        });
        for r in results {
            for (i, &v) in r.iter().enumerate() {
                prop_assert_eq!(v, i as f32 + 0.5);
            }
        }
    }
}

#[test]
fn allreduce_is_rank_order_deterministic() {
    // f32 reduction order is fixed (rank 0, 1, …) regardless of arrival
    // order, so repeated runs produce bit-identical results even with
    // adversarial thread timing.
    let run = || -> Vec<f32> {
        let comms = kfac_collectives::ThreadComm::create(4);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .iter()
                .enumerate()
                .map(|(rank, comm)| {
                    s.spawn(move || {
                        // Stagger arrivals differently per rank.
                        std::thread::sleep(std::time::Duration::from_micros(
                            ((rank * 7919) % 41) as u64,
                        ));
                        let mut buf: Vec<f32> = (0..64)
                            .map(|i| 0.1 + rank as f32 * 1e-7 + i as f32 * 1e-3)
                            .collect();
                        comm.allreduce(&mut buf, ReduceOp::Average);
                        buf
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .next()
                .unwrap()
        })
    };
    let a = run();
    for _ in 0..5 {
        assert_eq!(a, run(), "allreduce must be bit-deterministic");
    }
}
