//! Property tests for the collective algorithm layer.
//!
//! The contract under test (the repo's determinism invariant): pipelined
//! ring, halving/doubling, and the legacy flat reduction produce
//! **bitwise-identical** allreduce results — across rank counts
//! {1,2,3,4,8}, message sizes that straddle the pipeline chunk boundary,
//! and on both backends (thread mailbox mesh and multi-process TCP).
//! The reference is `ThreadComm`'s rendezvous reduction, the canonical
//! left-associated rank-order combine.

use kfac_collectives::algo::{AlgoComm, AlgoPolicy, CollectiveAlgo};
use kfac_collectives::proc::{ProcComm, ProcConfig};
use kfac_collectives::{Communicator, ReduceOp, ThreadComm};
use proptest::prelude::*;
use std::thread;

/// Non-trivially distributed payload: magnitudes vary enough that the
/// f32 sum depends on association order, so any algorithm that deviates
/// from rank-order reduction flips result bits.
fn payload(seed: u32, rank: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (seed as u64)
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add((rank * 131 + i * 7) as u64);
            let v = ((x >> 16) % 2_000_003) as f32 / 1_000.0 - 1_000.0;
            v * (10f32).powi(((x >> 40) % 7) as i32 - 3)
        })
        .collect()
}

fn run_thread_group<R: Send>(size: usize, f: impl Fn(usize, &ThreadComm) -> R + Sync) -> Vec<R> {
    let comms = ThreadComm::create(size);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .enumerate()
            .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Rendezvous-reduction reference bits from the legacy ThreadComm path.
fn reference_bits(size: usize, len: usize, seed: u32, op: ReduceOp) -> Vec<Vec<u32>> {
    run_thread_group(size, |rank, comm| {
        let mut buf = payload(seed, rank, len);
        comm.allreduce(&mut buf, op);
        buf.iter().map(|v| v.to_bits()).collect()
    })
}

/// Allreduce bits via the algorithm layer on the thread mailbox mesh.
fn thread_algo_bits(
    size: usize,
    len: usize,
    seed: u32,
    op: ReduceOp,
    policy: AlgoPolicy,
) -> Vec<Vec<u32>> {
    let comms: Vec<_> = ThreadComm::create(size)
        .into_iter()
        .map(|t| AlgoComm::new(t, policy))
        .collect();
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    let mut buf = payload(seed, comm.rank(), len);
                    comm.allreduce(&mut buf, op);
                    buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Allreduce bits via the algorithm layer on the TCP proc backend.
fn proc_algo_bits(
    size: usize,
    len: usize,
    seed: u32,
    op: ReduceOp,
    policy: AlgoPolicy,
) -> Vec<Vec<u32>> {
    let comms = ProcComm::create_local_with(size, policy, ProcConfig::DEFAULT_TIMEOUT)
        .expect("local proc rendezvous");
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| {
                s.spawn(move || {
                    let mut buf = payload(seed, comm.rank(), len);
                    comm.allreduce(&mut buf, op);
                    buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

const ALGOS: [CollectiveAlgo; 3] = [
    CollectiveAlgo::Flat,
    CollectiveAlgo::PipelinedRing,
    CollectiveAlgo::HalvingDoubling,
];

/// The satellite's required rank counts.
const SIZES: [usize; 5] = [1, 2, 3, 4, 8];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All three algorithms on the thread backend are bitwise identical
    /// to the legacy rendezvous reduction, with message lengths chosen
    /// to straddle the pipeline chunk boundary (chunk = 16 elements,
    /// lengths 1..64 cover sub-chunk, exact-chunk and multi-chunk).
    #[test]
    fn thread_backend_algos_bitwise_match_flat(
        size_idx in 0usize..SIZES.len(),
        len in 1usize..64,
        seed in any::<u32>(),
        op_avg in any::<bool>(),
    ) {
        let size = SIZES[size_idx];
        let op = if op_avg { ReduceOp::Average } else { ReduceOp::Sum };
        let reference = reference_bits(size, len, seed, op);
        for algo in ALGOS {
            let policy = AlgoPolicy { algo, chunk_elems: 16, ..AlgoPolicy::default() };
            let got = thread_algo_bits(size, len, seed, op, policy);
            prop_assert_eq!(
                &got, &reference,
                "thread backend, algo {}, size {}, len {}", algo.name(), size, len
            );
        }
    }

    /// Auto-selection must never change the bits: whatever the policy
    /// picks per size, the result equals the reference reduction. Runs
    /// lengths around the halving/doubling byte threshold.
    #[test]
    fn auto_selection_preserves_bits(
        size_idx in 0usize..SIZES.len(),
        len in 1usize..96,
        seed in any::<u32>(),
    ) {
        let size = SIZES[size_idx];
        let reference = reference_bits(size, len, seed, ReduceOp::Average);
        // Tiny hd_max_bytes puts the generated lengths on both sides of
        // the auto crossover.
        let policy = AlgoPolicy {
            algo: CollectiveAlgo::Auto,
            chunk_elems: 16,
            hd_max_bytes: 128,
        };
        let got = thread_algo_bits(size, len, seed, ReduceOp::Average, policy);
        prop_assert_eq!(&got, &reference, "auto, size {}, len {}", size, len);
    }
}

proptest! {
    // The proc backend spins up real TCP meshes per case; fewer cases,
    // same coverage axes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All three algorithms on the TCP proc backend are bitwise
    /// identical to the ThreadComm reference.
    #[test]
    fn proc_backend_algos_bitwise_match_flat(
        size_idx in 0usize..SIZES.len(),
        len in 1usize..64,
        seed in any::<u32>(),
        op_avg in any::<bool>(),
    ) {
        let size = SIZES[size_idx];
        let op = if op_avg { ReduceOp::Average } else { ReduceOp::Sum };
        let reference = reference_bits(size, len, seed, op);
        for algo in ALGOS {
            let policy = AlgoPolicy { algo, chunk_elems: 16, ..AlgoPolicy::default() };
            let got = proc_algo_bits(size, len, seed, op, policy);
            prop_assert_eq!(
                &got, &reference,
                "proc backend, algo {}, size {}, len {}", algo.name(), size, len
            );
        }
    }
}

/// Deterministic (non-proptest) pin of the exact chunk-boundary cases on
/// both backends: len = chunk−1, chunk, chunk+1, 2·chunk, 2·chunk+3.
#[test]
fn chunk_boundary_lengths_bitwise_match_on_both_backends() {
    let chunk = 16usize;
    for size in [2usize, 3, 8] {
        for len in [chunk - 1, chunk, chunk + 1, 2 * chunk, 2 * chunk + 3] {
            let reference = reference_bits(size, len, 0xC0FFEE, ReduceOp::Average);
            for algo in ALGOS {
                let policy = AlgoPolicy {
                    algo,
                    chunk_elems: chunk,
                    ..AlgoPolicy::default()
                };
                let t = thread_algo_bits(size, len, 0xC0FFEE, ReduceOp::Average, policy);
                assert_eq!(t, reference, "thread {} size {size} len {len}", algo.name());
                let p = proc_algo_bits(size, len, 0xC0FFEE, ReduceOp::Average, policy);
                assert_eq!(p, reference, "proc {} size {size} len {len}", algo.name());
            }
        }
    }
}
