//! Property tests for the fault-injection layer: schedules must be
//! byte-identical given a seed, and transient-fault retry must converge
//! to the fault-free allreduce result bitwise.

use kfac_collectives::{
    CollectiveError, Communicator, FaultPlan, FaultPlanConfig, FaultyCommunicator, ReduceOp,
    RetryPolicy, ThreadComm, TrafficClass,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn chaos_config(seed: u64) -> FaultPlanConfig {
    FaultPlanConfig {
        seed,
        delay_prob: 0.02,
        delay_micros: 50,
        transient_prob: 0.15,
        transient_ops: 2,
        timeout_prob: 0.01,
        timeout_ops: 8,
        corrupt_prob: 0.05,
        bitflip_prob: 0.02,
        rank_loss_at: Some((10_000, 0)),
        ..FaultPlanConfig::default()
    }
}

fn run_group<R: Send>(size: usize, f: impl Fn(usize, ThreadComm) -> R + Sync) -> Vec<R> {
    let comms = ThreadComm::create(size);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .enumerate()
            .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any seed yields byte-identical fault schedules across two
    /// independently built plans, for every targeted class.
    #[test]
    fn any_seed_yields_identical_schedules(
        seed in any::<u64>(),
        world in 1usize..9,
    ) {
        let a = FaultPlan::new(chaos_config(seed), world);
        let b = FaultPlan::new(chaos_config(seed), world);
        for class in [TrafficClass::Gradient, TrafficClass::Factor, TrafficClass::Eigen] {
            prop_assert_eq!(
                a.schedule_bytes(400, class),
                b.schedule_bytes(400, class),
                "schedule differs for {:?} at seed {}", class, seed
            );
        }
    }

    /// Transient-fault retry converges to the fault-free allreduce
    /// result — bitwise — on 1, 2 and 4 ranks.
    #[test]
    fn transient_retry_converges_to_fault_free(
        seed in any::<u64>(),
        len in 1usize..32,
        rounds in 1usize..6,
    ) {
        let payload = |rank: usize, round: usize| -> Vec<f32> {
            (0..len)
                .map(|i| {
                    let x = (seed as usize)
                        .wrapping_add(rank * 131)
                        .wrapping_add(round * 17)
                        .wrapping_add(i * 7);
                    ((x % 2000) as f32 - 1000.0) * 0.125
                })
                .collect()
        };
        // Only transient faults, window strictly below the retry budget:
        // every collective must eventually succeed, with the same bits
        // the fault-free run produces.
        let cfg = FaultPlanConfig {
            seed,
            transient_prob: 0.3,
            transient_ops: 3,
            ..FaultPlanConfig::default()
        };
        let policy = RetryPolicy {
            max_attempts: 16,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        };
        for world in [1usize, 2, 4] {
            // Fault-free reference.
            let clean = run_group(world, |rank, comm| {
                (0..rounds)
                    .map(|round| {
                        let mut buf = payload(rank, round);
                        comm.allreduce_tagged(&mut buf, ReduceOp::Average, TrafficClass::Gradient);
                        buf
                    })
                    .collect::<Vec<_>>()
            });
            // Faulty run with retry.
            let plan = Arc::new(FaultPlan::new(cfg.clone(), world));
            let faulty = run_group(world, |rank, comm| {
                let fc = FaultyCommunicator::new(comm, Arc::clone(&plan));
                (0..rounds)
                    .map(|round| {
                        let mut buf = payload(rank, round);
                        policy
                            .run(|| {
                                fc.try_allreduce_tagged(
                                    &mut buf,
                                    ReduceOp::Average,
                                    TrafficClass::Gradient,
                                )
                            })
                            .expect("transient faults must heal under retry");
                        buf
                    })
                    .collect::<Vec<_>>()
            });
            for (c, f) in clean.iter().zip(faulty.iter()) {
                for (cr, fr) in c.iter().zip(f.iter()) {
                    for (a, b) in cr.iter().zip(fr.iter()) {
                        prop_assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "world {}: retried result diverged from fault-free", world
                        );
                    }
                }
            }
        }
    }
}

/// Ranks consulting the same plan see the same error for the same
/// logical op, so group-wide degradation decisions stay in lockstep.
#[test]
fn errors_are_identical_across_ranks() {
    let plan = Arc::new(FaultPlan::new(
        FaultPlanConfig {
            seed: 42,
            rank_loss_at: Some((3, 1)),
            transient_prob: 0.5,
            transient_ops: 1,
            ..FaultPlanConfig::default()
        },
        4,
    ));
    let outcomes = run_group(4, |rank, comm| {
        let fc = FaultyCommunicator::new(comm, Arc::clone(&plan));
        (0..6)
            .map(|_| {
                let mut buf = vec![rank as f32];
                fc.try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient)
                    .err()
            })
            .collect::<Vec<Option<CollectiveError>>>()
    });
    for w in outcomes.windows(2) {
        assert_eq!(w[0], w[1], "ranks diverged on fault outcomes");
    }
    // And the rank-loss indexes are terminal.
    assert_eq!(outcomes[0][5], Some(CollectiveError::RankFailed(1)));
}
