//! Integration tests for the multi-process TCP backend.
//!
//! `ProcComm::create_local` drives the full proc stack — broker
//! rendezvous, pairwise TCP mesh, wire framing, reader threads, the
//! algorithm layer — from threads of one process, so these tests exercise
//! every byte of the wire path without spawning executables (the true
//! multi-process path is covered by `kfac-harness/tests/proc_train.rs`).

use kfac_collectives::algo::{AlgoPolicy, CollectiveAlgo};
use kfac_collectives::proc::{ProcComm, ProcConfig};
use kfac_collectives::{
    CollectiveError, Communicator, FaultPlan, FaultPlanConfig, FaultyCommunicator, ReduceOp,
    RetryPolicy, ThreadComm, TrafficClass,
};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Run `f(rank, comm)` on every rank of a fresh proc group.
fn run_proc_group<R: Send>(
    size: usize,
    policy: AlgoPolicy,
    f: impl Fn(usize, &ProcComm) -> R + Sync,
) -> Vec<R> {
    let comms = ProcComm::create_local_with(size, policy, ProcConfig::DEFAULT_TIMEOUT)
        .expect("local proc rendezvous");
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .map(|comm| s.spawn(move || f(comm.rank(), comm)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn run_thread_group<R: Send>(size: usize, f: impl Fn(usize, &ThreadComm) -> R + Sync) -> Vec<R> {
    let comms = ThreadComm::create(size);
    let f = &f;
    thread::scope(|s| {
        let handles: Vec<_> = comms
            .iter()
            .enumerate()
            .map(|(rank, comm)| s.spawn(move || f(rank, comm)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

#[test]
fn proc_allreduce_sum_all_sizes() {
    for size in [1, 2, 3, 4] {
        let results = run_proc_group(size, AlgoPolicy::default(), |rank, comm| {
            let mut buf = vec![rank as f32, 1.0];
            comm.allreduce(&mut buf, ReduceOp::Sum);
            buf
        });
        let expect_sum: f32 = (0..size).map(|r| r as f32).sum();
        for r in &results {
            assert_eq!(r[0], expect_sum, "size {size}");
            assert_eq!(r[1], size as f32);
        }
    }
}

#[test]
fn proc_allreduce_average_and_max() {
    let results = run_proc_group(4, AlgoPolicy::default(), |rank, comm| {
        let mut avg = vec![(rank * 2) as f32];
        comm.allreduce(&mut avg, ReduceOp::Average);
        let mut mx = vec![-(rank as f32), rank as f32];
        comm.allreduce(&mut mx, ReduceOp::Max);
        (avg[0], mx)
    });
    for (avg, mx) in results {
        assert_eq!(avg, 3.0);
        assert_eq!(mx, vec![0.0, 3.0]);
    }
}

#[test]
fn proc_allgather_variable_lengths() {
    let results = run_proc_group(3, AlgoPolicy::default(), |rank, comm| {
        let payload: Vec<f32> = (0..=rank).map(|i| (rank * 10 + i) as f32).collect();
        comm.allgather(&payload)
    });
    for gathered in &results {
        assert_eq!(gathered.len(), 3);
        assert_eq!(gathered[0], vec![0.0]);
        assert_eq!(gathered[1], vec![10.0, 11.0]);
        assert_eq!(gathered[2], vec![20.0, 21.0, 22.0]);
    }
}

#[test]
fn proc_broadcast_from_each_root() {
    for root in 0..3 {
        let results = run_proc_group(3, AlgoPolicy::default(), move |rank, comm| {
            let mut buf = if rank == root {
                vec![42.0, 43.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(&mut buf, root);
            buf
        });
        for r in results {
            assert_eq!(r, vec![42.0, 43.0]);
        }
    }
}

#[test]
fn proc_barrier_orders_phases() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let before = AtomicUsize::new(0);
    run_proc_group(4, AlgoPolicy::default(), |_rank, comm| {
        before.fetch_add(1, Ordering::SeqCst);
        comm.barrier();
        assert_eq!(before.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn proc_mixed_op_sequences() {
    let results = run_proc_group(4, AlgoPolicy::default(), |rank, comm| {
        let mut acc = 0.0f32;
        for round in 0..10 {
            let mut g = vec![rank as f32 + round as f32; 8];
            comm.allreduce(&mut g, ReduceOp::Average);
            acc += g[0];
            let gathered = comm.allgather(&[rank as f32]);
            assert_eq!(gathered.len(), 4);
            let mut b = vec![if rank == round % 4 { 7.0 } else { 0.0 }];
            comm.broadcast(&mut b, round % 4);
            assert_eq!(b[0], 7.0);
            comm.barrier();
        }
        acc
    });
    let expect: f32 = (0..10).map(|round| 1.5 + round as f32).sum();
    for r in results {
        assert!((r - expect).abs() < 1e-4);
    }
}

#[test]
fn proc_traffic_is_recorded_per_class() {
    let results = run_proc_group(2, AlgoPolicy::default(), |_rank, comm| {
        let mut buf = vec![0.0f32; 100];
        comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient);
        comm.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Factor);
        let _ = comm.allgather_tagged(&buf, TrafficClass::Eigen);
        comm.traffic()
    });
    for t in results {
        assert_eq!(t.gradient_bytes, 400);
        assert_eq!(t.factor_bytes, 400);
        assert_eq!(t.eigen_bytes, 400);
        assert_eq!(t.ops, 3);
    }
}

/// The acceptance-criterion invariant at the collectives level: a proc
/// allreduce is bitwise identical to the ThreadComm rendezvous reduction,
/// for every algorithm and awkward sizes (non-power-of-two ranks, lengths
/// straddling the chunk size).
#[test]
fn proc_allreduce_bitwise_matches_threadcomm() {
    // Values whose sum depends on association order, so any deviation
    // from the canonical rank-order reduction flips bits.
    let data = |rank: usize, len: usize| -> Vec<f32> {
        (0..len)
            .map(|i| ((rank * 31 + i) as f32).sin() * 1e3 + (i as f32) * 1e-3)
            .collect()
    };
    for size in [2usize, 3, 4] {
        for len in [5usize, 16, 33, 100] {
            for op in [ReduceOp::Sum, ReduceOp::Average] {
                let reference: Vec<Vec<u32>> = run_thread_group(size, |rank, comm| {
                    let mut buf = data(rank, len);
                    comm.allreduce(&mut buf, op);
                    buf.iter().map(|v| v.to_bits()).collect()
                });
                for algo in [
                    CollectiveAlgo::Flat,
                    CollectiveAlgo::PipelinedRing,
                    CollectiveAlgo::HalvingDoubling,
                ] {
                    let policy = AlgoPolicy {
                        algo,
                        chunk_elems: 16, // force multi-chunk pipelines at len 33+
                        ..AlgoPolicy::default()
                    };
                    let got: Vec<Vec<u32>> = run_proc_group(size, policy, |rank, comm| {
                        let mut buf = data(rank, len);
                        comm.allreduce(&mut buf, op);
                        buf.iter().map(|v| v.to_bits()).collect()
                    });
                    assert_eq!(
                        got, reference,
                        "algo {:?} size {size} len {len} op {op:?}",
                        algo
                    );
                }
            }
        }
    }
}

#[test]
fn proc_recv_deadline_times_out_as_typed_error() {
    let comms = ProcComm::create_local_with(2, AlgoPolicy::default(), Duration::from_millis(300))
        .expect("local proc rendezvous");
    let mut it = comms.into_iter();
    let c0 = it.next().unwrap();
    let _c1 = it.next().unwrap(); // rank 1 never joins the collective
    let mut buf = vec![1.0f32; 8];
    let err = c0
        .try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Other)
        .unwrap_err();
    assert!(
        matches!(err, CollectiveError::Timeout { waited_ms } if waited_ms >= 300),
        "{err:?}"
    );
    assert!(err.is_retryable());
}

#[test]
fn proc_peer_disconnect_surfaces_rank_failed() {
    let comms = ProcComm::create_local_with(2, AlgoPolicy::default(), Duration::from_secs(5))
        .expect("local proc rendezvous");
    let mut it = comms.into_iter();
    let c0 = it.next().unwrap();
    let c1 = it.next().unwrap();
    drop(c1); // rank 1's sockets close; rank 0 must see a permanent failure
    let mut buf = vec![1.0f32; 8];
    let err = c0
        .try_allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Other)
        .unwrap_err();
    assert_eq!(err, CollectiveError::RankFailed(1));
    assert!(!err.is_retryable());
}

/// `FaultyCommunicator` + `RetryPolicy` wrap `ProcComm` exactly as they
/// wrap `ThreadComm`: injected transient faults are retried through to
/// the same reduced result. The plan is shared and every rank's wrapper
/// advances its cursor in lockstep (each retry consumes one index on
/// every rank), so the group never desynchronizes.
#[test]
fn proc_wrapped_in_faulty_communicator_retries_to_success() {
    let world = 2;
    let plan = Arc::new(FaultPlan::new(
        FaultPlanConfig {
            seed: 11,
            transient_prob: 0.2,
            transient_ops: 1,
            ..FaultPlanConfig::default()
        },
        world,
    ));
    let comms =
        ProcComm::create_local_with(world, AlgoPolicy::default(), ProcConfig::DEFAULT_TIMEOUT)
            .expect("local proc rendezvous");
    let policy = RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let results: Vec<Vec<f32>> = thread::scope(|s| {
        comms
            .into_iter()
            .map(|comm| {
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    let rank = comm.rank();
                    let faulty = FaultyCommunicator::new(comm, plan);
                    let mut sums = Vec::new();
                    for round in 0..20 {
                        let src = vec![rank as f32 + round as f32; 4];
                        let mut buf = src.clone();
                        policy
                            .run(|| {
                                buf.copy_from_slice(&src);
                                faulty.try_allreduce_tagged(
                                    &mut buf,
                                    ReduceOp::Sum,
                                    TrafficClass::Gradient,
                                )
                            })
                            .unwrap();
                        sums.push(buf[0]);
                    }
                    sums
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for sums in results {
        for (round, &v) in sums.iter().enumerate() {
            let expect: f32 = (0..world).map(|r| r as f32 + round as f32).sum();
            assert_eq!(v, expect, "round {round}");
        }
    }
}
