//! Priority-aware ready queue.
//!
//! Among simultaneously-ready tasks, higher [`TaskKind::priority`]
//! (traffic-class-derived for communication) runs first; ties break
//! toward the lower task id, which both keeps the schedule deterministic
//! for a fixed arrival order and favors earlier pipeline stages.

use crate::task::TaskId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    pri: u8,
    id: Reverse<usize>,
}

/// Max-heap of ready tasks keyed by (priority, lowest id).
#[derive(Default)]
pub struct ReadyQueue {
    heap: BinaryHeap<Key>,
}

impl ReadyQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a ready task.
    pub fn push(&mut self, id: TaskId, priority: u8) {
        self.heap.push(Key {
            pri: priority,
            id: Reverse(id.0),
        });
    }

    /// Remove and return the highest-priority (then lowest-id) task.
    pub fn pop(&mut self) -> Option<TaskId> {
        self.heap.pop().map(|k| TaskId(k.id.0))
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_by_priority_then_lowest_id() {
        let mut q = ReadyQueue::new();
        q.push(TaskId(4), 40);
        q.push(TaskId(9), 100);
        q.push(TaskId(2), 100);
        q.push(TaskId(7), 90);
        assert_eq!(q.pop(), Some(TaskId(2)));
        assert_eq!(q.pop(), Some(TaskId(9)));
        assert_eq!(q.pop(), Some(TaskId(7)));
        assert_eq!(q.pop(), Some(TaskId(4)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }
}
