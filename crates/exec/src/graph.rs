//! Dependency graph of typed tasks.
//!
//! A [`TaskGraph`] is built once per training iteration: nodes carry
//! their work as closures borrowing the iteration's state, edges point
//! at earlier nodes only (enforced at [`TaskGraph::add`] time), so the
//! graph is acyclic by construction and ascending id order is always a
//! valid serial schedule. *External* nodes carry no work: they model
//! completion events signaled from inside another task (a layer
//! finishing its slice of the backward sweep) via
//! [`ExecCtl::complete`](crate::ExecCtl::complete).

use crate::executor::ExecCtl;
use crate::task::{Lane, TaskId, TaskKind};
use kfac_collectives::CollectiveError;

/// Boxed task body: `Err` marks the node failed and poisons its
/// transitive dependents.
pub(crate) type TaskFn<'w> = Box<dyn FnOnce(&ExecCtl) -> Result<(), CollectiveError> + Send + 'w>;

pub(crate) enum Work<'w> {
    /// Run this closure on a worker. An `Err` marks the node failed and
    /// poisons its transitive dependents instead of running them.
    Run(TaskFn<'w>),
    /// No work: completes when signaled via `ExecCtl::complete` (and
    /// all dependencies, if any, are done).
    External,
}

pub(crate) struct Node<'w> {
    pub kind: TaskKind,
    pub deps: Vec<TaskId>,
    pub work: Work<'w>,
}

/// A buildable task graph; consumed by [`Executor::run`](crate::Executor::run).
#[derive(Default)]
pub struct TaskGraph<'w> {
    pub(crate) nodes: Vec<Node<'w>>,
}

impl<'w> TaskGraph<'w> {
    /// Empty graph.
    pub fn new() -> Self {
        TaskGraph { nodes: Vec::new() }
    }

    fn push(&mut self, kind: TaskKind, deps: &[TaskId], work: Work<'w>) -> TaskId {
        let id = TaskId(self.nodes.len());
        for d in deps {
            assert!(
                d.0 < id.0,
                "dependency {:?} of task {:?} must be added before it",
                d,
                id
            );
        }
        self.nodes.push(Node {
            kind,
            deps: deps.to_vec(),
            work,
        });
        id
    }

    /// Add a task executing `f` once all `deps` complete. Dependencies
    /// must already be in the graph (smaller ids), which keeps the
    /// graph acyclic without a separate validation pass.
    pub fn add(
        &mut self,
        kind: TaskKind,
        deps: &[TaskId],
        f: impl FnOnce(&ExecCtl) + Send + 'w,
    ) -> TaskId {
        self.push(
            kind,
            deps,
            Work::Run(Box::new(move |ctl| {
                f(ctl);
                Ok(())
            })),
        )
    }

    /// Add a task whose work can fail. On `Err` the node is recorded in
    /// [`ExecReport::failed`](crate::ExecReport) and every transitive
    /// dependent is *poisoned* — marked done without running — so the
    /// rest of the graph still drains and the run never hangs.
    pub fn add_fallible(
        &mut self,
        kind: TaskKind,
        deps: &[TaskId],
        f: impl FnOnce(&ExecCtl) -> Result<(), CollectiveError> + Send + 'w,
    ) -> TaskId {
        self.push(kind, deps, Work::Run(Box::new(f)))
    }

    /// Add an external completion event: the node completes once all
    /// `deps` are done AND some running task has signaled it with
    /// [`ExecCtl::complete`](crate::ExecCtl::complete).
    pub fn add_external(&mut self, kind: TaskKind, deps: &[TaskId]) -> TaskId {
        self.push(kind, deps, Work::External)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kind of a node.
    pub fn kind(&self, id: TaskId) -> TaskKind {
        self.nodes[id.0].kind
    }

    /// Ids of communication-lane tasks, ascending — the order the
    /// dedicated comm worker will execute them in.
    pub fn comm_ids(&self) -> Vec<TaskId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].kind.lane() == Lane::Comm)
            .map(TaskId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_deps_must_precede() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| {});
        let b = g.add(TaskKind::Custom("x"), &[a], |_| {});
        assert_eq!((a, b), (TaskId(0), TaskId(1)));
        assert_eq!(g.len(), 2);
        assert_eq!(g.kind(b), TaskKind::Custom("x"));
    }

    #[test]
    #[should_panic(expected = "must be added before")]
    fn forward_dependency_panics() {
        let mut g = TaskGraph::new();
        g.add(TaskKind::Forward, &[TaskId(5)], |_| {});
    }

    #[test]
    fn comm_ids_are_ascending_comm_lane_tasks() {
        let mut g = TaskGraph::new();
        g.add(TaskKind::Forward, &[], |_| {});
        g.add(TaskKind::GradAllreduce(0), &[], |_| {});
        g.add(TaskKind::Backward(0), &[], |_| {});
        g.add(TaskKind::EigenAllgather, &[], |_| {});
        assert_eq!(g.comm_ids(), vec![TaskId(1), TaskId(3)]);
    }
}
