//! Typed task nodes of the K-FAC execution graph.
//!
//! The node vocabulary mirrors Algorithm 1's stages (Pauloski et al.,
//! SC 2020) plus the per-layer/per-bucket granularity that makes
//! overlap possible: backward completion is per layer, gradient
//! traffic is per bucket, factor work is per layer, eigendecomposition
//! per factor. Each kind carries a [`Lane`] (who may execute it) and a
//! scheduling priority derived from the collectives' traffic classes so
//! the ready queue agrees with the network's notion of urgency.

use kfac_collectives::TrafficClass;

/// Identifies one node of a [`TaskGraph`](crate::TaskGraph). Ids are
/// dense, 0-based, and topologically consistent: every dependency has a
/// smaller id than its dependent (enforced at graph build time), so
/// ascending id order is always a valid serial schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

/// Which worker pool may execute a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// Compute workers: math, packing, weight updates.
    Compute,
    /// The dedicated communication worker. Comm tasks execute in
    /// ascending id order, which keeps every rank's collective sequence
    /// identical (the MPI/Horovod ordering contract).
    Comm,
}

/// What a task node does, at the granularity the scheduler cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Whole-model forward pass.
    Forward,
    /// Backward completion of one top-level layer (usually an external
    /// event signaled from inside the backward sweep).
    Backward(usize),
    /// Fold one layer's fresh Kronecker factors into its running averages.
    FactorUpdate(usize),
    /// Allreduce of one gradient bucket.
    GradAllreduce(usize),
    /// Allreduce of one factor fusion bucket.
    FactorAllreduce(usize),
    /// Eigendecomposition of one assigned factor.
    Eigendecomp(usize),
    /// Allgather of locally computed eigendecompositions.
    EigenAllgather,
    /// Precondition one layer's gradient with its eigenbasis.
    Precondition(usize),
    /// Apply the optimizer update to the full parameter vector.
    OptimStep,
    /// Anything else (graph glue: pack/unpack, writeback, clipping).
    Custom(&'static str),
}

impl TaskKind {
    /// The worker pool this task runs on.
    pub fn lane(self) -> Lane {
        match self {
            TaskKind::GradAllreduce(_)
            | TaskKind::FactorAllreduce(_)
            | TaskKind::EigenAllgather => Lane::Comm,
            _ => Lane::Compute,
        }
    }

    /// Traffic class of a communication task, if it is one.
    pub fn traffic_class(self) -> Option<TrafficClass> {
        match self {
            TaskKind::GradAllreduce(_) => Some(TrafficClass::Gradient),
            TaskKind::FactorAllreduce(_) => Some(TrafficClass::Factor),
            TaskKind::EigenAllgather => Some(TrafficClass::Eigen),
            _ => None,
        }
    }

    /// Scheduling priority; higher runs first among ready tasks.
    /// Communication tasks inherit [`TrafficClass::priority`]; compute
    /// tasks are ordered so the per-iteration critical path (backward →
    /// precondition → optimizer step) preempts deferrable factor work.
    pub fn priority(self) -> u8 {
        if let Some(class) = self.traffic_class() {
            return class.priority();
        }
        match self {
            TaskKind::OptimStep => 95,
            TaskKind::Backward(_) => 90,
            TaskKind::Precondition(_) => 80,
            TaskKind::Forward => 70,
            TaskKind::Eigendecomp(_) => 60,
            TaskKind::Custom(_) => 50,
            TaskKind::FactorUpdate(_) => 45,
            _ => 50,
        }
    }

    /// Stable label for telemetry attributes and diagnostics.
    pub fn label(self) -> String {
        match self {
            TaskKind::Forward => "forward".to_string(),
            TaskKind::Backward(i) => format!("backward[{i}]"),
            TaskKind::FactorUpdate(i) => format!("factor_update[{i}]"),
            TaskKind::GradAllreduce(i) => format!("grad_allreduce[{i}]"),
            TaskKind::FactorAllreduce(i) => format!("factor_allreduce[{i}]"),
            TaskKind::Eigendecomp(i) => format!("eigendecomp[{i}]"),
            TaskKind::EigenAllgather => "eigen_allgather".to_string(),
            TaskKind::Precondition(i) => format!("precondition[{i}]"),
            TaskKind::OptimStep => "optim_step".to_string(),
            TaskKind::Custom(name) => name.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_kinds_ride_the_comm_lane_with_traffic_priorities() {
        assert_eq!(TaskKind::GradAllreduce(0).lane(), Lane::Comm);
        assert_eq!(TaskKind::FactorAllreduce(1).lane(), Lane::Comm);
        assert_eq!(TaskKind::EigenAllgather.lane(), Lane::Comm);
        assert_eq!(TaskKind::Backward(0).lane(), Lane::Compute);
        assert_eq!(
            TaskKind::GradAllreduce(0).priority(),
            TrafficClass::Gradient.priority()
        );
        assert!(TaskKind::GradAllreduce(0).priority() > TaskKind::FactorAllreduce(0).priority());
        assert!(TaskKind::Backward(0).priority() > TaskKind::FactorUpdate(0).priority());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TaskKind::Backward(3).label(), "backward[3]");
        assert_eq!(TaskKind::Custom("grad_writeback").label(), "grad_writeback");
    }
}
