//! Graph execution: overlapped worker pool and seeded serial replay.
//!
//! [`Executor::run`] consumes a [`TaskGraph`] and executes every node
//! exactly once, respecting dependency edges. Two modes:
//!
//! * [`ExecMode::Overlapped`] — a pool of compute workers (the calling
//!   thread is worker 0, so its spans stay on the rank's main timeline
//!   lane) plus **one dedicated communication worker**. Comm-lane tasks
//!   execute in ascending graph-id order on that worker; since every
//!   rank builds the identical graph, all ranks issue the identical
//!   collective sequence — the MPI/Horovod ordering contract — while
//!   compute tasks overlap freely around them.
//! * [`ExecMode::Replay`] — single-threaded: tasks run on the calling
//!   thread in a seeded pseudo-random topological order (comm tasks
//!   still in id order among themselves). Any seed yields a valid
//!   serial schedule; running the same graph under different seeds and
//!   comparing results bit-for-bit is how tests prove the graph's
//!   numerics are order-independent — which is exactly the argument
//!   that the overlapped schedule matches the sequential oracle.
//!
//! Telemetry: each executed task records an `exec/run` span on its
//! worker's lane (`comm`, `w1`… via [`Registry::install_lane`]) and an
//! `exec/ready` marker whose `wait_us` attribute is the time the task
//! sat ready before a worker picked it up.

use crate::graph::{TaskGraph, Work};
use crate::queue::ReadyQueue;
use crate::task::{Lane, TaskId, TaskKind};
use kfac_collectives::CollectiveError;
use kfac_telemetry::{Registry, Span, SpanEvent};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// How to execute the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Single-threaded deterministic replay: the seed picks among ready
    /// tasks, so different seeds exercise different (valid) topological
    /// orders. All ranks of a group must use the same seed.
    Replay {
        /// Selection seed; same seed + same graph = same order.
        seed: u64,
    },
    /// Worker pool: `compute_workers` compute threads (≥1; the caller
    /// is one of them) plus one dedicated communication worker.
    Overlapped {
        /// Number of compute workers, clamped to 1..=8.
        compute_workers: usize,
    },
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// No runnable task but the graph is incomplete — an external node
    /// was never signaled, or a dependency cycle slipped through.
    Stalled {
        /// Tasks that did complete.
        completed: usize,
        /// Tasks left unexecuted.
        remaining: usize,
    },
    /// [`ExecCtl::complete`] was called on a non-external task.
    NotExternal(TaskId),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Stalled {
                completed,
                remaining,
            } => write!(
                f,
                "graph stalled: {completed} tasks completed, {remaining} unrunnable \
                 (unsignaled external or cycle)"
            ),
            ExecError::NotExternal(id) => {
                write!(f, "complete() called on non-external task {id:?}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Summary of a completed run.
///
/// A run *completes* (returns `Ok`) even when individual nodes fail:
/// failed nodes are recorded here and their transitive dependents are
/// poisoned (skipped), but the rest of the graph drains normally.
/// `executed + failed.len() + poisoned` always equals the graph size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecReport {
    /// Tasks that ran to successful completion.
    pub executed: usize,
    /// Tasks whose work returned a collective error (or externals
    /// failed via [`ExecCtl::fail`]), with the error each surfaced.
    pub failed: Vec<(TaskId, CollectiveError)>,
    /// Tasks skipped because a transitive dependency failed.
    pub poisoned: usize,
}

/// Lane names for spawned compute workers (worker 0 is the caller and
/// keeps its own telemetry identity).
const WORKER_LANES: [&str; 8] = ["w0", "w1", "w2", "w3", "w4", "w5", "w6", "w7"];

struct State {
    kinds: Vec<TaskKind>,
    external: Vec<bool>,
    indeg: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    deps_done: Vec<bool>,
    signaled: Vec<bool>,
    completed: Vec<bool>,
    ready_compute: ReadyQueue,
    /// Comm-lane task ids, ascending; `next_comm` indexes the next one
    /// the comm worker may execute.
    comm_order: Vec<usize>,
    next_comm: usize,
    ready_at: Vec<Option<Instant>>,
    remaining: usize,
    active: usize,
    stalled: bool,
    failed: Vec<(usize, CollectiveError)>,
    poisoned: usize,
}

impl State {
    /// Whether the comm worker has a runnable task at its cursor.
    /// Poisoned (completed-without-running) comm tasks are skipped, so
    /// a failure upstream of one comm op can never wedge the cursor and
    /// starve later, independent comm ops.
    fn comm_has_ready(&mut self) -> bool {
        while self.next_comm < self.comm_order.len()
            && self.completed[self.comm_order[self.next_comm]]
        {
            self.next_comm += 1;
        }
        self.next_comm < self.comm_order.len() && self.deps_done[self.comm_order[self.next_comm]]
    }

    /// Dependencies of `id` are all complete: queue it, or — for an
    /// already-signaled external — push it onto the completion stack.
    fn now_ready(&mut self, id: usize, stack: &mut Vec<usize>) {
        if self.completed[id] {
            // Poisoned earlier by a failed sibling dependency; its last
            // live dependency completing must not resurrect it.
            return;
        }
        self.deps_done[id] = true;
        if self.external[id] {
            if self.signaled[id] {
                stack.push(id);
            }
        } else {
            self.ready_at[id] = Some(Instant::now());
            if self.kinds[id].lane() == Lane::Compute {
                self.ready_compute
                    .push(TaskId(id), self.kinds[id].priority());
            }
            // Comm tasks need no queue entry: `deps_done` plus the fixed
            // `comm_order` cursor is the whole comm schedule.
        }
    }

    /// Mark `id` complete and cascade through its dependents (and any
    /// signaled externals that become unblocked).
    fn complete(&mut self, id: usize) {
        let mut stack = vec![id];
        while let Some(t) = stack.pop() {
            if self.completed[t] {
                continue;
            }
            self.completed[t] = true;
            self.remaining -= 1;
            for i in 0..self.dependents[t].len() {
                let d = self.dependents[t][i];
                self.indeg[d] -= 1;
                if self.indeg[d] == 0 {
                    self.now_ready(d, &mut stack);
                }
            }
        }
    }

    fn signal(&mut self, id: usize) {
        if self.signaled[id] {
            return;
        }
        self.signaled[id] = true;
        if self.deps_done[id] && !self.completed[id] {
            self.complete(id);
        }
    }

    /// Record `id` as failed and poison its transitive dependents:
    /// every one is marked done *without running*, so the graph drains
    /// instead of deadlocking on completions that will never come.
    /// Unrelated branches are untouched and still execute.
    fn fail(&mut self, id: usize, err: CollectiveError) {
        if self.completed[id] {
            return;
        }
        self.failed.push((id, err));
        self.completed[id] = true;
        self.remaining -= 1;
        let mut stack: Vec<usize> = self.dependents[id].clone();
        while let Some(d) = stack.pop() {
            if self.completed[d] {
                continue;
            }
            self.completed[d] = true;
            self.remaining -= 1;
            self.poisoned += 1;
            stack.extend(self.dependents[d].iter().copied());
        }
    }
}

struct Inner {
    state: Mutex<State>,
    cv: Condvar,
    raw_seq: AtomicU64,
}

/// Handle passed to every running task; lets work signal external
/// completion events (e.g. per-layer backward completion from inside
/// the backward sweep) into the scheduler mid-task.
pub struct ExecCtl<'a> {
    inner: &'a Inner,
}

impl ExecCtl<'_> {
    /// Signal external task `id` as complete. It finishes once its
    /// dependencies (if any) are also done; signaling twice is a no-op.
    /// Errors if `id` is not an external node.
    pub fn complete(&self, id: TaskId) -> Result<(), ExecError> {
        let mut st = self.inner.state.lock();
        if !st.external[id.0] {
            return Err(ExecError::NotExternal(id));
        }
        st.signal(id.0);
        drop(st);
        self.inner.cv.notify_all();
        Ok(())
    }

    /// Signal external task `id` as *failed* — the collective backing
    /// it errored out. The node is recorded in
    /// [`ExecReport::failed`] and its transitive dependents are
    /// poisoned, so the rest of the graph drains without hanging on a
    /// completion that will never arrive. Errors if `id` is not an
    /// external node; failing an already-completed node is a no-op.
    pub fn fail(&self, id: TaskId, err: CollectiveError) -> Result<(), ExecError> {
        let mut st = self.inner.state.lock();
        if !st.external[id.0] {
            return Err(ExecError::NotExternal(id));
        }
        st.fail(id.0, err);
        drop(st);
        self.inner.cv.notify_all();
        Ok(())
    }
}

fn record_ready(
    inner: &Inner,
    telem: &Option<(Registry, usize)>,
    lane: Option<&'static str>,
    kind: TaskKind,
    ready_since: Option<Instant>,
) {
    let (Some((reg, rank)), Some(t0)) = (telem.as_ref(), ready_since) else {
        return;
    };
    let now = reg.micros_at(Instant::now());
    let start = reg.micros_at(t0);
    reg.record_raw(SpanEvent {
        name: "exec/ready",
        rank: *rank,
        lane,
        depth: 0,
        seq: inner.raw_seq.fetch_add(1, Ordering::Relaxed),
        start_us: now,
        dur_us: 0,
        attrs: vec![
            ("task", kind.label().into()),
            ("wait_us", now.saturating_sub(start).into()),
        ],
    });
}

/// Drop guard arming worker shutdown on *any* panic that escapes
/// [`execute_picked`] — including panics outside the `catch_unwind`
/// around the task body (e.g. the work-cell `expect` below). Without
/// it, an unwinding worker would leave its siblings parked on the
/// condvar forever, waiting for a completion that will never come.
struct StallGuard<'a> {
    inner: &'a Inner,
}

impl Drop for StallGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.inner.state.lock().stalled = true;
            self.inner.cv.notify_all();
        }
    }
}

/// Run one picked task outside the lock, then complete (or fail) it.
fn execute_picked(
    inner: &Inner,
    works: &Mutex<Vec<Option<Work<'_>>>>,
    telem: &Option<(Registry, usize)>,
    lane: Option<&'static str>,
    id: usize,
    kind: TaskKind,
    ready_since: Option<Instant>,
) {
    let _stall = StallGuard { inner };
    record_ready(inner, telem, lane, kind, ready_since);
    let work = works.lock()[id].take().expect("task work taken twice");
    let Work::Run(f) = work else {
        unreachable!("external tasks are completed, never scheduled");
    };
    let ctl = ExecCtl { inner };
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _span = Span::enter("exec/run")
            .with("task", kind.label())
            .with("id", id);
        f(&ctl)
    }));
    let mut st = inner.state.lock();
    st.active -= 1;
    match result {
        Ok(Ok(())) => st.complete(id),
        Ok(Err(e)) => st.fail(id, e),
        // `StallGuard` marks the run stalled and wakes every worker as
        // the unwind passes through; `st` unlocks first (it was
        // declared later, so it drops earlier).
        Err(payload) => resume_unwind(payload),
    }
    drop(st);
    inner.cv.notify_all();
}

/// Compute-worker loop; `lane` is `None` for the calling thread (its
/// spans stay on the rank's main timeline).
fn compute_worker(
    inner: &Inner,
    works: &Mutex<Vec<Option<Work<'_>>>>,
    telem: &Option<(Registry, usize)>,
    lane: Option<&'static str>,
) {
    let _guard = match (telem, lane) {
        (Some((reg, rank)), Some(l)) => Some(reg.install_lane(*rank, l)),
        _ => None,
    };
    loop {
        let picked = {
            let mut st = inner.state.lock();
            loop {
                if st.remaining == 0 || st.stalled {
                    break None;
                }
                if let Some(tid) = st.ready_compute.pop() {
                    st.active += 1;
                    break Some((tid.0, st.kinds[tid.0], st.ready_at[tid.0]));
                }
                if st.active == 0 && !st.comm_has_ready() {
                    st.stalled = true;
                    break None;
                }
                inner.cv.wait(&mut st);
            }
        };
        let Some((id, kind, ready_since)) = picked else {
            inner.cv.notify_all();
            return;
        };
        execute_picked(inner, works, telem, lane, id, kind, ready_since);
    }
}

/// The dedicated communication worker: executes comm-lane tasks in
/// ascending id order, one at a time, as they become ready.
fn comm_worker(
    inner: &Inner,
    works: &Mutex<Vec<Option<Work<'_>>>>,
    telem: &Option<(Registry, usize)>,
) {
    let _guard = telem
        .as_ref()
        .map(|(reg, rank)| reg.install_lane(*rank, "comm"));
    loop {
        let picked = {
            let mut st = inner.state.lock();
            loop {
                if st.remaining == 0 || st.stalled {
                    break None;
                }
                if st.comm_has_ready() {
                    let id = st.comm_order[st.next_comm];
                    st.next_comm += 1;
                    st.active += 1;
                    break Some((id, st.kinds[id], st.ready_at[id]));
                }
                if st.active == 0 && st.ready_compute.is_empty() {
                    st.stalled = true;
                    break None;
                }
                inner.cv.wait(&mut st);
            }
        };
        let Some((id, kind, ready_since)) = picked else {
            inner.cv.notify_all();
            return;
        };
        execute_picked(inner, works, telem, Some("comm"), id, kind, ready_since);
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Seeded single-threaded replay: repeatedly pick a pseudo-random
/// eligible task (comm tasks only in id order) and run it to completion.
fn run_replay(
    inner: &Inner,
    works: &Mutex<Vec<Option<Work<'_>>>>,
    telem: &Option<(Registry, usize)>,
    seed: u64,
    n: usize,
) {
    let mut s = seed
        .wrapping_mul(2654435769)
        .wrapping_add(0x9E3779B97F4A7C15)
        | 1;
    loop {
        let picked = {
            let mut st = inner.state.lock();
            if st.remaining == 0 {
                None
            } else {
                let next_comm_id = if st.comm_has_ready() {
                    Some(st.comm_order[st.next_comm])
                } else {
                    None
                };
                let mut elig: Vec<usize> = (0..n)
                    .filter(|&i| {
                        !st.completed[i]
                            && st.deps_done[i]
                            && !st.external[i]
                            && st.kinds[i].lane() == Lane::Compute
                    })
                    .collect();
                elig.extend(next_comm_id);
                if elig.is_empty() {
                    st.stalled = true;
                    None
                } else {
                    let id = elig[(xorshift(&mut s) % elig.len() as u64) as usize];
                    if next_comm_id == Some(id) {
                        st.next_comm += 1;
                    }
                    st.active += 1;
                    Some((id, st.kinds[id], st.ready_at[id]))
                }
            }
        };
        let Some((id, kind, ready_since)) = picked else {
            return;
        };
        execute_picked(inner, works, telem, None, id, kind, ready_since);
    }
}

/// Executes [`TaskGraph`]s. Stateless; all run state lives per call.
pub struct Executor;

impl Executor {
    /// Execute every node of `graph` under `mode`. Telemetry, if the
    /// calling thread has a registry installed, is attributed to that
    /// registry and rank; worker threads join it on their own lanes.
    pub fn run(graph: TaskGraph<'_>, mode: ExecMode) -> Result<ExecReport, ExecError> {
        let n = graph.nodes.len();
        let mut kinds = Vec::with_capacity(n);
        let mut external = Vec::with_capacity(n);
        let mut indeg = vec![0usize; n];
        let mut dependents = vec![Vec::new(); n];
        let mut work_cells = Vec::with_capacity(n);
        for (i, node) in graph.nodes.into_iter().enumerate() {
            kinds.push(node.kind);
            external.push(matches!(node.work, Work::External));
            indeg[i] = node.deps.len();
            for d in &node.deps {
                dependents[d.0].push(i);
            }
            work_cells.push(match node.work {
                Work::External => None,
                w => Some(w),
            });
        }
        let comm_order: Vec<usize> = (0..n).filter(|&i| kinds[i].lane() == Lane::Comm).collect();

        let mut st = State {
            kinds,
            external,
            indeg,
            dependents,
            deps_done: vec![false; n],
            signaled: vec![false; n],
            completed: vec![false; n],
            ready_compute: ReadyQueue::new(),
            comm_order,
            next_comm: 0,
            ready_at: vec![None; n],
            remaining: n,
            active: 0,
            stalled: false,
            failed: Vec::new(),
            poisoned: 0,
        };
        // Seed the ready set with zero-dependency nodes.
        let mut stack = Vec::new();
        for id in 0..n {
            if st.indeg[id] == 0 {
                st.now_ready(id, &mut stack);
            }
        }
        // (Externals can't be signaled before the run starts, so the
        // stack stays empty here; kept for signature symmetry.)
        debug_assert!(stack.is_empty());

        let inner = Inner {
            state: Mutex::new(st),
            cv: Condvar::new(),
            raw_seq: AtomicU64::new(1 << 32),
        };
        let works = Mutex::new(work_cells);
        let telem = kfac_telemetry::current();

        match mode {
            ExecMode::Replay { seed } => run_replay(&inner, &works, &telem, seed, n),
            ExecMode::Overlapped { compute_workers } => {
                let compute_workers = compute_workers.clamp(1, WORKER_LANES.len());
                std::thread::scope(|s| {
                    for &lane in WORKER_LANES.iter().take(compute_workers).skip(1) {
                        let (inner, works, telem) = (&inner, &works, &telem);
                        s.spawn(move || compute_worker(inner, works, telem, Some(lane)));
                    }
                    {
                        let (inner, works, telem) = (&inner, &works, &telem);
                        s.spawn(move || comm_worker(inner, works, telem));
                    }
                    compute_worker(&inner, &works, &telem, None);
                });
            }
        }

        let mut st = inner.state.lock();
        if st.remaining > 0 {
            Err(ExecError::Stalled {
                completed: n - st.remaining,
                remaining: st.remaining,
            })
        } else {
            let failed: Vec<(TaskId, CollectiveError)> =
                st.failed.drain(..).map(|(id, e)| (TaskId(id), e)).collect();
            let poisoned = st.poisoned;
            Ok(ExecReport {
                executed: n - failed.len() - poisoned,
                failed,
                poisoned,
            })
        }
    }
}
