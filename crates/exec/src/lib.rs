//! # kfac-exec
//!
//! Deterministic task-graph execution engine for the distributed K-FAC
//! pipeline (Pauloski et al., SC 2020 §V).
//!
//! The paper's K-FAC-opt hides factor communication behind backprop;
//! follow-ups (Shi et al., arXiv:2107.06533; Zhang et al.,
//! arXiv:2206.15143) show the general form: express the iteration as a
//! dependency graph of typed tasks and let a scheduler overlap
//! communication with computation instead of running barrier-separated
//! phases. This crate is that scheduler:
//!
//! * [`TaskKind`] — typed nodes at pipeline granularity: per-layer
//!   backward completion, per-bucket gradient allreduce, per-layer
//!   factor updates and preconditioning, per-factor eigendecomposition.
//! * [`TaskGraph`] — explicit dependency edges; acyclic by construction
//!   (dependencies must precede dependents). External nodes model
//!   completion events signaled mid-task via [`ExecCtl::complete`] —
//!   how layer *i*'s gradient bucket is released while layer *i−1* is
//!   still in backward.
//! * [`Executor`] — two modes sharing one scheduler core:
//!   [`ExecMode::Overlapped`] runs compute workers alongside a
//!   dedicated communication worker (comm tasks in graph order, so all
//!   ranks' collective sequences match); [`ExecMode::Replay`] runs the
//!   same graph single-threaded in a seeded topological order, the
//!   bit-for-bit oracle the overlapped path is tested against.
//! * Priorities come from [`TrafficClass::priority`]
//!   (`kfac-collectives`), so the ready queue agrees with the network
//!   about what is urgent: gradient buckets preempt deferrable factor
//!   traffic.
//! * Failure containment — fallible nodes
//!   ([`TaskGraph::add_fallible`], [`ExecCtl::fail`]) surface
//!   `CollectiveError`s as node outcomes: a failed node *poisons* its
//!   transitive dependents (they are skipped, never run) while
//!   unrelated branches drain normally, so a timed-out collective can
//!   degrade an iteration without deadlocking the worker pool. The
//!   outcome is reported in [`ExecReport::failed`] /
//!   [`ExecReport::poisoned`].
//!
//! ```
//! use kfac_exec::{ExecMode, Executor, TaskGraph, TaskKind};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let sum = AtomicUsize::new(0);
//! let mut g = TaskGraph::new();
//! let fwd = g.add(TaskKind::Forward, &[], |_| {
//!     sum.fetch_add(1, Ordering::Relaxed);
//! });
//! let bwd = g.add_external(TaskKind::Backward(0), &[]);
//! let sweep = g.add(TaskKind::Custom("backward_sweep"), &[fwd], |ctl| {
//!     sum.fetch_add(10, Ordering::Relaxed);
//!     ctl.complete(bwd).unwrap(); // released mid-sweep
//! });
//! g.add(TaskKind::GradAllreduce(0), &[bwd], |_| {
//!     sum.fetch_add(100, Ordering::Relaxed);
//! });
//! g.add(TaskKind::OptimStep, &[sweep], |_| {
//!     sum.fetch_add(1000, Ordering::Relaxed);
//! });
//! Executor::run(g, ExecMode::Overlapped { compute_workers: 2 }).unwrap();
//! assert_eq!(sum.load(Ordering::Relaxed), 1111);
//! ```

#![warn(missing_docs)]

mod executor;
mod graph;
mod queue;
mod task;

pub use executor::{ExecCtl, ExecError, ExecMode, ExecReport, Executor};
pub use graph::TaskGraph;
pub use queue::ReadyQueue;
pub use task::{Lane, TaskId, TaskKind};

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A diamond with an external node: record completion order and
    /// check every dependency edge was respected.
    fn diamond_order(mode: ExecMode) -> Vec<&'static str> {
        let order = Mutex::new(Vec::new());
        let push = |name: &'static str| order.lock().push(name);
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| push("a"));
        let ext = g.add_external(TaskKind::Backward(0), &[]);
        let b = g.add(TaskKind::Custom("sweep"), &[a], |ctl| {
            push("b");
            ctl.complete(ext).unwrap();
        });
        let c = g.add(TaskKind::GradAllreduce(0), &[ext], |_| push("c"));
        g.add(TaskKind::OptimStep, &[b, c], |_| push("d"));
        Executor::run(g, mode).unwrap();
        order.into_inner()
    }

    #[test]
    fn replay_respects_dependencies() {
        for seed in 0..20 {
            let order = diamond_order(ExecMode::Replay { seed });
            assert_eq!(order.len(), 4);
            let pos = |n| order.iter().position(|&x| x == n).unwrap();
            assert!(pos("a") < pos("b"));
            assert!(pos("b") < pos("c"), "comm waits for the external signal");
            assert!(pos("b") < pos("d") && pos("c") < pos("d"));
        }
    }

    #[test]
    fn overlapped_respects_dependencies() {
        for workers in 1..=4 {
            let order = diamond_order(ExecMode::Overlapped {
                compute_workers: workers,
            });
            assert_eq!(order.len(), 4);
            let pos = |n| order.iter().position(|&x| x == n).unwrap();
            assert!(pos("a") < pos("b"));
            assert!(pos("b") < pos("c"));
            assert!(pos("d") == 3);
        }
    }

    #[test]
    fn unsignaled_external_stalls_with_error() {
        let mut g = TaskGraph::new();
        let ext = g.add_external(TaskKind::Backward(0), &[]);
        g.add(TaskKind::GradAllreduce(0), &[ext], |_| {});
        g.add(TaskKind::Forward, &[], |_| {});
        let err = Executor::run(g, ExecMode::Replay { seed: 1 }).unwrap_err();
        assert_eq!(
            err,
            ExecError::Stalled {
                completed: 1,
                remaining: 2
            }
        );
    }

    #[test]
    fn complete_on_regular_task_errors() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| {});
        let captured = Mutex::new(None);
        g.add(TaskKind::Custom("bad"), &[a], |ctl| {
            *captured.lock() = Some(ctl.complete(a));
        });
        Executor::run(g, ExecMode::Replay { seed: 0 }).unwrap();
        assert_eq!(captured.into_inner(), Some(Err(ExecError::NotExternal(a))));
    }

    #[test]
    fn every_task_runs_exactly_once_under_contention() {
        let n: usize = 64;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let mut g = TaskGraph::new();
        let mut ids = Vec::new();
        for (i, c) in counts.iter().enumerate() {
            // Chain-of-3 structure: each task depends on a few earlier ones.
            let deps: Vec<TaskId> = [i.checked_sub(1), i.checked_sub(7)]
                .into_iter()
                .flatten()
                .map(|j| ids[j])
                .collect();
            let kind = if i % 5 == 0 {
                TaskKind::GradAllreduce(i)
            } else {
                TaskKind::FactorUpdate(i)
            };
            ids.push(g.add(kind, &deps, move |_| {
                c.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let report = Executor::run(g, ExecMode::Overlapped { compute_workers: 4 }).unwrap();
        assert_eq!(report.executed, n);
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn telemetry_records_run_spans_on_worker_lanes() {
        let registry = kfac_telemetry::Registry::new();
        let _g = registry.install(0);
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| {});
        g.add(TaskKind::GradAllreduce(0), &[a], |_| {});
        Executor::run(g, ExecMode::Overlapped { compute_workers: 1 }).unwrap();
        kfac_telemetry::flush();
        let events = registry.events();
        let runs: Vec<_> = events.iter().filter(|e| e.name == "exec/run").collect();
        assert_eq!(runs.len(), 2);
        assert!(
            runs.iter().any(|e| e.lane == Some("comm")),
            "comm task must record on the comm lane"
        );
        let readies = events.iter().filter(|e| e.name == "exec/ready").count();
        assert_eq!(readies, 2);
    }

    /// A failed comm node must poison its transitive dependents —
    /// including a *later comm task in cursor order* — while unrelated
    /// branches still execute and the run drains without hanging.
    #[test]
    fn failed_node_poisons_dependents_but_not_siblings() {
        use kfac_collectives::CollectiveError;
        for mode in [
            ExecMode::Replay { seed: 3 },
            ExecMode::Overlapped { compute_workers: 2 },
        ] {
            let ran = Mutex::new(Vec::new());
            let mut g = TaskGraph::new();
            let a = g.add_fallible(TaskKind::GradAllreduce(0), &[], |_| {
                Err(CollectiveError::Timeout { waited_ms: 5 })
            });
            let b = g.add(TaskKind::EigenAllgather, &[a], |_| ran.lock().push("b"));
            g.add(TaskKind::OptimStep, &[b], |_| ran.lock().push("c"));
            // Independent comm task AFTER the poisoned one in cursor
            // order: the comm worker must skip past `b` to reach it.
            g.add(TaskKind::GradAllreduce(1), &[], |_| ran.lock().push("d"));
            g.add(TaskKind::Forward, &[], |_| ran.lock().push("e"));
            let report = Executor::run(g, mode).unwrap();
            assert_eq!(report.executed, 2, "{mode:?}");
            assert_eq!(report.poisoned, 2, "{mode:?}");
            assert_eq!(
                report.failed,
                vec![(a, CollectiveError::Timeout { waited_ms: 5 })]
            );
            let mut names = ran.into_inner();
            names.sort_unstable();
            assert_eq!(names, vec!["d", "e"], "{mode:?}");
        }
    }

    /// An external comm node failed via `ExecCtl::fail` mid-task
    /// poisons its dependents; the rest of the graph completes.
    #[test]
    fn external_failure_poisons_dependents_and_drains() {
        use kfac_collectives::CollectiveError;
        let ran = Mutex::new(Vec::new());
        let mut g = TaskGraph::new();
        let ext = g.add_external(TaskKind::Backward(0), &[]);
        let sweep = g.add(TaskKind::Custom("sweep"), &[], |ctl| {
            ctl.fail(ext, CollectiveError::RankFailed(2)).unwrap();
        });
        g.add(TaskKind::GradAllreduce(0), &[ext], |_| {
            ran.lock().push("dep")
        });
        g.add(TaskKind::OptimStep, &[sweep], |_| ran.lock().push("opt"));
        let report = Executor::run(g, ExecMode::Overlapped { compute_workers: 2 }).unwrap();
        assert_eq!(report.executed, 2);
        assert_eq!(report.poisoned, 1);
        assert_eq!(report.failed, vec![(ext, CollectiveError::RankFailed(2))]);
        assert_eq!(ran.into_inner(), vec!["opt"]);
    }

    #[test]
    fn fail_on_regular_task_errors() {
        use kfac_collectives::CollectiveError;
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| {});
        let captured = Mutex::new(None);
        g.add(TaskKind::Custom("bad"), &[a], |ctl| {
            *captured.lock() = Some(ctl.fail(a, CollectiveError::Corrupted));
        });
        Executor::run(g, ExecMode::Replay { seed: 0 }).unwrap();
        assert_eq!(captured.into_inner(), Some(Err(ExecError::NotExternal(a))));
    }

    /// A panicking task must terminate the whole pool (workers wake,
    /// drain, and the panic propagates) instead of leaving siblings
    /// parked on the condvar forever.
    #[test]
    #[should_panic]
    fn panicking_task_propagates_instead_of_hanging() {
        let mut g = TaskGraph::new();
        let a = g.add(TaskKind::Forward, &[], |_| panic!("task body exploded"));
        g.add(TaskKind::OptimStep, &[a], |_| {});
        g.add(TaskKind::GradAllreduce(0), &[], |_| {});
        let _ = Executor::run(g, ExecMode::Overlapped { compute_workers: 4 });
    }

    /// Seeded replays of a graph whose tasks fold into an order-dependent
    /// accumulator DIFFER across seeds; the same graph with per-task slots
    /// (order-independent, like the real K-FAC graph) is bit-identical.
    #[test]
    fn replay_seeds_permute_order_but_not_independent_results() {
        let run_with = |seed: u64| -> (Vec<usize>, Vec<f32>) {
            let order = Mutex::new(Vec::new());
            let slots = Mutex::new(vec![0.0f32; 8]);
            let mut g = TaskGraph::new();
            for i in 0..8 {
                let (order, slots) = (&order, &slots);
                g.add(TaskKind::FactorUpdate(i), &[], move |_| {
                    order.lock().push(i);
                    slots.lock()[i] = (i * i) as f32;
                });
            }
            Executor::run(g, ExecMode::Replay { seed }).unwrap();
            (order.into_inner(), slots.into_inner())
        };
        let (o1, s1) = run_with(11);
        let (o2, s2) = run_with(17);
        let (o1b, s1b) = run_with(11);
        assert_eq!(o1, o1b, "same seed, same order");
        assert_eq!(s1, s1b);
        assert_ne!(o1, o2, "different seeds explore different orders");
        assert_eq!(s1, s2, "order-independent graphs give identical results");
    }
}
