//! Scheduler stress: randomized DAGs executed under randomized worker
//! counts and replay seeds, single- and multi-rank.
//!
//! Gated behind `--ignored` in the normal suite (CI runs it): the
//! matrix is deliberately large to shake out ordering races, and the
//! multi-rank case drives real `ThreadComm` collectives through the
//! dedicated comm worker, so a cross-rank ordering bug shows up as a
//! deadlock or a wrong reduction, not a flaky assertion.

use kfac_collectives::{ReduceOp, ThreadComm, TrafficClass};
use kfac_exec::{ExecMode, Executor, TaskGraph, TaskId, TaskKind};
use parking_lot::Mutex;
use std::thread;

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Structure of one random task, identical on every rank for a given seed.
#[derive(Clone)]
enum Shape {
    Compute {
        deps: Vec<usize>,
    },
    Comm {
        deps: Vec<usize>,
    },
    /// External node + the dedicated signaler task added right after it.
    External {
        signaler_deps: Vec<usize>,
    },
}

/// Deterministic random graph shape: ~1/5 comm tasks, ~1/8 external
/// events, deps drawn from earlier tasks only.
fn random_shape(seed: u64, n: usize) -> Vec<Shape> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut shapes = Vec::new();
    while shapes.len() < n {
        let prior = shapes.len();
        let mut deps = Vec::new();
        for _ in 0..(xorshift(&mut s) % 3) {
            if prior > 0 {
                deps.push((xorshift(&mut s) as usize) % prior);
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let roll = xorshift(&mut s) % 8;
        if roll == 0 && prior + 1 < n {
            // External node; its signaler's deps must precede the
            // external so the signaler can never transitively wait on it.
            shapes.push(Shape::External {
                signaler_deps: deps,
            });
        } else if roll <= 2 {
            shapes.push(Shape::Comm { deps });
        } else {
            shapes.push(Shape::Compute { deps });
        }
    }
    shapes
}

/// Build + run the shaped graph on one rank; comm tasks allreduce a
/// marker through `comm`. Returns (execution order, comm results).
fn run_shaped(
    shape: &[Shape],
    rank: usize,
    size: usize,
    comm: Option<&ThreadComm>,
    mode: ExecMode,
) -> (Vec<usize>, Vec<(usize, f32)>) {
    let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let reduced: Mutex<Vec<(usize, f32)>> = Mutex::new(Vec::new());
    let mut g = TaskGraph::new();
    let mut ids: Vec<TaskId> = Vec::new();
    let mut i = 0usize;
    for sh in shape {
        match sh {
            Shape::Compute { deps } => {
                let deps: Vec<TaskId> = deps.iter().map(|&d| ids[d]).collect();
                let order = &order;
                let me = i;
                ids.push(g.add(TaskKind::FactorUpdate(me), &deps, move |_| {
                    order.lock().push(me);
                }));
            }
            Shape::Comm { deps } => {
                let deps: Vec<TaskId> = deps.iter().map(|&d| ids[d]).collect();
                let (order, reduced) = (&order, &reduced);
                let me = i;
                ids.push(g.add(TaskKind::GradAllreduce(me), &deps, move |_| {
                    order.lock().push(me);
                    let mut buf = vec![(rank + me) as f32];
                    if let Some(c) = comm {
                        use kfac_collectives::Communicator;
                        c.allreduce_tagged(&mut buf, ReduceOp::Sum, TrafficClass::Gradient);
                    }
                    reduced.lock().push((me, buf[0]));
                }));
            }
            Shape::External { signaler_deps } => {
                let ext = g.add_external(TaskKind::Backward(i), &[]);
                ids.push(ext);
                let deps: Vec<TaskId> = signaler_deps.iter().map(|&d| ids[d]).collect();
                let order = &order;
                let me = i + 1;
                ids.push(g.add(TaskKind::Custom("signaler"), &deps, move |ctl| {
                    order.lock().push(me);
                    ctl.complete(ext).unwrap();
                }));
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    let total = ids.len();
    let report = Executor::run(g, mode).unwrap();
    assert_eq!(report.executed, total);
    let _ = size;
    (order.into_inner(), reduced.into_inner())
}

/// Count scheduled (non-external) tasks in a shape.
fn scheduled_count(shape: &[Shape]) -> usize {
    shape
        .iter()
        .map(|s| match s {
            Shape::External { .. } => 1, // signaler only; external itself never "runs"
            _ => 1,
        })
        .sum()
}

#[test]
#[ignore = "stress matrix; run explicitly or in CI via --ignored"]
fn single_rank_random_dags_complete_under_all_modes() {
    for seed in 0..24u64 {
        let shape = random_shape(seed, 60);
        let expect = scheduled_count(&shape);
        for mode in [
            ExecMode::Replay {
                seed: seed ^ 0xABCD,
            },
            ExecMode::Overlapped {
                compute_workers: 1 + (seed as usize % 4),
            },
        ] {
            let (order, _) = run_shaped(&shape, 0, 1, None, mode);
            assert_eq!(order.len(), expect, "seed {seed} mode {mode:?}");
        }
    }
}

#[test]
#[ignore = "stress matrix; run explicitly or in CI via --ignored"]
fn multi_rank_comm_ordering_never_deadlocks_and_reduces_correctly() {
    for &size in &[2usize, 4] {
        for seed in 0..8u64 {
            let shape = random_shape(seed, 40);
            for workers in 1..=3usize {
                let comms = ThreadComm::create(size);
                let shape = &shape;
                let results: Vec<_> = thread::scope(|s| {
                    let handles: Vec<_> = comms
                        .iter()
                        .enumerate()
                        .map(|(rank, comm)| {
                            s.spawn(move || {
                                run_shaped(
                                    shape,
                                    rank,
                                    size,
                                    Some(comm),
                                    ExecMode::Overlapped {
                                        compute_workers: workers,
                                    },
                                )
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).collect()
                });
                // Every rank saw the same comm tasks, and each reduction
                // equals sum over ranks of (rank + id).
                let rank_sum: f32 = (0..size).map(|r| r as f32).sum();
                for (_, reduced) in &results {
                    for &(id, v) in reduced {
                        assert_eq!(
                            v,
                            rank_sum + (size * id) as f32,
                            "size {size} seed {seed} workers {workers} task {id}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
#[ignore = "stress matrix; run explicitly or in CI via --ignored"]
fn multi_rank_replay_matches_overlapped_comm_results() {
    let size = 4;
    for seed in 0..6u64 {
        let shape = random_shape(seed, 30);
        let shape = &shape;
        let run_mode = |mode: ExecMode| -> Vec<Vec<(usize, f32)>> {
            let comms = ThreadComm::create(size);
            thread::scope(|s| {
                let handles: Vec<_> = comms
                    .iter()
                    .enumerate()
                    .map(|(rank, comm)| {
                        s.spawn(move || run_shaped(shape, rank, size, Some(comm), mode).1)
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
        };
        let mut replay = run_mode(ExecMode::Replay { seed: 99 });
        let mut overlapped = run_mode(ExecMode::Overlapped { compute_workers: 2 });
        for (r, o) in replay.iter_mut().zip(overlapped.iter_mut()) {
            r.sort_unstable_by_key(|&(id, _)| id);
            o.sort_unstable_by_key(|&(id, _)| id);
            assert_eq!(r.len(), o.len());
            for (&(ri, rv), &(oi, ov)) in r.iter().zip(o.iter()) {
                assert_eq!(ri, oi);
                assert_eq!(rv.to_bits(), ov.to_bits(), "bitwise identical reductions");
            }
        }
    }
}
