//! Randomized truncated eigendecomposition for K-FAC factor matrices.
//!
//! Puiu ("Randomized K-FACs", arXiv:2206.15397) observes that K-FAC
//! factor spectra decay fast enough that a truncated eigendecomposition
//! captures nearly all the spectral mass at a fraction of the exact
//! solvers' `O(n³)` cost. This module implements the Halko-style
//! randomized range finder + Rayleigh–Ritz pipeline on top of the
//! repo's own substrate:
//!
//! 1. **Seeded Gaussian sketch** `Ω` (deterministic [`Rng64`] stream, so
//!    every rank and every rerun draws the same sketch).
//! 2. **Range finder with subspace iteration**: `Y = A Ω`, then `q`
//!    rounds of re-orthonormalize → multiply by `A` (the matrix is
//!    symmetric PSD, so each round sharpens the subspace toward the top
//!    eigenvectors). All products run through the packed GEMM engine;
//!    all `ℓ×n` transients come from the thread-local [`arena`], so warm
//!    calls on repeating factor shapes allocate only the result.
//! 3. **Rayleigh–Ritz**: `B = Q A Qᵀ` (small, `ℓ×ℓ`) solved exactly by
//!    the tridiagonal QL backend ([`eigh_tridiag`], Jacobi fallback),
//!    Ritz vectors lifted back as `V = SᵀQ`.
//!
//! The result is packaged as a **full-dimension** [`EigenDecomposition`]
//! whose discarded `n−r` modes carry *exactly-zero* eigenvalues and
//! *exactly-zero* eigenvector columns. That keeps the wire format
//! (`n + n²` f32 words) — and therefore the allgather payload framing,
//! checkpoint blobs and chaos-ladder handling — bit-for-bit identical to
//! the exact backends, while [`EigenDecomposition::truncated_rank`]
//! lets the preconditioner detect truncation and treat the discarded
//! subspace as zero curvature (i.e. damped identity), the same limit the
//! exact path reaches as eigenvalues go to zero.

use crate::eigen::EigenDecomposition;
use crate::rng::Rng64;
use crate::tridiag::eigh_tridiag;
use crate::{arena, eigh, LinAlgError, Matrix};

/// Tuning knobs for one randomized decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandEigOptions {
    /// Target rank `r` (clamped to `[1, n]`).
    pub rank: usize,
    /// Extra sketch columns beyond `rank` (Halko's oversampling `p`;
    /// the subspace is computed at width `ℓ = rank + oversample` and
    /// truncated back to `rank` after the Rayleigh–Ritz solve).
    pub oversample: usize,
    /// Subspace (power) iterations `q`: each costs one `ℓ×n·n×n` GEMM
    /// plus a re-orthonormalization and multiplies the per-mode
    /// convergence factor by `(λ_r/λ_{r+1})²`.
    pub power_iters: usize,
    /// Sketch seed. The Gaussian test matrix is drawn from
    /// `Rng64::new(seed)` only — same seed, same sketch, everywhere.
    pub seed: u64,
}

impl Default for RandEigOptions {
    fn default() -> Self {
        RandEigOptions {
            rank: 16,
            oversample: 8,
            power_iters: 2,
            seed: 0x7A11_EED5,
        }
    }
}

/// A randomized truncated decomposition plus its quality certificate.
#[derive(Debug, Clone)]
pub struct RandEig {
    /// Full-dimension decomposition: the top `rank` Ritz pairs in the
    /// trailing (ascending-order) slots, exact zeros elsewhere.
    pub eig: EigenDecomposition,
    /// Effective rank actually captured (may be below the requested
    /// rank when the sketch detects numerical rank deficiency).
    pub rank: usize,
    /// Captured spectral mass `Σ max(λᵢ,0) / trace(A)` in `[0, 1]`
    /// (defined as 1 for a zero/empty matrix). For PSD factors the
    /// trace is the total spectral mass, so `1 − captured_mass` bounds
    /// the nuclear-norm reconstruction error fraction.
    pub captured_mass: f64,
}

/// Row-norm floor (relative to the pre-orthogonalization norm) below
/// which a sketch direction is declared linearly dependent and dropped.
const RANK_TOL: f64 = 1e-7;

/// Randomized truncated eigendecomposition of a symmetric PSD `a`.
///
/// When the requested subspace width `ℓ = rank + oversample` reaches
/// `n`, the sketch buys nothing — the call transparently runs the exact
/// tridiagonal-QL path (Jacobi fallback) and reports full rank and mass.
///
/// # Panics
/// Panics if `a` is not square. Callers symmetrize first, exactly as
/// with [`eigh`].
///
/// # Errors
/// Returns the small dense solver's error if the `ℓ×ℓ` Rayleigh–Ritz
/// problem fails to converge on both backends (pathological inputs only).
pub fn eigh_randomized(a: &Matrix, opts: &RandEigOptions) -> Result<RandEig, LinAlgError> {
    assert!(a.is_square(), "eigh_randomized requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Ok(RandEig {
            eig: EigenDecomposition {
                eigenvalues: vec![],
                eigenvectors: Matrix::zeros(0, 0),
            },
            rank: 0,
            captured_mass: 1.0,
        });
    }
    let rank = opts.rank.clamp(1, n);
    let sketch = (rank + opts.oversample).min(n);
    if sketch >= n {
        // No room to truncate — exact solve is both cheaper and better.
        let eig = eigh_tridiag(a).or_else(|_| eigh(a))?;
        return Ok(RandEig {
            eig,
            rank: n,
            captured_mass: 1.0,
        });
    }

    let trace: f64 = a.diag().iter().map(|&v| f64::from(v.max(0.0))).sum();

    // Everything below works in a transposed layout: the sketch lives as
    // *rows* of an `ℓ×n` matrix (`Bᵗ = Ωᵀ`, `Bᵗ·A = (A·Ω)ᵀ` since `A` is
    // symmetric), so Gram–Schmidt walks contiguous rows and every product
    // is a plain row-major GEMM on the packed engine.
    let mut basis = arena::take_matrix(sketch, n);
    let mut rng = Rng64::new(opts.seed);
    for v in basis.as_mut_slice() {
        *v = rng.normal_f32();
    }
    let mut scratch = arena::take_matrix(sketch, n);

    // Range finder: Y = Ωᵀ A, then q subspace iterations of
    // orthonormalize → multiply by A.
    basis.matmul_into(a, &mut scratch);
    std::mem::swap(&mut basis, &mut scratch);
    let mut kept = orthonormalize_rows(&mut basis);
    for _ in 0..opts.power_iters {
        if kept == 0 {
            break;
        }
        shrink_rows(&mut basis, kept);
        basis.matmul_into(a, &mut scratch);
        std::mem::swap(&mut basis, &mut scratch);
        kept = orthonormalize_rows(&mut basis);
    }
    shrink_rows(&mut basis, kept);

    if kept == 0 {
        // The sketch annihilated: A is (numerically) zero. The rank-0
        // truncation is exact.
        arena::recycle_matrix(basis);
        arena::recycle_matrix(scratch);
        return Ok(RandEig {
            eig: EigenDecomposition {
                eigenvalues: vec![0.0; n],
                eigenvectors: Matrix::zeros(n, n),
            },
            rank: 0,
            captured_mass: if trace > 0.0 { 0.0 } else { 1.0 },
        });
    }

    // Rayleigh–Ritz: B = Q A Qᵀ (kept×kept), solved exactly.
    basis.matmul_into(a, &mut scratch); // scratch = Qᵗ·A   (kept×n)
    let mut small = scratch.matmul_nt(&basis); // (Qᵗ·A)·Q  (kept×kept)
    small.symmetrize();
    let ritz = eigh_tridiag(&small).or_else(|_| eigh(&small));
    let ritz = match ritz {
        Ok(r) => r,
        Err(e) => {
            arena::recycle_matrix(basis);
            arena::recycle_matrix(scratch);
            return Err(e);
        }
    };

    // Lift: Ritz vectors (rows, ascending eigenvalue order) = Sᵀ·Qᵗ.
    ritz.eigenvectors.matmul_tn_into(&basis, &mut scratch);

    // Keep the top `r = min(rank, kept)` pairs; park them in the
    // trailing slots of a full-dimension decomposition (eigenvalues
    // ascend, so the largest live at the end — matching the exact
    // backends' layout) and leave exact zeros elsewhere.
    let r = rank.min(kept);
    let mut eigenvalues = vec![0.0f32; n];
    let mut eigenvectors = Matrix::zeros(n, n);
    let mut captured = 0.0f64;
    for i in 0..r {
        let src = kept - r + i; // ascending within the kept set
        let dst = n - r + i;
        let lambda = ritz.eigenvalues[src];
        eigenvalues[dst] = lambda;
        captured += f64::from(lambda.max(0.0));
        let row = scratch.row(src);
        for (j, &v) in row.iter().enumerate() {
            eigenvectors[(j, dst)] = v;
        }
    }
    arena::recycle_matrix(basis);
    arena::recycle_matrix(scratch);

    let captured_mass = if trace > 0.0 {
        (captured / trace).min(1.0)
    } else {
        1.0
    };
    Ok(RandEig {
        eig: EigenDecomposition {
            eigenvalues,
            eigenvectors,
        },
        rank: r,
        captured_mass,
    })
}

/// In-place modified Gram–Schmidt over the rows of `m`, with one
/// re-orthogonalization pass per row ("twice is enough") and f64 dot
/// accumulation. Rows whose residual collapses below [`RANK_TOL`] of
/// their incoming norm are dropped; survivors are compacted to the top.
/// Returns the number of orthonormal rows kept.
fn orthonormalize_rows(m: &mut Matrix) -> usize {
    let rows = m.rows();
    let cols = m.cols();
    let data = m.as_mut_slice();
    let mut kept = 0usize;
    for i in 0..rows {
        if i != kept {
            data.copy_within(i * cols..(i + 1) * cols, kept * cols);
        }
        let before = row_norm(&data[kept * cols..(kept + 1) * cols]);
        if before <= 0.0 {
            continue;
        }
        for _pass in 0..2 {
            for j in 0..kept {
                let dot = {
                    let (head, tail) = data.split_at(kept * cols);
                    let q = &head[j * cols..j * cols + cols];
                    let v = &tail[..cols];
                    q.iter()
                        .zip(v)
                        .map(|(&a, &b)| f64::from(a) * f64::from(b))
                        .sum::<f64>() as f32
                };
                let (head, tail) = data.split_at_mut(kept * cols);
                let q = &head[j * cols..j * cols + cols];
                let v = &mut tail[..cols];
                for (vv, &qq) in v.iter_mut().zip(q) {
                    *vv -= dot * qq;
                }
            }
        }
        let after = row_norm(&data[kept * cols..(kept + 1) * cols]);
        if after <= RANK_TOL * before {
            continue; // linearly dependent direction — drop it
        }
        let inv = (1.0 / after) as f32;
        for v in &mut data[kept * cols..(kept + 1) * cols] {
            *v *= inv;
        }
        kept += 1;
    }
    kept
}

/// Euclidean norm of a row with f64 accumulation.
fn row_norm(row: &[f32]) -> f64 {
    row.iter()
        .map(|&v| f64::from(v) * f64::from(v))
        .sum::<f64>()
        .sqrt()
}

/// Drop trailing rows in place (cheap: row-major storage truncates).
fn shrink_rows(m: &mut Matrix, rows: usize) {
    if rows < m.rows() {
        let cols = m.cols();
        m.reset_for(rows, cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// PSD test factor with an exponentially decaying spectrum — the
    /// shape K-FAC running averages actually have.
    fn decaying_spd(n: usize, decay: f32, seed: u64) -> Matrix {
        let mut rng = Rng64::new(seed);
        let k = 2 * n;
        let mut x = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.normal_f32()).collect());
        for i in 0..k {
            let row = x.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                *v *= (-decay * j as f32 / n as f32).exp();
            }
        }
        let mut a = x.gram();
        a.scale(1.0 / k as f32);
        a.add_diag(1e-4);
        a.symmetrize();
        a
    }

    #[test]
    fn wire_format_matches_exact_backends() {
        let a = decaying_spd(40, 8.0, 1);
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let wire = re.eig.to_bytes_f32();
        assert_eq!(wire.len(), EigenDecomposition::wire_len(40));
        let back = EigenDecomposition::from_bytes_f32(40, &wire);
        assert_eq!(back.eigenvalues, re.eig.eigenvalues);
        assert_eq!(back.eigenvectors, re.eig.eigenvectors);
        // Truncation survives the round trip (exact zeros are copied).
        assert_eq!(back.truncated_rank(), Some(re.rank));
    }

    #[test]
    fn captures_decaying_spectrum_with_small_rank() {
        let a = decaying_spd(96, 12.0, 2);
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 24,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(re.captured_mass > 0.95, "mass {}", re.captured_mass);
        // Rank-r reconstruction error is bounded by the discarded mass
        // (nuclear norm ≥ Frobenius norm for PSD residuals).
        let recon = re.eig.reconstruct();
        let discarded = (1.0 - re.captured_mass) * f64::from(a.trace());
        let err = f64::from(recon.max_abs_diff(&a));
        assert!(
            err <= discarded + 1e-3,
            "err {err} vs discarded {discarded}"
        );
    }

    #[test]
    fn ritz_vectors_are_orthonormal() {
        let a = decaying_spd(64, 6.0, 3);
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 16,
                ..Default::default()
            },
        )
        .unwrap();
        let q = &re.eig.eigenvectors;
        let qtq = q.matmul_tn(q);
        // Trailing r×r block is the identity; the zero-padded block is 0.
        let n = 64;
        for i in 0..n {
            for j in 0..n {
                let expect = if i == j && i >= n - re.rank { 1.0 } else { 0.0 };
                assert!(
                    (qtq[(i, j)] - expect).abs() < 1e-4,
                    "qtq[{i},{j}] = {}",
                    qtq[(i, j)]
                );
            }
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let a = decaying_spd(50, 5.0, 4);
        let opts = RandEigOptions {
            rank: 12,
            ..Default::default()
        };
        let x = eigh_randomized(&a, &opts).unwrap();
        let y = eigh_randomized(&a, &opts).unwrap();
        assert_eq!(x.eig.eigenvalues, y.eig.eigenvalues);
        assert_eq!(x.eig.eigenvectors.as_slice(), y.eig.eigenvectors.as_slice());
    }

    #[test]
    fn full_width_sketch_falls_back_to_exact() {
        let a = decaying_spd(12, 2.0, 5);
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 12,
                oversample: 8,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(re.rank, 12);
        assert_eq!(re.captured_mass, 1.0);
        assert_eq!(re.eig.truncated_rank(), None);
        assert!(re.eig.reconstruct().max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn zero_matrix_yields_rank_zero() {
        let a = Matrix::zeros(20, 20);
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 4,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(re.rank, 0);
        assert_eq!(re.captured_mass, 1.0);
        assert!(re.eig.eigenvalues.iter().all(|&l| l == 0.0));
        assert_eq!(re.eig.truncated_rank(), Some(0));
    }

    #[test]
    fn top_ritz_values_match_exact_eigenvalues() {
        let a = decaying_spd(80, 10.0, 6);
        let exact = eigh(&a).unwrap();
        let re = eigh_randomized(
            &a,
            &RandEigOptions {
                rank: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let n = 80;
        // The top few Ritz values converge tightly under 2 subspace
        // iterations on a decaying spectrum.
        for i in 0..8 {
            let lam_exact = exact.eigenvalues[n - 1 - i];
            let lam_rand = re.eig.eigenvalues[n - 1 - i];
            assert!(
                (lam_exact - lam_rand).abs() <= 1e-3 * lam_exact.max(1e-3),
                "mode {i}: exact {lam_exact} vs randomized {lam_rand}"
            );
        }
    }

    #[test]
    fn empty_matrix() {
        let re = eigh_randomized(&Matrix::zeros(0, 0), &RandEigOptions::default()).unwrap();
        assert_eq!(re.rank, 0);
        assert!(re.eig.eigenvalues.is_empty());
    }
}
