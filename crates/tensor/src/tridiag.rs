//! Symmetric eigendecomposition via Householder tridiagonalization and
//! implicit-shift QL iteration.
//!
//! A second eigensolver backend next to the cyclic Jacobi solver of
//! [`crate::eigen`]. Tridiagonalization + QL is the classic LAPACK-style
//! route (`ssyev`'s ancestor): `~4n³/3` FLOPs for the reduction plus
//! `O(n²)` per eigenvalue, several times faster than Jacobi's repeated
//! sweeps for the factor dimensions a real ResNet produces (hundreds to
//! thousands). The distributed preconditioner can select either backend;
//! the test suite cross-checks them against each other and against the
//! spectral reconstruction property.
//!
//! All computation is in `f64` (like the Jacobi backend) and rounded to
//! `f32` on output.

use crate::eigen::EigenDecomposition;
use crate::{LinAlgError, Matrix};

/// Maximum QL iterations per eigenvalue before declaring failure.
const MAX_QL_ITERS: usize = 60;

/// Symmetric eigendecomposition via tridiagonal QL.
///
/// Same contract as [`crate::eigh`]: eigenvalues ascending, orthonormal
/// eigenvector columns.
///
/// # Errors
/// [`LinAlgError::NotConverged`] if the QL iteration stalls.
pub fn eigh_tridiag(a: &Matrix) -> Result<EigenDecomposition, LinAlgError> {
    assert!(a.is_square(), "eigh_tridiag requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return Ok(EigenDecomposition {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        });
    }

    // Working copy in f64; `z` accumulates the orthogonal transform.
    let mut z: Vec<f64> = a.as_slice().iter().map(|&x| x as f64).collect();
    let idx = |i: usize, j: usize| i * n + j;

    // --- Householder reduction to tridiagonal form (Numerical Recipes
    // `tred2`, with eigenvector accumulation). ---
    let mut d = vec![0.0f64; n]; // diagonal
    let mut e = vec![0.0f64; n]; // sub-diagonal

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0f64;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| z[idx(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = z[idx(i, l)];
            } else {
                for k in 0..=l {
                    z[idx(i, k)] /= scale;
                    h += z[idx(i, k)] * z[idx(i, k)];
                }
                let mut f = z[idx(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[idx(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[idx(j, i)] = z[idx(i, j)] / h;
                    let mut g = 0.0f64;
                    for k in 0..=j {
                        g += z[idx(j, k)] * z[idx(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[idx(k, j)] * z[idx(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[idx(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[idx(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[idx(j, k)] -= f * e[k] + g * z[idx(i, k)];
                    }
                }
            }
        } else {
            e[i] = z[idx(i, l)];
        }
        d[i] = h;
    }

    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0f64;
                for k in 0..i {
                    g += z[idx(i, k)] * z[idx(k, j)];
                }
                for k in 0..i {
                    z[idx(k, j)] -= g * z[idx(k, i)];
                }
            }
        }
        d[i] = z[idx(i, i)];
        z[idx(i, i)] = 1.0;
        for k in 0..i {
            z[idx(k, i)] = 0.0;
            z[idx(i, k)] = 0.0;
        }
    }

    // --- Implicit-shift QL on the tridiagonal (`tqli`), rotating the
    // eigenvector matrix along. ---
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITERS {
                return Err(LinAlgError::NotConverged);
            }

            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            // `tqli`'s underflow-recovery path: if a rotation radius hits
            // exactly zero mid-sweep we must restart the QL step rather
            // than apply the (now-stale) trailing updates — applying them
            // anyway corrupts the tridiagonal and stalls convergence.
            let mut broke_early = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    broke_early = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Rotate eigenvectors.
                for k in 0..n {
                    f = z[idx(k, i + 1)];
                    z[idx(k, i + 1)] = s * z[idx(k, i)] + c * f;
                    z[idx(k, i)] = c * z[idx(k, i)] - s * f;
                }
            }
            if broke_early {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending and round to f32.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&x, &y| d[x].partial_cmp(&d[y]).expect("NaN eigenvalue"));
    let eigenvalues: Vec<f32> = order.iter().map(|&i| d[i] as f32).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors[(i, new_j)] = z[idx(i, old_j)] as f32;
        }
    }
    Ok(EigenDecomposition {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen::eigh;
    use crate::rng::Rng64;

    fn random_symmetric(n: usize, rng: &mut Rng64) -> Matrix {
        let data: Vec<f32> = (0..n * n).map(|_| rng.normal_f32()).collect();
        let mut a = Matrix::from_vec(n, n, data);
        let at = a.transpose();
        a.add_assign(&at);
        a.scale(0.5);
        a
    }

    fn random_spd(n: usize, rng: &mut Rng64) -> Matrix {
        let x = Matrix::from_vec(2 * n, n, (0..2 * n * n).map(|_| rng.normal_f32()).collect());
        let mut a = x.gram();
        a.scale(1.0 / (2 * n) as f32);
        a.add_diag(1e-3);
        a
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_diag(&[5.0, -1.0, 2.0]);
        let e = eigh_tridiag(&a).unwrap();
        assert_eq!(e.eigenvalues, vec![-1.0, 2.0, 5.0]);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let mut rng = Rng64::new(51);
        for n in [1, 2, 3, 8, 33, 80] {
            let a = random_symmetric(n, &mut rng);
            let e = eigh_tridiag(&a).unwrap();
            let recon = e.reconstruct();
            let scale = a.max_abs().max(1.0);
            assert!(
                recon.max_abs_diff(&a) < 2e-4 * scale,
                "n={} diff={}",
                n,
                recon.max_abs_diff(&a)
            );
            let qtq = e.eigenvectors.matmul_tn(&e.eigenvectors);
            assert!(qtq.max_abs_diff(&Matrix::identity(n)) < 1e-4, "n={n}");
        }
    }

    #[test]
    fn matches_jacobi_spectrum() {
        let mut rng = Rng64::new(52);
        for n in [5, 17, 47] {
            let a = random_spd(n, &mut rng);
            let ql = eigh_tridiag(&a).unwrap();
            let jac = eigh(&a).unwrap();
            for (x, y) in ql.eigenvalues.iter().zip(&jac.eigenvalues) {
                assert!((x - y).abs() < 1e-4 * y.abs().max(1.0), "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn eigenvalues_solve_characteristic_action() {
        // A q = λ q per column.
        let mut rng = Rng64::new(53);
        let a = random_spd(12, &mut rng);
        let e = eigh_tridiag(&a).unwrap();
        for j in 0..12 {
            let q = e.eigenvectors.col(j);
            let aq = a.matvec(&q);
            for (av, qv) in aq.iter().zip(&q) {
                assert!(
                    (av - e.eigenvalues[j] * qv).abs() < 1e-3,
                    "column {j}: {av} vs {}",
                    e.eigenvalues[j] * qv
                );
            }
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(eigh_tridiag(&Matrix::zeros(0, 0))
            .unwrap()
            .eigenvalues
            .is_empty());
        let one = Matrix::from_diag(&[7.0]);
        let e = eigh_tridiag(&one).unwrap();
        assert_eq!(e.eigenvalues, vec![7.0]);
        assert!((e.eigenvectors[(0, 0)].abs() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn repeated_eigenvalues() {
        // Identity: all eigenvalues 1, any orthonormal basis is valid.
        let e = eigh_tridiag(&Matrix::identity(6)).unwrap();
        assert!(e.eigenvalues.iter().all(|&l| (l - 1.0).abs() < 1e-6));
        let qtq = e.eigenvectors.matmul_tn(&e.eigenvectors);
        assert!(qtq.max_abs_diff(&Matrix::identity(6)) < 1e-5);
    }
}
