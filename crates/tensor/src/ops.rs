//! Element-wise and BLAS-1 style operations on matrices and slices.
//!
//! These are the small kernels the K-FAC update is assembled from: scaled
//! running-average accumulation of factors (Eq. 16–17), damping
//! (`M + γI`, Eq. 11), the element-wise divide of the eigen path
//! (Eq. 14), and the norms used by KL-clipping (Eq. 18).

use crate::Matrix;

impl Matrix {
    /// `self += other`, element-wise.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += b;
        }
    }

    /// `self -= other`, element-wise.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in sub_assign");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a -= b;
        }
    }

    /// `self *= s`, element-wise scale.
    pub fn scale(&mut self, s: f32) {
        for a in self.as_mut_slice() {
            *a *= s;
        }
    }

    /// `self = alpha * other + beta * self` (matrix AXPBY).
    ///
    /// With `alpha = ξ`, `beta = 1 − ξ` this is exactly the running-average
    /// update the paper applies to the Kronecker factors (Eq. 16–17).
    pub fn axpby(&mut self, alpha: f32, other: &Matrix, beta: f32) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpby");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a = alpha * b + beta * *a;
        }
    }

    /// Add `gamma` to every diagonal entry: the Tikhonov damping
    /// `M + γI` of Eq. 11.
    pub fn add_diag(&mut self, gamma: f32) {
        assert!(self.is_square(), "add_diag requires a square matrix");
        let n = self.rows();
        for i in 0..n {
            self[(i, i)] += gamma;
        }
    }

    /// Frobenius norm, accumulated in `f64` to avoid cancellation on large
    /// matrices.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice()
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f32 {
        self.as_slice().iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Frobenius inner product `⟨self, other⟩ = Σ selfᵢⱼ otherᵢⱼ`,
    /// accumulated in `f64`. Used by the KL-clip statistic
    /// `Σ |Ĝᵢᵀ ∇Lᵢ|` of Eq. 18.
    pub fn dot(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in dot");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32
    }

    /// Element-wise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.as_slice().iter().map(|&x| f(x)).collect();
        Matrix::from_vec(self.rows(), self.cols(), data)
    }

    /// Element-wise division `self[i,j] /= denom[i,j]` — the eigen-path
    /// rescale `V₂ = V₁ / (v_G v_Aᵀ + γ)` of Eq. 14.
    pub fn div_assign_elem(&mut self, denom: &Matrix) {
        assert_eq!(
            self.shape(),
            denom.shape(),
            "shape mismatch in div_assign_elem"
        );
        for (a, d) in self.as_mut_slice().iter_mut().zip(denom.as_slice()) {
            *a /= d;
        }
    }

    /// Build the rank-one outer-product matrix `u vᵀ` (used to form the
    /// `v_G v_Aᵀ + γ` denominator of Eq. 14).
    pub fn outer(u: &[f32], v: &[f32]) -> Matrix {
        let mut m = Matrix::zeros(u.len(), v.len());
        for (i, &ui) in u.iter().enumerate() {
            let row = m.row_mut(i);
            for (j, &vj) in v.iter().enumerate() {
                row[j] = ui * vj;
            }
        }
        m
    }

    /// Maximum absolute element-wise difference against `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch in max_abs_diff"
        );
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

/// BLAS-1 helpers over plain slices (parameter vectors in the optimizers).
pub mod slice {
    /// `y += alpha * x`.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), y.len(), "length mismatch in axpy");
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// `x *= alpha`.
    pub fn scal(alpha: f32, x: &mut [f32]) {
        for xi in x {
            *xi *= alpha;
        }
    }

    /// Dot product with `f64` accumulation.
    pub fn dot(x: &[f32], y: &[f32]) -> f32 {
        assert_eq!(x.len(), y.len(), "length mismatch in dot");
        x.iter()
            .zip(y)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum::<f64>() as f32
    }

    /// Euclidean norm with `f64` accumulation.
    pub fn nrm2(x: &[f32]) -> f32 {
        x.iter().map(|&a| a as f64 * a as f64).sum::<f64>().sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m2() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])
    }

    #[test]
    fn add_sub_scale() {
        let mut a = m2();
        a.add_assign(&m2());
        assert_eq!(a[(1, 1)], 8.0);
        a.sub_assign(&m2());
        assert_eq!(a[(1, 1)], 4.0);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 0.5);
    }

    #[test]
    fn axpby_is_running_average() {
        // With xi = 0.9 the update must equal 0.9*new + 0.1*old (Eq. 16).
        let mut old = Matrix::filled(2, 2, 10.0);
        let new = Matrix::filled(2, 2, 20.0);
        old.axpby(0.9, &new, 0.1);
        assert!((old[(0, 0)] - 19.0).abs() < 1e-6);
    }

    #[test]
    fn add_diag_damps_only_diagonal() {
        let mut a = m2();
        a.add_diag(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 2.0);
        assert_eq!(a[(1, 1)], 4.5);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), 7.0);
    }

    #[test]
    fn dot_and_diff() {
        let a = m2();
        let b = m2();
        assert!((a.dot(&b) - 30.0).abs() < 1e-6);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn outer_and_div() {
        let d = Matrix::outer(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(d[(1, 0)], 6.0);
        let mut v = Matrix::filled(2, 2, 12.0);
        v.div_assign_elem(&d);
        assert_eq!(v[(0, 0)], 4.0);
        assert_eq!(v[(1, 1)], 1.5);
    }

    #[test]
    fn map_applies_elementwise() {
        let a = m2().map(|x| x * x);
        assert_eq!(a[(1, 1)], 16.0);
    }

    #[test]
    fn slice_kernels() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [1.0f32, 1.0, 1.0];
        slice::axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0]);
        slice::scal(0.5, &mut y);
        assert_eq!(y, [1.5, 2.5, 3.5]);
        assert!((slice::dot(&x, &x) - 14.0).abs() < 1e-6);
        assert!((slice::nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }
}
