//! # kfac-tensor
//!
//! Dense linear-algebra substrate for the `kfac-rs` reproduction of
//! *Convolutional Neural Network Training with Distributed K-FAC*
//! (Pauloski et al., SC 2020).
//!
//! The paper's K-FAC preconditioner is built from a small set of dense
//! kernels, all of which are implemented here from scratch:
//!
//! * [`Matrix`] — row-major dense `f32` matrix with cache-blocked,
//!   rayon-parallel GEMM ([`matmul`](Matrix::matmul)) and Gram-matrix
//!   kernels ([`gram`](Matrix::gram)) used for Kronecker-factor
//!   computation (`A = āāᵀ`, `G = ggᵀ`).
//! * [`eigen`] — symmetric eigendecomposition via cyclic Jacobi sweeps,
//!   the workhorse of the paper's *inverse-free* preconditioning path
//!   (Equations 13–15); [`tridiag`] is the faster LAPACK-style exact
//!   route, [`randeig`] the randomized truncated route for factors with
//!   decaying spectra (Puiu, arXiv:2206.15397).
//! * [`cholesky`] / [`inverse`] — SPD Cholesky inverse and Gauss–Jordan
//!   inverse with partial pivoting, implementing the paper's *explicit
//!   inverse* path (Equation 11) that Table I compares against.
//! * [`kron`] — Kronecker products and the `(A ⊗ B) vec(X) = vec(A X Bᵀ)`
//!   identity (Equations 6–10), used as ground truth in tests.
//! * [`rng`] / [`init`] — deterministic xoshiro256++ RNG, Box–Muller
//!   normal sampling and Kaiming/Xavier initializers.
//! * [`tensor4`] — a minimal NCHW tensor for the neural-network substrate.
//!
//! All kernels are `f32` end-to-end (matching the paper's FP32 training,
//! §VI-A) except where noted: the Jacobi eigensolver accumulates rotations
//! in `f64` for stability and rounds the results back to `f32`.

pub mod arena;
pub mod cholesky;
pub mod eigen;
pub mod gemm;
pub mod gemm_bf16;
pub mod half;
pub mod init;
pub mod inverse;
pub mod kron;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod randeig;
pub mod rng;
pub mod tensor4;
pub mod tridiag;

pub use cholesky::Cholesky;
pub use eigen::{eigh, EigenDecomposition};
pub use half::{bf16_to_f32, f16_to_f32, f32_to_bf16, f32_to_f16, Dtype, HalfMatrix};
pub use inverse::invert;
pub use kron::{kron, kron_matvec};
pub use matrix::Matrix;
pub use randeig::{eigh_randomized, RandEig, RandEigOptions};
pub use rng::Rng64;
pub use tensor4::Tensor4;
pub use tridiag::eigh_tridiag;

/// Errors produced by numeric routines that can fail for data-dependent
/// reasons (shape mismatches, by contrast, are programming errors and panic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinAlgError {
    /// The matrix is singular (or numerically singular) and cannot be
    /// inverted or factorized.
    Singular,
    /// Cholesky factorization failed because the matrix is not positive
    /// definite.
    NotPositiveDefinite,
    /// An iterative method (Jacobi eigensolver) failed to converge within
    /// its sweep budget.
    NotConverged,
}

impl std::fmt::Display for LinAlgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinAlgError::Singular => write!(f, "matrix is singular"),
            LinAlgError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            LinAlgError::NotConverged => {
                write!(f, "iterative method failed to converge")
            }
        }
    }
}

impl std::error::Error for LinAlgError {}
